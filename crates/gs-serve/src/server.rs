//! The rendering service: a worker pool draining a scheduled job queue.
//!
//! Request lifecycle: [`RenderServer::submit`] first probes the frame cache
//! — a hit is answered immediately, before the request ever enqueues — then
//! hands the job to the configured [`Scheduler`] (blocking when the queue
//! is full, which gives closed-loop clients natural backpressure). A worker
//! asks the scheduler for the next same-scene batch (FIFO adjacency or
//! bounded cross-scene reordering, per [`ServeConfig::scheduler`]), answers
//! what it can from the frame cache, and renders the remaining views
//! through the shared cull-and-gather path of [`crate::batch`]. Identical
//! cache keys inside one batch are rendered once and fanned out to every
//! waiter. Cache replacement is itself a policy
//! ([`ServeConfig::cache_policy`]): plain LRU, or TinyLFU frequency-aware
//! admission.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use gs_core::gaussian::GaussianParams;
use gs_obs::{Registry, TraceContext};
use gs_platform::PlatformSpec;

use gs_render::pipeline::RenderTimings;
use gs_render::rasterize::FrameLayer;

use crate::batch::render_shared;
use crate::cache::{CachePolicyKind, FrameCache, FrameKey};
use crate::obs::{ObsTuning, ServeObs};
use crate::registry::{RegistryStats, SceneLayout, SceneRegistry, SceneView, ShardedSceneView};
use crate::request::{RenderRequest, RenderedFrame, SceneId, ServeError};
use crate::sched::{SchedItem, Scheduler, SchedulerPolicy};
use crate::shard::{self, Aabb};
use crate::stats::{ServeStats, StatsCollector};

/// Configuration of a [`RenderServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded queue depth; producers block when it is full.
    pub queue_depth: usize,
    /// Maximum same-scene requests grouped into one batch (1 disables
    /// batching).
    pub max_batch: usize,
    /// Frame-cache budget in bytes (0 disables the cache).
    pub cache_bytes: u64,
    /// Camera-translation grid for cache-key quantization, in world units.
    pub pose_quant: f32,
    /// Auto-sharding threshold and target shard size in bytes for
    /// [`RenderServer::load_scene_auto`]: scenes larger than this are
    /// partitioned into `ceil(bytes / shard_bytes)` shards (0 disables
    /// auto-sharding).
    pub shard_bytes: u64,
    /// Scheduling policy between the queue and the worker pool: strict
    /// FIFO, or batch-aware cross-scene reordering (see [`crate::sched`]).
    pub scheduler: SchedulerPolicy,
    /// Frame-cache replacement policy: LRU, or TinyLFU frequency-aware
    /// admission (see [`crate::cache`]).
    pub cache_policy: CachePolicyKind,
    /// Maximum number of threads one frame's rasterization may fan its tile
    /// rows out over when the queue is empty (idle pool workers mean those
    /// cores are otherwise free). Under load the gate closes and
    /// parallelism comes from concurrent requests instead. `0` follows
    /// `workers`; `1` disables tile parallelism. Output bytes are identical
    /// at any setting.
    pub tile_parallel: usize,
    /// Node label the server's spans carry (shows up in stitched
    /// cross-node trees and Chrome trace exports).
    pub node: String,
    /// Trace every Nth ingress request (`0` disables request tracing,
    /// `1` traces every request). Requests arriving with a remote trace
    /// context are always traced regardless of this setting.
    pub trace_sample_every: u32,
    /// Sample kernel-phase timings (project / bin / raster) of every Nth
    /// production render into the `/metrics` roofline gauges (`0`
    /// disables phase profiling).
    pub phase_sample_every: u32,
    /// Log a text waterfall of any *locally minted* trace slower than
    /// this many milliseconds (`0` disables the slow-request log).
    pub slow_trace_ms: u64,
    /// Capacity of the finished-trace ring behind `GET /trace`
    /// (`0` keeps only counters).
    pub span_ring: usize,
    /// Interpretation-layer tuning: SLO windows and targets, heat-table
    /// window and top-K, event-ring capacity, watcher interval (see
    /// [`ObsTuning`]).
    pub obs: ObsTuning,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            cache_bytes: 64 << 20,
            pose_quant: 0.05,
            shard_bytes: 32 << 20,
            scheduler: SchedulerPolicy::Fifo,
            cache_policy: CachePolicyKind::Lru,
            tile_parallel: 0,
            node: "gs-serve".to_string(),
            trace_sample_every: 0,
            phase_sample_every: 32,
            slow_trace_ms: 0,
            span_ring: 256,
            obs: ObsTuning::default(),
        }
    }
}

/// Consecutive watcher ticks with queued jobs and no completion progress
/// before a queue-stall event is recorded.
const QUEUE_STALL_TICKS: u32 = 4;

type Response = Result<RenderedFrame, ServeError>;

struct Job {
    request: RenderRequest,
    /// Cache key computed once at submit time (for the fast-path probe)
    /// and reused by the worker-side lookup; `None` with caching disabled.
    key: Option<FrameKey>,
    tx: mpsc::Sender<Response>,
    enqueued: Instant,
    /// Root `request` span of a trace *minted by this server* at submit
    /// time; finished (and the whole trace pushed to the span ring) when
    /// the job is answered. `None` for untraced jobs and for remote trace
    /// contexts, whose root lives with whoever minted them.
    trace_root: Option<gs_obs::Span>,
}

impl SchedItem for Job {
    fn scene(&self) -> &SceneId {
        &self.request.scene
    }

    fn enqueued_at(&self) -> Instant {
        self.enqueued
    }

    fn deadline(&self) -> Option<Instant> {
        self.request.deadline
    }

    fn client(&self) -> Option<&str> {
        self.request.client.as_deref()
    }
}

struct Shared {
    config: ServeConfig,
    sched: Box<dyn Scheduler<Job>>,
    registry: Mutex<SceneRegistry>,
    cache: Mutex<FrameCache>,
    stats: StatsCollector,
    /// Observability layer: trace sampling, the finished-span ring and the
    /// kernel-phase roofline gauges, all feeding the same metrics registry
    /// the stats collector publishes through.
    obs: ServeObs,
    /// Queued jobs that carry a deadline. Incremented before the push makes
    /// a job visible and decremented when the job leaves the queue, so the
    /// workers' dead-job sweep (an O(queue) walk under the queue mutex) can
    /// be skipped entirely while no deadline could be expiring.
    deadline_jobs: AtomicU64,
    /// Cancellations signalled since a worker last swept: every accepted
    /// request's [`CancelToken`] is wired to bump this exactly once on
    /// `cancel()`, and workers `swap(0)` it — so each cancellation triggers
    /// at least one sweep, while merely *carrying* a token (every HTTP
    /// request does) costs the queue nothing.
    pending_cancels: Arc<AtomicU64>,
}

impl Shared {
    /// Tile-parallel width for the next render: the configured fan-out
    /// while the queue is empty (idle workers mean free cores), `1` — no
    /// helper threads — whenever jobs are waiting, so a loaded pool keeps
    /// its parallelism at the request level.
    fn tile_threads(&self) -> usize {
        let limit = if self.config.tile_parallel == 0 {
            self.config.workers
        } else {
            self.config.tile_parallel
        };
        if limit > 1 && self.sched.is_empty() {
            limit
        } else {
            1
        }
    }
}

/// Handle to a pending render; resolves through [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the frame is rendered (or the request failed).
    ///
    /// # Errors
    ///
    /// Propagates the service's error, or [`ServeError::ShuttingDown`] if the
    /// service dropped the request during shutdown.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Waits up to `timeout` for the response. Returns `Err(self)` on
    /// timeout so the caller can keep polling — the pattern the HTTP
    /// front-end uses to watch the client socket for disconnects while its
    /// request is queued.
    ///
    /// # Errors
    ///
    /// `Err(self)` when the response has not arrived yet.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<Response, Ticket> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Err(ServeError::ShuttingDown)),
        }
    }
}

/// A concurrent multi-scene rendering service.
pub struct RenderServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The anomaly watcher: ticks SLO evaluation + incident capture and
    /// probes for queue stalls. `None` when `obs.watcher_interval_ms`
    /// is 0; joined on drop.
    watcher: Option<gs_obs::Watcher>,
}

impl RenderServer {
    /// Starts the worker pool over an (optionally pre-populated) registry.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.max_batch` is zero.
    pub fn new(config: ServeConfig, registry: SceneRegistry) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        // One registry backs both the request counters (stats collector) and
        // the observability gauges, so `GET /metrics` exposes them together.
        let metrics = Arc::new(Registry::new());
        let obs = ServeObs::with_tuning(
            Arc::clone(&metrics),
            config.node.clone(),
            config.trace_sample_every,
            config.phase_sample_every,
            config.slow_trace_ms.saturating_mul(1000),
            config.span_ring,
            &config.obs,
        );
        let shared = Arc::new(Shared {
            sched: config.scheduler.build(config.queue_depth),
            registry: Mutex::new(registry),
            cache: Mutex::new(FrameCache::with_policy(
                config.cache_bytes,
                config.cache_policy,
            )),
            stats: StatsCollector::with_registry(metrics, config.workers),
            obs,
            config,
            deadline_jobs: AtomicU64::new(0),
            pending_cancels: Arc::new(AtomicU64::new(0)),
        });
        let workers = (0..shared.config.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gs-serve-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker")
            })
            .collect();
        let watcher = (shared.config.obs.watcher_interval_ms > 0).then(|| {
            let shared = Arc::clone(&shared);
            // Queue-stall detection: jobs are queued but the completion
            // counter has not moved for several consecutive ticks.
            let mut last_completed = 0u64;
            let mut stalled_ticks = 0u32;
            gs_obs::Watcher::spawn(
                std::time::Duration::from_millis(shared.config.obs.watcher_interval_ms),
                move || {
                    let completed = shared.stats.completed_count();
                    if !shared.sched.is_empty() && completed == last_completed {
                        stalled_ticks += 1;
                        if stalled_ticks == QUEUE_STALL_TICKS {
                            shared.obs.recorder().record(
                                gs_obs::Event::new(
                                    gs_obs::EventLevel::Error,
                                    "scheduler",
                                    "queue stall: jobs queued but nothing completing",
                                )
                                .field("stalled_ticks", stalled_ticks.to_string()),
                            );
                        }
                    } else {
                        stalled_ticks = 0;
                    }
                    last_completed = completed;
                    shared.obs.watch_tick();
                },
            )
        });
        Self {
            shared,
            workers,
            watcher,
        }
    }

    /// Starts a server with a registry budgeted to `platform`'s GPU memory.
    pub fn for_platform(config: ServeConfig, platform: &PlatformSpec) -> Self {
        Self::new(config, SceneRegistry::for_platform(platform))
    }

    /// Loads (or replaces) a scene through admission control, invalidating
    /// cached frames of any scene that was evicted or replaced.
    ///
    /// # Errors
    ///
    /// [`ServeError::Admission`] if the scene exceeds the memory budget.
    pub fn load_scene(
        &self,
        id: impl Into<SceneId>,
        params: Arc<GaussianParams>,
        background: [f32; 3],
    ) -> Result<(), ServeError> {
        let id = id.into();
        let mut registry = self.shared.registry.lock().unwrap();
        let result = registry.load(id.clone(), params, background);
        drop(registry);
        // A rejected load changes nothing (rejection happens before any
        // eviction), so the resident scene's still-valid frames survive it.
        if let Ok(evicted) = &result {
            let mut cache = self.shared.cache.lock().unwrap();
            cache.invalidate_scene(&id);
            for victim in evicted {
                cache.invalidate_scene(victim);
            }
        }
        result.map(|_| ())
    }

    /// Loads (or replaces) a scene partitioned into `shards` spatial shards
    /// (see [`crate::shard`]). Each shard is admitted against the memory
    /// pool independently when a render needs it, so the scene's *total*
    /// size may exceed the whole registry budget as long as every single
    /// shard fits.
    ///
    /// # Errors
    ///
    /// [`ServeError::Admission`] if any single shard exceeds the budget.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn load_scene_sharded(
        &self,
        id: impl Into<SceneId>,
        params: Arc<GaussianParams>,
        background: [f32; 3],
        shards: usize,
    ) -> Result<(), ServeError> {
        let id = id.into();
        // Partition and gather outside the registry lock: this is the
        // expensive part of a sharded load.
        let sources = shard::shard_scene(&params, shards);
        let result =
            self.shared
                .registry
                .lock()
                .unwrap()
                .load_sharded(id.clone(), sources, background);
        if result.is_ok() {
            self.shared.cache.lock().unwrap().invalidate_scene(&id);
        }
        result
    }

    /// Loads a *new* scene, sharding it into `shards` shards — or, when
    /// `shards` is `None`, automatically when it exceeds
    /// [`ServeConfig::shard_bytes`]. Returns the number of shards actually
    /// used (1 = loaded unsharded; the partitioner clamps the requested
    /// count to the Gaussian count). Unlike [`RenderServer::load_scene`]
    /// this refuses to replace an existing id — the semantics
    /// `POST /scenes/<id>` needs.
    ///
    /// # Errors
    ///
    /// [`ServeError::SceneExists`] if the id is already loaded,
    /// [`ServeError::Admission`] if the scene (or one of its shards)
    /// exceeds the memory budget.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is `Some(0)`.
    pub fn load_scene_auto(
        &self,
        id: impl Into<SceneId>,
        params: Arc<GaussianParams>,
        background: [f32; 3],
        shards: Option<usize>,
    ) -> Result<usize, ServeError> {
        let id = id.into();
        let bytes = params.total_bytes() as u64;
        let shard_bytes = self.shared.config.shard_bytes;
        let k = match shards {
            Some(k) => {
                assert!(k > 0, "shard count must be at least 1");
                k
            }
            None if shard_bytes > 0 && bytes > shard_bytes => {
                usize::try_from(bytes.div_ceil(shard_bytes)).unwrap_or(usize::MAX)
            }
            None => 1,
        };
        let sources = (k > 1).then(|| shard::shard_scene(&params, k));
        // Report the count the partitioner actually produced (it clamps to
        // the Gaussian count), so the answer agrees with the layout.
        let k = sources.as_ref().map_or(1, Vec::len);
        let mut registry = self.shared.registry.lock().unwrap();
        if registry.contains(&id) {
            return Err(ServeError::SceneExists(id));
        }
        let result = match sources {
            Some(sources) => registry
                .load_sharded(id.clone(), sources, background)
                .map(|()| Vec::new()),
            None => registry.load(id.clone(), params, background),
        };
        drop(registry);
        let evicted = result?;
        let mut cache = self.shared.cache.lock().unwrap();
        cache.invalidate_scene(&id);
        for victim in &evicted {
            cache.invalidate_scene(victim);
        }
        Ok(k)
    }

    /// Shard layout and residency of every loaded scene (sorted by id).
    pub fn scene_layouts(&self) -> Vec<SceneLayout> {
        self.shared.registry.lock().unwrap().layouts()
    }

    /// Unloads a scene and drops its cached frames.
    pub fn unload_scene(&self, id: &SceneId) -> bool {
        let unloaded = self.shared.registry.lock().unwrap().unload(id);
        if unloaded {
            self.shared.cache.lock().unwrap().invalidate_scene(id);
        }
        unloaded
    }

    /// Whether `id` is currently loaded.
    pub fn contains_scene(&self, id: &SceneId) -> bool {
        self.shared.registry.lock().unwrap().contains(id)
    }

    /// Ids of the currently loaded scenes (sorted).
    pub fn loaded_scenes(&self) -> Vec<SceneId> {
        self.shared.registry.lock().unwrap().loaded()
    }

    /// Admission-control counters of the underlying registry.
    pub fn registry_stats(&self) -> RegistryStats {
        self.shared.registry.lock().unwrap().stats().clone()
    }

    /// Submits a request: answers it straight from the frame cache when the
    /// key is resident (the *fast path* — the request never enqueues), else
    /// enqueues it with the scheduler, blocking while the queue is full.
    ///
    /// Fast-path hits are counted separately in the service stats
    /// ([`ServeStats::fast_hits`] / [`ServeStats::hit_latency`]) so the
    /// request-latency reservoir keeps measuring the queue-wait + render
    /// path instead of being diluted by sub-microsecond cache answers.
    ///
    /// The in-process API trusts its caller: request fields outside their
    /// documented ranges (e.g. an `sh_degree` above
    /// [`gs_core::sh::MAX_DEGREE`]) are contract violations that panic the
    /// worker's batch — the panic is contained, every affected ticket
    /// resolves to an error, and the counts stay consistent, but co-batched
    /// requests are dropped with it. Untrusted input belongs behind the
    /// HTTP front-end, whose [`crate::wire`] parser validates before
    /// submitting.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] if the scene is not loaded at submit
    /// time, [`ServeError::ShuttingDown`] if the queue is closed.
    pub fn submit(&self, request: RenderRequest) -> Result<Ticket, ServeError> {
        let submitted = Instant::now();
        if !self
            .shared
            .registry
            .lock()
            .unwrap()
            .contains(&request.scene)
        {
            self.shared.obs.record_outcome(
                Some(request.scene.as_str()),
                request.client.as_deref(),
                false,
                false,
                0.0,
            );
            return Err(ServeError::UnknownScene(request.scene));
        }
        // A request that is already dead gets the same answer the workers'
        // sweep would give it, whether or not its key is cache-resident —
        // cache state must not change a dead request's outcome or counters
        // (expired wins over cancelled, like respond_dead).
        if request.is_expired(submitted) {
            self.shared.stats.record_expired(1);
            self.shared.obs.record_outcome(
                Some(request.scene.as_str()),
                request.client.as_deref(),
                false,
                false,
                0.0,
            );
            let (tx, rx) = mpsc::channel();
            let _ = tx.send(Err(ServeError::DeadlineExceeded));
            return Ok(Ticket { rx });
        }
        if request.is_cancelled() {
            self.shared.stats.record_cancelled(1);
            self.shared.obs.record_outcome(
                Some(request.scene.as_str()),
                request.client.as_deref(),
                false,
                false,
                0.0,
            );
            let (tx, rx) = mpsc::channel();
            let _ = tx.send(Err(ServeError::Cancelled));
            return Ok(Ticket { rx });
        }
        // Ingress trace sampling: mint a trace for every Nth request that
        // does not already carry one. Requests arriving with a context
        // attached (the HTTP front-end's `X-Trace-Id`, or a cluster relay)
        // are recorded into *that* tree instead — their root span lives
        // with whoever minted the trace, so no root is opened here.
        let mut request = request;
        let mut trace_root = None;
        if request.trace.is_none() && self.shared.obs.should_trace() {
            let trace = self.shared.obs.mint();
            let root = trace.start(0, "request");
            request.trace = Some(TraceContext {
                trace,
                parent: root.id(),
            });
            trace_root = Some(root);
        }
        // The pre-enqueue cache probe: a resident key is answered here,
        // skipping the queue and the worker pool entirely. A miss is not
        // counted (and not fed to the admission policy) — the worker-side
        // lookup does that — so every request still contributes exactly one
        // counted lookup. The key travels with the job so the worker never
        // recomputes it.
        let key = (self.shared.config.cache_bytes > 0)
            .then(|| FrameKey::for_request(&request, self.shared.config.pose_quant));
        if let Some(key) = &key {
            let hit = self.shared.cache.lock().unwrap().get_fast(key);
            if let Some(image) = hit {
                let latency = submitted.elapsed();
                self.shared.stats.record_fast_hit(latency);
                self.shared.obs.record_outcome(
                    Some(request.scene.as_str()),
                    request.client.as_deref(),
                    true,
                    true,
                    latency.as_secs_f64(),
                );
                if let Some(ctx) = &request.trace {
                    let clock = ctx.trace.clock();
                    let start = clock.us_of(submitted);
                    let end = clock.now_us();
                    ctx.trace.record(
                        ctx.parent,
                        "cache_fast_hit",
                        start,
                        end.saturating_sub(start),
                    );
                }
                if let Some(root) = trace_root {
                    root.finish();
                    if let Some(ctx) = &request.trace {
                        self.shared.obs.finish(&ctx.trace);
                    }
                }
                let (tx, rx) = mpsc::channel();
                let _ = tx.send(Ok(RenderedFrame {
                    image,
                    scene: request.scene,
                    latency,
                    batch_size: 1,
                    cache_hit: true,
                    // One past the pool: no worker thread touched this.
                    worker: self.shared.config.workers,
                    shards: 1,
                }));
                return Ok(Ticket { rx });
            }
        }
        let (tx, rx) = mpsc::channel();
        // Counted before the push makes the job visible, so a worker that
        // pops it always observes a nonzero count (see `Shared`).
        let has_deadline = request.deadline.is_some();
        if has_deadline {
            self.shared.deadline_jobs.fetch_add(1, Ordering::Relaxed);
        }
        // Wire the cancel token to the sweep trigger (fires on `cancel()`,
        // or immediately if the client is already gone).
        if let Some(token) = &request.cancel {
            token.watch(&self.shared.pending_cancels);
        }
        let pushed = self.shared.sched.push(Job {
            request,
            key,
            tx,
            enqueued: Instant::now(),
            trace_root,
        });
        if pushed.is_err() {
            if has_deadline {
                self.shared.deadline_jobs.fetch_sub(1, Ordering::Relaxed);
            }
            return Err(ServeError::ShuttingDown);
        }
        Ok(Ticket { rx })
    }

    /// Submits a request and waits for the frame.
    ///
    /// # Errors
    ///
    /// See [`RenderServer::submit`] and [`Ticket::wait`].
    pub fn render_blocking(&self, request: RenderRequest) -> Response {
        self.submit(request)?.wait()
    }

    /// Renders one shard of a scene (or a whole unsharded scene) as a
    /// partial-frame [`FrameLayer`], optionally continuing an incoming
    /// layer's per-pixel blend state — the serving primitive of cross-node
    /// sharded rendering.
    ///
    /// `shard` selects a shard of a sharded scene (`Some(0)` is also
    /// accepted for an unsharded scene); `None` composites every
    /// frustum-visible shard of the scene, front-to-back. When `into` is
    /// given, rasterization continues that layer's per-pixel `(color,
    /// transmittance)` state exactly where a nearer shard left it, which is
    /// what keeps a relayed cross-node composite bit-identical to the
    /// single-node fan-out render.
    ///
    /// Runs on the caller's thread rather than the worker pool: layer
    /// traffic arrives from a cluster coordinator that already provides
    /// admission and backpressure, and a relayed layer render is bounded by
    /// its wire hops, not by queue position. Deadlines and cancel tokens on
    /// `request` are ignored for the same reason.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] / [`ServeError::UnknownShard`] when the
    /// scene or shard is not loaded.
    ///
    /// # Panics
    ///
    /// Panics if `request.sh_degree` exceeds [`gs_core::sh::MAX_DEGREE`] or
    /// if `into`'s size does not match the request's viewport (in-process
    /// contract violations; the HTTP front-end validates both before
    /// calling).
    pub fn render_layer_blocking(
        &self,
        request: &RenderRequest,
        shard: Option<usize>,
        into: Option<FrameLayer>,
    ) -> Result<FrameLayer, ServeError> {
        assert!(
            request.sh_degree <= gs_core::sh::MAX_DEGREE,
            "sh_degree {} exceeds the supported maximum {}",
            request.sh_degree,
            gs_core::sh::MAX_DEGREE
        );
        // A traced layer render wraps itself in a `layer_render` span and
        // re-parents the request's context under it, so the shard / phase
        // spans recorded below nest where the (possibly remote) caller
        // expects them.
        let span = request.trace.as_ref().map(|ctx| ctx.child("layer_render"));
        let reparented;
        let request = match (&span, &request.trace) {
            (Some(span), Some(ctx)) => {
                reparented = RenderRequest {
                    trace: Some(ctx.at(span.id())),
                    ..request.clone()
                };
                &reparented
            }
            _ => request,
        };
        // Layer traffic is a replica's main workload under a cluster, so it
        // feeds the heat tables and SLO windows like any front-door render.
        let started_total = Instant::now();
        let outcome = |ok: bool| {
            self.shared.obs.record_outcome(
                Some(request.scene.as_str()),
                request.client.as_deref(),
                ok,
                false,
                started_total.elapsed().as_secs_f64(),
            );
        };
        let view = match self.shared.registry.lock().unwrap().get(&request.scene) {
            Ok(view) => view,
            Err(e) => {
                outcome(false);
                return Err(e);
            }
        };
        let (width, height) = (request.viewport.width(), request.viewport.height());
        let mut layer = match into {
            Some(layer) => {
                assert_eq!(
                    (layer.width(), layer.height()),
                    (width, height),
                    "incoming layer size must match the request viewport"
                );
                layer
            }
            None => FrameLayer::new(width, height),
        };
        match &view {
            SceneView::Single(scene) => {
                if let Some(k) = shard.filter(|&k| k != 0) {
                    outcome(false);
                    return Err(ServeError::UnknownShard(request.scene.clone(), k));
                }
                let started = Instant::now();
                let tile_threads = self.shared.tile_threads();
                let (stats, timings) = gs_render::pipeline::render_layer_tiled_timed(
                    &scene.params,
                    &request.camera,
                    request.sh_degree,
                    &request.viewport,
                    &mut layer,
                    tile_threads,
                );
                if tile_threads > 1 {
                    self.shared.stats.record_tile_renders(1);
                }
                self.shared.obs.sample_render(&stats, &timings);
                if let Some(ctx) = &request.trace {
                    let start = ctx.trace.clock().us_of(started);
                    record_phase_spans(ctx, ctx.parent, start, &timings);
                }
                self.shared.stats.record_shard_layer(started.elapsed());
            }
            SceneView::Sharded(sharded) => match shard {
                Some(k) => {
                    let Some(shard_view) = sharded.shards.get(k) else {
                        outcome(false);
                        return Err(ServeError::UnknownShard(request.scene.clone(), k));
                    };
                    render_one_shard(
                        &self.shared,
                        &request.scene,
                        sharded.epoch,
                        shard_view,
                        k,
                        request,
                        &mut layer,
                    );
                }
                None => {
                    composite_shards(&self.shared, &request.scene, sharded, request, &mut layer);
                }
            },
        }
        self.shared.stats.record_layer_served();
        outcome(true);
        Ok(layer)
    }

    /// The background color registered with a scene (what
    /// [`FrameLayer::finish`] should composite behind its layers).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] if the scene is not loaded.
    pub fn scene_background(&self, id: &SceneId) -> Result<[f32; 3], ServeError> {
        let view = self.shared.registry.lock().unwrap().get(id)?;
        Ok(match view {
            SceneView::Single(s) => s.background,
            SceneView::Sharded(s) => s.background,
        })
    }

    /// The registry's device admission budget in bytes — what a cluster
    /// coordinator places scenes against.
    pub fn budget_bytes(&self) -> u64 {
        self.shared.registry.lock().unwrap().budget_bytes()
    }

    /// Bytes currently charged to resident scenes and shards.
    pub fn used_bytes(&self) -> u64 {
        self.shared.registry.lock().unwrap().used_bytes()
    }

    /// A bounded uniform sample of request latencies in seconds (see
    /// [`StatsCollector::latency_samples`]).
    pub fn latency_samples(&self, max: usize) -> Vec<f64> {
        self.shared.stats.latency_samples(max)
    }

    /// The observability layer: trace sampling, the finished-span ring and
    /// the kernel-phase roofline gauges.
    pub fn obs(&self) -> &ServeObs {
        &self.shared.obs
    }

    /// The hottest scenes by windowed request rate (see
    /// [`ServeObs::heat_scenes`]); what heat-driven replication consumes.
    pub fn heat_scenes(&self) -> Vec<gs_obs::HeatRow> {
        self.shared.obs.heat_scenes().snapshot().0
    }

    /// The hottest clients by windowed request rate (see
    /// [`ServeObs::heat_clients`]).
    pub fn heat_clients(&self) -> Vec<gs_obs::HeatRow> {
        self.shared.obs.heat_clients().snapshot().0
    }

    /// Prometheus text exposition of the metrics registry (request
    /// counters, latency histograms, phase rooflines, trace gauges).
    pub fn metrics_text(&self) -> String {
        self.shared.obs.metrics_text()
    }

    /// Snapshot of the service statistics.
    pub fn stats(&self) -> ServeStats {
        let cache = self.shared.cache.lock().unwrap().stats();
        let mut stats = self.shared.stats.snapshot(cache);
        stats.scheduler = self.shared.sched.name().to_string();
        stats.cache_policy = self.shared.config.cache_policy.name().to_string();
        stats.sched_reorders = self.shared.sched.reorders();
        stats
    }

    /// Drains the queue, stops the workers and returns the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_workers();
        self.stats()
    }

    fn stop_workers(&mut self) {
        // Joined first so no tick observes a closing scheduler as a stall.
        self.watcher.take();
        self.shared.sched.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for RenderServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn worker_loop(shared: &Shared, worker_idx: usize) {
    while let Some(batch) = shared.sched.next_batch(shared.config.max_batch) {
        // Skip queued jobs whose deadline has already passed or whose client
        // cancelled (disconnected) — rendering a frame nobody is waiting for
        // anymore only deepens an overload. They are answered
        // (`DeadlineExceeded` / `Cancelled`) and counted, not dropped. The
        // sweep walks the whole queue under its mutex, so it only runs while
        // a deadline could actually be expiring (`deadline_jobs` counts the
        // queued deadline-bearing jobs) or a cancellation was signalled
        // since the last sweep (`pending_cancels`, swapped to zero here so
        // each cancel buys at least — and roughly at most — one walk).
        // Plain traffic, token-carrying or not, never pays. (Dead jobs the
        // scheduler already handed into this batch are partitioned out
        // below instead.)
        let now = Instant::now();
        let cancels = shared.pending_cancels.swap(0, Ordering::SeqCst) > 0;
        if cancels || shared.deadline_jobs.load(Ordering::Relaxed) > 0 {
            for job in shared.sched.drain_where(usize::MAX, &mut |j: &Job| {
                j.request.is_expired(now) || j.request.is_cancelled()
            }) {
                if job.request.deadline.is_some() {
                    shared.deadline_jobs.fetch_sub(1, Ordering::Relaxed);
                }
                respond_dead(shared, job, now);
            }
        }
        let scene_id = batch[0].request.scene.clone();
        let left_queue = batch
            .iter()
            .filter(|j| j.request.deadline.is_some())
            .count();
        if left_queue > 0 {
            shared
                .deadline_jobs
                .fetch_sub(left_queue as u64, Ordering::Relaxed);
        }
        // The popped job (and, pathologically, a just-drained one) can
        // itself be expired or cancelled.
        let now = Instant::now();
        let (dead, live): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.request.is_expired(now) || j.request.is_cancelled());
        for job in dead {
            respond_dead(shared, job, now);
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;
        let batch_size = batch.len();
        // A panic in the batch path (a rendering bug, a poisoned lock) must
        // not kill the worker: the panicking call drops its jobs, which
        // disconnects their tickets (clients see an error instead of hanging
        // forever), and the worker lives on to drain the rest of the queue.
        // Every job that was dropped unanswered is recorded as an error —
        // one per job, not one per batch — and the batch itself still lands
        // in the histogram, so `completed + errors` always accounts for
        // every submitted request and the histogram for every formed batch.
        let acct = BatchAccounting::default();
        let scene_for_event = scene_id.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_batch(shared, worker_idx, scene_id, batch, batch_size, &acct);
        }));
        if outcome.is_err() {
            let dropped = (batch_size as u64).saturating_sub(acct.answered.load(Ordering::Relaxed));
            shared.stats.record_errors(dropped);
            shared.obs.recorder().record(
                gs_obs::Event::new(
                    gs_obs::EventLevel::Error,
                    "worker",
                    "render batch panicked; jobs dropped to errors",
                )
                .scene(scene_for_event)
                .field("worker", worker_idx.to_string())
                .field("dropped", dropped.to_string()),
            );
            for _ in 0..dropped {
                shared.obs.record_outcome(None, None, false, false, 0.0);
            }
            if !acct.batch_recorded.load(Ordering::Relaxed) {
                shared.stats.record_batch(batch_size, 0, 0);
            }
        }
    }
}

/// Per-batch accounting shared across the worker's panic boundary: how many
/// jobs were answered (completed or errored) and whether the batch reached a
/// `record_batch` call, so the panic handler can settle exactly the rest.
#[derive(Default)]
struct BatchAccounting {
    answered: AtomicU64,
    batch_recorded: AtomicBool,
}

fn process_batch(
    shared: &Shared,
    worker_idx: usize,
    scene_id: SceneId,
    batch: Vec<Job>,
    batch_size: usize,
    acct: &BatchAccounting,
) {
    let answered = &acct.answered;
    let caching = shared.config.cache_bytes > 0;

    // Queue-wait spans: enqueue -> this batch pop, recorded on each traced
    // job's own clock (a remote context's clock anchors at its minter).
    let popped = Instant::now();
    for job in &batch {
        if let Some(ctx) = &job.request.trace {
            let clock = ctx.trace.clock();
            let start = clock.us_of(job.enqueued);
            let end = clock.us_of(popped);
            ctx.trace
                .record(ctx.parent, "queue", start, end.saturating_sub(start));
        }
    }

    // Answer what the cache already holds; collect the misses. Hits are
    // responded to after the cache lock is released so one worker's fan-out
    // never serializes the other workers' lookups. With the cache disabled,
    // no keys are computed and the cache lock is never touched.
    let mut misses: Vec<(Job, Option<FrameKey>)> = Vec::new();
    if caching {
        let mut hits: Vec<(Job, Arc<gs_core::image::Image>)> = Vec::new();
        let lookup_started = Instant::now();
        {
            let mut cache = shared.cache.lock().unwrap();
            for mut job in batch {
                // Computed at submit time; recompute only as a safety net.
                let key = job.key.take().unwrap_or_else(|| {
                    FrameKey::for_request(&job.request, shared.config.pose_quant)
                });
                match cache.get(&key) {
                    Some(image) => hits.push((job, image)),
                    None => misses.push((job, Some(key))),
                }
            }
        }
        for (job, image) in hits {
            if let Some(ctx) = &job.request.trace {
                let clock = ctx.trace.clock();
                let start = clock.us_of(lookup_started);
                let end = clock.now_us();
                ctx.trace
                    .record(ctx.parent, "cache_lookup", start, end.saturating_sub(start));
            }
            respond(
                shared, worker_idx, job, batch_size, true, 1, image, answered,
            );
        }
    } else {
        misses.extend(batch.into_iter().map(|job| (job, None)));
    }
    if misses.is_empty() {
        acct.batch_recorded.store(true, Ordering::Relaxed);
        shared.stats.record_batch(batch_size, 0, 0);
        return;
    }

    let view = shared.registry.lock().unwrap().get(&scene_id);
    let view = match view {
        Ok(v) => v,
        Err(e) => {
            shared.obs.recorder().record(
                gs_obs::Event::new(
                    gs_obs::EventLevel::Error,
                    "worker",
                    format!("batch failed: {e}"),
                )
                .scene(scene_id.clone())
                .field("jobs", misses.len().to_string()),
            );
            for (job, _) in misses {
                shared.stats.record_error();
                shared.obs.record_outcome(
                    Some(job.request.scene.as_str()),
                    job.request.client.as_deref(),
                    false,
                    false,
                    job.enqueued.elapsed().as_secs_f64(),
                );
                answered.fetch_add(1, Ordering::Relaxed);
                let _ = job.tx.send(Err(e.clone()));
            }
            acct.batch_recorded.store(true, Ordering::Relaxed);
            shared.stats.record_batch(batch_size, 0, 0);
            return;
        }
    };

    // With caching on, render each distinct cache key once and fan the frame
    // out to every job sharing it — the same collapse a cache hit at that
    // key would perform. With caching off there is no quantization contract,
    // so every request renders its own exact camera.
    let mut groups: Vec<(Option<FrameKey>, Vec<Job>)> = Vec::new();
    for (job, key) in misses {
        match key
            .is_some()
            .then(|| groups.iter_mut().find(|(k, _)| *k == key))
            .flatten()
        {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    let unique_requests: Vec<&RenderRequest> =
        groups.iter().map(|(_, jobs)| &jobs[0].request).collect();
    let epoch = view.epoch();
    let images: Vec<(Arc<gs_core::image::Image>, usize)> = match &view {
        SceneView::Single(scene) => {
            let tile_threads = shared.tile_threads();
            let render_started = Instant::now();
            let outcome = render_shared(
                &scene.params,
                scene.background,
                &unique_requests,
                tile_threads,
            );
            if tile_threads > 1 {
                shared
                    .stats
                    .record_tile_renders(unique_requests.len() as u64);
            }
            // Render + kernel-phase spans and roofline samples, from the
            // measurements the batch already took — nothing is re-timed.
            // The per-request renders ran sequentially from
            // `render_started`, so their spans are laid out end to end.
            let mut at = render_started;
            for ((_, jobs), (stats, timings)) in groups.iter().zip(&outcome.renders) {
                shared.obs.sample_render(stats, timings);
                let dur_us = (timings.total_s() * 1e6).round() as u64;
                for job in jobs {
                    if let Some(ctx) = &job.request.trace {
                        let start = ctx.trace.clock().us_of(at);
                        let render_id = ctx.trace.record(ctx.parent, "render", start, dur_us);
                        record_phase_spans(ctx, render_id, start, timings);
                    }
                }
                at += std::time::Duration::from_secs_f64(timings.total_s());
            }
            acct.batch_recorded.store(true, Ordering::Relaxed);
            shared
                .stats
                .record_batch(batch_size, outcome.union_active, outcome.summed_active);
            outcome.images.into_iter().map(|img| (img, 1)).collect()
        }
        SceneView::Sharded(sharded) => {
            let images = unique_requests
                .iter()
                .map(|request| render_sharded(shared, &scene_id, sharded, request))
                .collect();
            acct.batch_recorded.store(true, Ordering::Relaxed);
            // Sharded renders share no cull/gather across the batch (each
            // request composites its own shard order), so the sharing
            // counters stay untouched.
            shared.stats.record_batch(batch_size, 0, 0);
            images
        }
    };

    // Cache before responding: a client that sees its response and
    // immediately re-requests the same view must hit. The registry epoch is
    // re-checked under the cache lock (cache -> registry nesting; no other
    // path nests the two) so frames rendered from a scene that was replaced
    // or evicted mid-render are never inserted as that scene's current
    // frames. (Shard evictions are accounting only and do not bump the
    // epoch — the parameters are unchanged, so the frames stay valid.)
    if caching {
        let mut cache = shared.cache.lock().unwrap();
        let registry = shared.registry.lock().unwrap();
        let still_current = registry.epoch(&scene_id) == Some(epoch);
        if still_current {
            for ((key, _), (image, _)) in groups.iter().zip(&images) {
                if let Some(key) = key {
                    cache.insert(key.clone(), Arc::clone(image));
                }
            }
        }
    }
    for ((_, jobs), (image, shards)) in groups.into_iter().zip(images) {
        for job in jobs {
            respond(
                shared,
                worker_idx,
                job,
                batch_size,
                false,
                shards,
                Arc::clone(&image),
                answered,
            );
        }
    }
}

/// The sharded fan-out render: composites the *visible* shards of `view`
/// front-to-back by depth along the request's view ray into one
/// [`FrameLayer`], admitting each shard against the registry pool just
/// before rendering it. Only one shard needs to be resident at a time, so a
/// scene larger than the whole budget still serves. Returns the frame and
/// the number of shard layers actually rendered into it.
///
/// # Panics
///
/// Panics if the request's `sh_degree` exceeds [`gs_core::sh::MAX_DEGREE`]
/// (same contract as [`render_shared`]; the worker pool contains the
/// panic).
fn render_sharded(
    shared: &Shared,
    scene_id: &SceneId,
    view: &ShardedSceneView,
    request: &RenderRequest,
) -> (Arc<gs_core::image::Image>, usize) {
    assert!(
        request.sh_degree <= gs_core::sh::MAX_DEGREE,
        "sh_degree {} exceeds the supported maximum {}",
        request.sh_degree,
        gs_core::sh::MAX_DEGREE
    );
    let mut layer = FrameLayer::new(request.viewport.width(), request.viewport.height());
    // A traced fan-out render wraps its shard composite in a `render` span
    // and re-parents the context under it, so the per-shard spans nest.
    let span = request.trace.as_ref().map(|ctx| ctx.child("render"));
    let reparented;
    let request = match (&span, &request.trace) {
        (Some(span), Some(ctx)) => {
            reparented = RenderRequest {
                trace: Some(ctx.at(span.id())),
                ..request.clone()
            };
            &reparented
        }
        _ => request,
    };
    let rendered = composite_shards(shared, scene_id, view, request, &mut layer);
    (Arc::new(layer.finish(view.background)), rendered)
}

/// Renders every frustum-visible shard of `view` front-to-back into `layer`
/// (view-adaptive culling: shards whose AABB misses the frustum are skipped
/// and counted — they could not have contributed, so the composite stays
/// bit-identical). Returns the number of shards rendered.
fn composite_shards(
    shared: &Shared,
    scene_id: &SceneId,
    view: &ShardedSceneView,
    request: &RenderRequest,
    layer: &mut FrameLayer,
) -> usize {
    let aabbs: Vec<Aabb> = view.shards.iter().map(|s| s.aabb).collect();
    let max_scales: Vec<f32> = view.shards.iter().map(|s| s.max_scale).collect();
    let visible = shard::visible_shards(&aabbs, &max_scales, &request.camera, &request.viewport);
    let culled = view.shards.len() - visible.len();
    if culled > 0 {
        shared.stats.record_shards_culled(culled as u64);
    }
    let rendered = visible.len();
    for k in visible {
        render_one_shard(
            shared,
            scene_id,
            view.epoch,
            &view.shards[k],
            k,
            request,
            layer,
        );
    }
    rendered
}

/// Renders shard `k` into `layer`, charging it to the registry pool first.
fn render_one_shard(
    shared: &Shared,
    scene_id: &SceneId,
    epoch: u64,
    shard: &crate::registry::ShardView,
    k: usize,
    request: &RenderRequest,
    layer: &mut FrameLayer,
) {
    // Admission accounting: charge the shard to the pool (evicting LRU
    // residents) before rendering it. A stale epoch (scene replaced
    // mid-request) or a full pool never blocks the render itself — the
    // `Arc` snapshot in hand stays valid either way.
    let residency = shared
        .registry
        .lock()
        .unwrap()
        .ensure_shard_resident(scene_id, k, epoch);
    // Whole scenes unloaded to make room lose their cached frames, like
    // the victims of every other eviction path. (The registry lock is
    // released first; only the cache -> registry nesting is allowed.)
    if !residency.evicted_scenes.is_empty() {
        let mut cache = shared.cache.lock().unwrap();
        for victim in &residency.evicted_scenes {
            cache.invalidate_scene(victim);
        }
    }
    let started = Instant::now();
    let tile_threads = shared.tile_threads();
    let (stats, timings) = gs_render::pipeline::render_layer_tiled_timed(
        &shard.params,
        &request.camera,
        request.sh_degree,
        &request.viewport,
        layer,
        tile_threads,
    );
    if tile_threads > 1 {
        shared.stats.record_tile_renders(1);
    }
    shared.obs.sample_render(&stats, &timings);
    if let Some(ctx) = &request.trace {
        let clock = ctx.trace.clock();
        let start = clock.us_of(started);
        let end = clock.now_us();
        let shard_span = ctx.trace.record(
            ctx.parent,
            format!("shard:{k}"),
            start,
            end.saturating_sub(start),
        );
        record_phase_spans(ctx, shard_span, start, &timings);
    }
    shared.stats.record_shard_layer(started.elapsed());
}

/// Lays sequential `project` / `bin` / `raster` child spans under `parent`,
/// starting at `start_us` on the trace's clock — the per-phase breakdown of
/// a render whose phase durations the kernel measured itself.
fn record_phase_spans(ctx: &TraceContext, parent: u32, start_us: u64, timings: &RenderTimings) {
    let mut at = start_us;
    for (name, seconds) in [
        ("project", timings.project_s),
        ("bin", timings.bin_s),
        ("raster", timings.raster_s),
    ] {
        let dur = (seconds * 1e6).round() as u64;
        ctx.trace.record(parent, name, at, dur);
        at = at.saturating_add(dur);
    }
}

/// Answers a swept job: expired deadlines win over cancellation (an expired
/// request is dead regardless of whether its client is still there).
fn respond_dead(shared: &Shared, job: Job, now: Instant) {
    let expired = job.request.is_expired(now);
    if let Some(ctx) = &job.request.trace {
        let clock = ctx.trace.clock();
        let start = clock.us_of(job.enqueued);
        let name = if expired {
            "expired_in_queue"
        } else {
            "cancelled_in_queue"
        };
        ctx.trace.record(
            ctx.parent,
            name,
            start,
            clock.now_us().saturating_sub(start),
        );
    }
    if expired {
        shared.stats.record_expired(1);
    } else {
        shared.stats.record_cancelled(1);
    }
    shared.obs.record_outcome(
        Some(job.request.scene.as_str()),
        job.request.client.as_deref(),
        false,
        false,
        job.enqueued.elapsed().as_secs_f64(),
    );
    if let Some(root) = job.trace_root {
        root.finish();
        if let Some(ctx) = &job.request.trace {
            shared.obs.finish(&ctx.trace);
        }
    }
    // A dropped ticket just means the client stopped waiting.
    let _ = job.tx.send(Err(if expired {
        ServeError::DeadlineExceeded
    } else {
        ServeError::Cancelled
    }));
}

#[allow(clippy::too_many_arguments)]
fn respond(
    shared: &Shared,
    worker_idx: usize,
    job: Job,
    batch_size: usize,
    cache_hit: bool,
    shards: usize,
    image: Arc<gs_core::image::Image>,
    answered: &AtomicU64,
) {
    let latency = job.enqueued.elapsed();
    let trace = job.request.trace.clone();
    shared.obs.record_outcome(
        Some(job.request.scene.as_str()),
        job.request.client.as_deref(),
        true,
        cache_hit,
        latency.as_secs_f64(),
    );
    let frame = RenderedFrame {
        image,
        scene: job.request.scene,
        latency,
        batch_size,
        cache_hit,
        worker: worker_idx,
        shards,
    };
    // Record before sending so a client that receives its response always
    // finds itself counted in a subsequent `stats()` snapshot. The trace is
    // likewise finished first, so a caller holding the other end of the
    // ticket observes the complete span tree.
    shared
        .stats
        .record_completed_traced(worker_idx, latency, trace.as_ref().map(|c| c.trace.id()));
    answered.fetch_add(1, Ordering::Relaxed);
    if let Some(root) = job.trace_root {
        root.finish();
        if let Some(ctx) = &trace {
            shared.obs.finish(&ctx.trace);
        }
    }
    // A dropped ticket just means the client stopped waiting.
    let _ = job.tx.send(Ok(frame));
}
