//! A bounded multi-producer multi-consumer job queue built on `std` only.
//!
//! Producers block in [`BoundedQueue::push`] when the queue is full (the
//! backpressure that keeps a closed-loop load generator honest) and consumers
//! block in [`BoundedQueue::pop`] when it is empty. [`BoundedQueue::close`]
//! wakes everyone: subsequent pushes fail and pops drain the remaining items
//! before returning `None`.
//!
//! Workers form same-scene batches with [`BoundedQueue::drain_where`], which
//! removes up to `max` queued items matching a predicate in FIFO order.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues `item`.
    ///
    /// Returns `Err(item)` if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it.
    ///
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Removes and returns up to `max` queued items for which `pred` is true,
    /// preserving FIFO order. Does not block.
    pub fn drain_where(&self, max: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut state = self.state.lock().unwrap();
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(state.items.len());
        while let Some(item) = state.items.pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        state.items = kept;
        drop(state);
        for _ in 0..taken.len() {
            self.not_full.notify_one();
        }
        taken
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending and future pushes fail, and pops return
    /// `None` once the remaining items are drained.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_is_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert!(q.push(2).is_err());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_capacity_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer should be blocked");
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn close_while_producer_is_blocked_in_push_returns_the_item() {
        // A producer parked in `push` on a full queue must be woken by
        // `close()` and get its item back instead of deadlocking.
        let q = Arc::new(BoundedQueue::new(1));
        q.push(10).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(11));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer should be blocked, not enqueued");
        q.close();
        assert_eq!(
            producer.join().unwrap(),
            Err(11),
            "a blocked push must fail with its item on close"
        );
        // The item enqueued before the close still drains.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_where_on_a_closed_nonempty_queue_still_drains_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        q.close();
        let evens = q.drain_where(2, |&i| i % 2 == 0);
        assert_eq!(evens, vec![0, 2], "closed queues still drain FIFO");
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![1, 3, 4, 5]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_where_takes_matching_in_order() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let evens = q.drain_where(3, |&i| i % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        // Non-matching and beyond-max items keep their order.
        let rest: Vec<i32> =
            std::iter::from_fn(|| if q.is_empty() { None } else { q.pop() }).collect();
        assert_eq!(rest, vec![1, 3, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn many_producers_and_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(4));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    q.push(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
