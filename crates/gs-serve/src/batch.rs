//! Same-scene batch rendering with shared frustum-culling and gathering.
//!
//! When several requests target the same scene, the worker culls each view
//! (a cheap geometric pass), takes the *union* of the surviving ids, gathers
//! the union's parameters out of the full container once, and renders every
//! view from that shared subset. The gather — the pass that touches all 59
//! parameters per Gaussian — is paid once per batch instead of once per
//! request.
//!
//! Correctness rests on two invariants the render crate establishes:
//!
//! 1. Culling is a superset of projection, so a view never loses a
//!    contributing Gaussian by rendering from its (or a union's) culled set.
//! 2. Gathering preserves ascending id order and the tile depth sort is
//!    stable, so the splat composition order — and therefore every output
//!    pixel — is bit-identical to an unbatched render. Batch composition can
//!    change *how fast* a frame is produced, never its bytes.

use std::sync::Arc;

use gs_core::gaussian::GaussianParams;
use gs_core::image::Image;
use gs_render::culling::frustum_cull;
use gs_render::pipeline::{render_tiled, RenderStats, RenderTimings};

use crate::request::RenderRequest;

/// Result of rendering one batch of same-scene requests.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One image per input request, in input order.
    pub images: Vec<Arc<Image>>,
    /// Gaussians in the shared (union) gathered set.
    pub union_active: usize,
    /// Sum of each request's own active count — the Gaussians that would
    /// have been gathered without sharing. `summed_active / union_active`
    /// is the batch's gather-sharing factor.
    pub summed_active: usize,
    /// Per-request render statistics and kernel-phase timings, in input
    /// order — what the observability layer turns into spans and roofline
    /// samples without re-measuring anything.
    pub renders: Vec<(RenderStats, RenderTimings)>,
}

/// Renders `requests` (which must all target the scene held in `params`)
/// through a shared cull-and-gather.
///
/// `tile_threads` is the tile-parallel width each render may fan its
/// rasterization out over (`<= 1` renders sequentially); the output bytes
/// are identical either way.
///
/// # Panics
///
/// Panics if a request's `sh_degree` exceeds [`gs_core::sh::MAX_DEGREE`].
/// (Without this check a release build would silently render the clamped
/// degree; the serving worker pool catches the panic and answers the batch
/// with errors instead.)
pub fn render_shared(
    params: &GaussianParams,
    background: [f32; 3],
    requests: &[&RenderRequest],
    tile_threads: usize,
) -> BatchOutcome {
    for r in requests {
        assert!(
            r.sh_degree <= gs_core::sh::MAX_DEGREE,
            "sh_degree {} exceeds the supported maximum {}",
            r.sh_degree,
            gs_core::sh::MAX_DEGREE
        );
    }
    if requests.is_empty() {
        return BatchOutcome {
            images: Vec::new(),
            union_active: 0,
            summed_active: 0,
            renders: Vec::new(),
        };
    }

    let culls: Vec<Vec<u32>> = requests
        .iter()
        .map(|r| frustum_cull(params, &r.camera, &r.viewport).ids)
        .collect();
    let summed_active: usize = culls.iter().map(Vec::len).sum();

    // Ascending union so the gathered subset preserves global splat order.
    let mut union_ids: Vec<u32> = culls.into_iter().flatten().collect();
    union_ids.sort_unstable();
    union_ids.dedup();
    let shared = params.gather(&union_ids);

    let mut images = Vec::with_capacity(requests.len());
    let mut renders = Vec::with_capacity(requests.len());
    for r in requests {
        let out = render_tiled(
            &shared,
            &r.camera,
            r.sh_degree,
            &r.viewport,
            background,
            tile_threads,
        );
        renders.push((out.stats, out.timings));
        images.push(Arc::new(out.image));
    }

    BatchOutcome {
        images,
        union_active: union_ids.len(),
        summed_active,
        renders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::camera::Camera;
    use gs_core::math::Vec3;
    use gs_core::rng::Rng64;
    use gs_render::pipeline::render_image;

    fn random_scene(seed: u64, n: usize) -> GaussianParams {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut p = GaussianParams::with_capacity(n);
        for _ in 0..n {
            p.push_isotropic(
                Vec3::new(
                    rng.gen_range(-6.0f32..6.0),
                    rng.gen_range(-4.0f32..4.0),
                    rng.gen_range(-2.0f32..6.0),
                ),
                rng.gen_range(0.1f32..0.4),
                [rng.gen_f32(), rng.gen_f32(), rng.gen_f32()],
                rng.gen_range(0.3f32..0.9),
            );
        }
        p
    }

    fn cam_at(x: f32) -> Camera {
        Camera::look_at(
            48,
            36,
            1.2,
            Vec3::new(x, 0.0, -8.0),
            Vec3::new(x, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn batched_render_is_byte_identical_to_unbatched() {
        let params = random_scene(9, 300);
        let bg = [0.02, 0.02, 0.05];
        let reqs: Vec<RenderRequest> = [-4.0f32, 0.0, 4.0]
            .iter()
            .map(|&x| RenderRequest::full("s", cam_at(x)))
            .collect();
        let refs: Vec<&RenderRequest> = reqs.iter().collect();
        let batched = render_shared(&params, bg, &refs, 1);
        for (req, img) in reqs.iter().zip(&batched.images) {
            let solo = render_image(&params, &req.camera, req.sh_degree, bg);
            assert_eq!(
                solo.data(),
                img.data(),
                "batched output must be bit-identical to a solo render"
            );
        }
    }

    #[test]
    fn tile_parallel_batch_is_byte_identical_to_sequential() {
        let params = random_scene(13, 300);
        let bg = [0.02, 0.02, 0.05];
        let reqs: Vec<RenderRequest> = [-2.0f32, 2.0]
            .iter()
            .map(|&x| RenderRequest::full("s", cam_at(x)))
            .collect();
        let refs: Vec<&RenderRequest> = reqs.iter().collect();
        let sequential = render_shared(&params, bg, &refs, 1);
        let parallel = render_shared(&params, bg, &refs, 4);
        for (a, b) in sequential.images.iter().zip(&parallel.images) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn batch_of_one_matches_too() {
        let params = random_scene(10, 120);
        let req = RenderRequest::full("s", cam_at(1.0));
        let out = render_shared(&params, [0.0; 3], &[&req], 1);
        let solo = render_image(&params, &req.camera, 3, [0.0; 3]);
        assert_eq!(solo.data(), out.images[0].data());
        assert_eq!(out.union_active, out.summed_active);
    }

    #[test]
    fn overlapping_views_share_culling_work() {
        let params = random_scene(11, 400);
        // Nearly identical cameras: the union is barely larger than one view.
        let reqs: Vec<RenderRequest> = [0.0f32, 0.05, 0.1, 0.15]
            .iter()
            .map(|&x| RenderRequest::full("s", cam_at(x)))
            .collect();
        let refs: Vec<&RenderRequest> = reqs.iter().collect();
        let out = render_shared(&params, [0.0; 3], &refs, 1);
        assert!(out.union_active > 0);
        assert!(
            (out.summed_active as f64) > 3.0 * out.union_active as f64,
            "4 near-identical views should share ~4x culling: union {} summed {}",
            out.union_active,
            out.summed_active
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let params = random_scene(12, 10);
        let out = render_shared(&params, [0.0; 3], &[], 1);
        assert!(out.images.is_empty());
        assert_eq!(out.union_active, 0);
    }
}
