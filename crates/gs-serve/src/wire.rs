//! Wire format of the HTTP front-end: the render-request body and the binary
//! frame encodings.
//!
//! A render request travels as a small text body of `key value` lines. The
//! parser is deliberately tolerant: `{`, `}`, `"`, `:` and `,` are treated as
//! whitespace, so the same fields can also be written JSON-ish:
//!
//! ```text
//! scene city
//! pos 0 0 -8
//! target 0 0 0
//! size 96 72
//! fov 1.2
//! sh 3
//! format raw
//! ```
//!
//! is equivalent to `{"scene": "city", "pos": 0 0 -8, ...}`. Required keys
//! are `scene`, `pos`, `target` and `size`; `up` (default `0 1 0`), `fov`
//! (default 1.0 rad), `viewport` (default full image), `sh` (default 3) and
//! `format` (`raw` | `ppm`, default `raw`) are optional.
//!
//! Responses are binary frames:
//!
//! * [`WireFormat::RawF32`] — the image's row-major RGB `f32` data as
//!   little-endian bytes (12 bytes per pixel). Lossless: the bytes decode to
//!   exactly the floats the renderer produced.
//! * [`WireFormat::Ppm`] — a binary `P6` PPM with 8-bit channels (values
//!   clamped to `[0, 1]` and scaled), viewable in any image tool.

use std::time::{Duration, Instant};

use gs_core::camera::{Camera, Viewport};
use gs_core::gaussian::GaussianParams;
use gs_core::image::Image;
use gs_core::math::Vec3;
use gs_core::rng::Rng64;

use crate::request::RenderRequest;

/// Largest accepted image dimension; bounds the allocation a request can ask
/// the renderer for.
pub const MAX_WIRE_DIM: usize = 4096;

/// Largest synthetic scene a `POST /scenes/<id>` body may ask the server to
/// build (bounds both build time and the host-side shard stores). Larger
/// specs are answered with `413`.
pub const MAX_SPEC_GAUSSIANS: usize = 500_000;

/// Whether `id` survives the `to_body()`/`parse()` round trip: non-empty,
/// no whitespace and none of the JSON-ish punctuation the parser strips.
pub fn valid_scene_id(id: &str) -> bool {
    !id.is_empty()
        && !id
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '{' | '}' | '"' | ':' | ',' | '/'))
}

/// Binary encoding of a rendered frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Row-major RGB `f32` little-endian bytes (lossless).
    #[default]
    RawF32,
    /// Binary `P6` PPM with 8-bit channels.
    Ppm,
}

impl WireFormat {
    /// The `Content-Type` header value for this encoding.
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::RawF32 => "application/octet-stream",
            WireFormat::Ppm => "image/x-portable-pixmap",
        }
    }
}

/// A malformed or invalid wire request; the message becomes the 400 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// A parsed render request as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Scene id (must not contain whitespace or `{ } " : ,`).
    pub scene: String,
    /// Camera center in world coordinates.
    pub position: [f32; 3],
    /// Point the camera looks at.
    pub target: [f32; 3],
    /// Up direction (default `[0, 1, 0]`).
    pub up: [f32; 3],
    /// Horizontal field of view in radians (default 1.0).
    pub fov_x: f32,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Optional sub-viewport `(x0, y0, x1, y1)`; `None` renders the full
    /// image.
    pub viewport: Option<(usize, usize, usize, usize)>,
    /// SH degree used for color (0..=3, default 3).
    pub sh_degree: usize,
    /// Response encoding.
    pub format: WireFormat,
    /// Optional deadline in milliseconds from the moment the request is
    /// turned into a render request; expired queued requests are answered
    /// with `503` instead of being rendered.
    pub deadline_ms: Option<u64>,
}

impl WireRequest {
    /// A full-image degree-3 request with default up/fov, raw-f32 encoded.
    pub fn new(
        scene: impl Into<String>,
        position: [f32; 3],
        target: [f32; 3],
        width: usize,
        height: usize,
    ) -> Self {
        Self {
            scene: scene.into(),
            position,
            target,
            up: [0.0, 1.0, 0.0],
            fov_x: 1.0,
            width,
            height,
            viewport: None,
            sh_degree: 3,
            format: WireFormat::default(),
            deadline_ms: None,
        }
    }

    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending key when the body is malformed,
    /// misses a required key, or fails validation.
    pub fn parse(body: &str) -> Result<Self, WireError> {
        let normalized = normalize_body(body);
        let mut tokens = normalized.split_whitespace();

        let mut scene: Option<String> = None;
        let mut position: Option<[f32; 3]> = None;
        let mut target: Option<[f32; 3]> = None;
        let mut up = [0.0f32, 1.0, 0.0];
        let mut fov_x = 1.0f32;
        let mut size: Option<(usize, usize)> = None;
        let mut viewport: Option<(usize, usize, usize, usize)> = None;
        let mut sh_degree = 3usize;
        let mut format = WireFormat::default();
        let mut deadline_ms: Option<u64> = None;

        use {parse_floats as floats, parse_uints as uints};
        while let Some(key) = tokens.next() {
            match key {
                "scene" => {
                    let id = tokens
                        .next()
                        .ok_or_else(|| err("key \"scene\" is missing its id"))?;
                    scene = Some(id.to_string());
                }
                "pos" => position = Some(floats::<3>(&mut tokens, "pos")?),
                "target" => target = Some(floats::<3>(&mut tokens, "target")?),
                "up" => up = floats::<3>(&mut tokens, "up")?,
                "fov" => fov_x = floats::<1>(&mut tokens, "fov")?[0],
                "size" => {
                    let [w, h] = uints::<2>(&mut tokens, "size")?;
                    size = Some((w, h));
                }
                "viewport" => {
                    let [x0, y0, x1, y1] = uints::<4>(&mut tokens, "viewport")?;
                    viewport = Some((x0, y0, x1, y1));
                }
                "sh" => sh_degree = uints::<1>(&mut tokens, "sh")?[0],
                "deadline_ms" => {
                    deadline_ms = Some(uints::<1>(&mut tokens, "deadline_ms")?[0] as u64)
                }
                "format" => {
                    format = match tokens.next() {
                        Some("raw") => WireFormat::RawF32,
                        Some("ppm") => WireFormat::Ppm,
                        other => {
                            return Err(err(format!(
                                "key \"format\": expected \"raw\" or \"ppm\", got {other:?}"
                            )))
                        }
                    };
                }
                unknown => return Err(err(format!("unknown key {unknown:?}"))),
            }
        }

        let scene = scene.ok_or_else(|| err("missing required key \"scene\""))?;
        let position = position.ok_or_else(|| err("missing required key \"pos\""))?;
        let target = target.ok_or_else(|| err("missing required key \"target\""))?;
        let (width, height) = size.ok_or_else(|| err("missing required key \"size\""))?;

        let req = Self {
            scene,
            position,
            target,
            up,
            fov_x,
            width,
            height,
            viewport,
            sh_degree,
            format,
            deadline_ms,
        };
        req.validate()?;
        Ok(req)
    }

    /// Validates field ranges and camera-geometry degeneracies.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending field.
    pub fn validate(&self) -> Result<(), WireError> {
        // Enforce the scene-id charset so `to_body()`/`parse()` round-trips:
        // whitespace would split the id into extra tokens, the JSON-ish
        // punctuation is normalized away by the parser, and `/` would break
        // the `POST /scenes/<id>` path.
        if !valid_scene_id(&self.scene) {
            return Err(err(
                "scene id must be non-empty, without whitespace or { } \" : , /",
            ));
        }
        if self.width == 0 || self.height == 0 {
            return Err(err("size must be positive"));
        }
        if self.width > MAX_WIRE_DIM || self.height > MAX_WIRE_DIM {
            return Err(err(format!("size exceeds the {MAX_WIRE_DIM} pixel limit")));
        }
        if self.sh_degree > gs_core::sh::MAX_DEGREE {
            return Err(err(format!(
                "sh degree {} exceeds the maximum {}",
                self.sh_degree,
                gs_core::sh::MAX_DEGREE
            )));
        }
        if !(self.fov_x > 0.0 && self.fov_x < std::f32::consts::PI) {
            return Err(err("fov must lie in (0, pi) radians"));
        }
        if let Some((x0, y0, x1, y1)) = self.viewport {
            if x0 >= x1 || y0 >= y1 || x1 > self.width || y1 > self.height {
                return Err(err("viewport must be a non-empty region inside the image"));
            }
        }
        let p = Vec3::new(self.position[0], self.position[1], self.position[2]);
        let t = Vec3::new(self.target[0], self.target[1], self.target[2]);
        let u = Vec3::new(self.up[0], self.up[1], self.up[2]);
        let forward = t - p;
        if forward.norm() < 1.0e-6 {
            return Err(err("pos and target must not coincide"));
        }
        if forward.normalized().cross(u).norm() < 1.0e-6 {
            return Err(err("up must not be parallel to the view direction"));
        }
        Ok(())
    }

    /// Serializes the request into the line-based body format.
    ///
    /// Float fields are printed with Rust's shortest-roundtrip formatting, so
    /// `parse(to_body())` reconstructs bit-identical camera parameters.
    pub fn to_body(&self) -> String {
        let mut body = String::new();
        let [px, py, pz] = self.position;
        let [tx, ty, tz] = self.target;
        let [ux, uy, uz] = self.up;
        body.push_str(&format!("scene {}\n", self.scene));
        body.push_str(&format!("pos {px} {py} {pz}\n"));
        body.push_str(&format!("target {tx} {ty} {tz}\n"));
        body.push_str(&format!("up {ux} {uy} {uz}\n"));
        body.push_str(&format!("fov {}\n", self.fov_x));
        body.push_str(&format!("size {} {}\n", self.width, self.height));
        if let Some((x0, y0, x1, y1)) = self.viewport {
            body.push_str(&format!("viewport {x0} {y0} {x1} {y1}\n"));
        }
        body.push_str(&format!("sh {}\n", self.sh_degree));
        if let Some(ms) = self.deadline_ms {
            body.push_str(&format!("deadline_ms {ms}\n"));
        }
        body.push_str(match self.format {
            WireFormat::RawF32 => "format raw\n",
            WireFormat::Ppm => "format ppm\n",
        });
        body
    }

    /// Builds the in-process [`RenderRequest`] this wire request describes.
    pub fn to_render_request(&self) -> RenderRequest {
        let camera = Camera::look_at(
            self.width,
            self.height,
            self.fov_x,
            Vec3::new(self.position[0], self.position[1], self.position[2]),
            Vec3::new(self.target[0], self.target[1], self.target[2]),
            Vec3::new(self.up[0], self.up[1], self.up[2]),
        );
        let viewport = match self.viewport {
            Some((x0, y0, x1, y1)) => Viewport { x0, y0, x1, y1 },
            None => Viewport::full(&camera),
        };
        RenderRequest {
            scene: self.scene.clone(),
            camera,
            viewport,
            sh_degree: self.sh_degree,
            deadline: self
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }
}

/// A synthetic-scene specification as it travels in a `POST /scenes/<id>`
/// body: the same tolerant `key value` line format as render requests.
///
/// ```text
/// gaussians 20000
/// seed 7
/// extent 80 8 8
/// scale 0.1 0.4
/// opacity 0.3 0.9
/// bg 0.05 0.05 0.08
/// shards 4
/// ```
///
/// Only `gaussians` is required. `extent` is the full side length of the
/// generation box per axis (an elongated box produces the corridor scenes
/// that shard into depth-disjoint slabs), `scale` and `opacity` are
/// per-Gaussian sampling ranges, and `shards` overrides the server's
/// automatic size-threshold sharding (`0` = auto).
#[derive(Debug, Clone, PartialEq)]
pub struct SceneSpec {
    /// Number of Gaussians to generate (1..=[`MAX_SPEC_GAUSSIANS`]).
    pub gaussians: usize,
    /// Generation seed (deterministic builds).
    pub seed: u64,
    /// Full extents of the generation box, per axis.
    pub extent: [f32; 3],
    /// `[min, max]` isotropic scale range.
    pub scale: [f32; 2],
    /// `[min, max]` opacity range (inside `(0, 1)`).
    pub opacity: [f32; 2],
    /// Background color registered with the scene.
    pub background: [f32; 3],
    /// Explicit shard count; `None` lets the server decide by size.
    pub shards: Option<usize>,
}

impl SceneSpec {
    /// A spec with `gaussians` Gaussians and the documented defaults.
    pub fn new(gaussians: usize) -> Self {
        Self {
            gaussians,
            seed: 0,
            extent: [60.0, 60.0, 12.0],
            scale: [0.1, 0.4],
            opacity: [0.3, 0.9],
            background: [0.05, 0.05, 0.08],
            shards: None,
        }
    }

    /// Parses and validates a scene-spec body.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending key. Note the
    /// [`MAX_SPEC_GAUSSIANS`] cap is *not* enforced here — the HTTP layer
    /// distinguishes an oversized spec (`413`) from a malformed one (`400`).
    pub fn parse(body: &str) -> Result<Self, WireError> {
        let normalized = normalize_body(body);
        let mut tokens = normalized.split_whitespace();
        let mut spec = SceneSpec::new(0);
        let mut gaussians: Option<usize> = None;
        while let Some(key) = tokens.next() {
            match key {
                "gaussians" => gaussians = Some(parse_uints::<1>(&mut tokens, "gaussians")?[0]),
                "seed" => spec.seed = parse_uints::<1>(&mut tokens, "seed")?[0] as u64,
                "extent" => spec.extent = parse_floats::<3>(&mut tokens, "extent")?,
                "scale" => spec.scale = parse_floats::<2>(&mut tokens, "scale")?,
                "opacity" => spec.opacity = parse_floats::<2>(&mut tokens, "opacity")?,
                "bg" => spec.background = parse_floats::<3>(&mut tokens, "bg")?,
                "shards" => spec.shards = Some(parse_uints::<1>(&mut tokens, "shards")?[0]),
                unknown => return Err(err(format!("unknown key {unknown:?}"))),
            }
        }
        spec.gaussians = gaussians.ok_or_else(|| err("missing required key \"gaussians\""))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Validates field ranges (everything except the size cap — see
    /// [`SceneSpec::parse`]).
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending field.
    pub fn validate(&self) -> Result<(), WireError> {
        if self.gaussians == 0 {
            return Err(err("gaussians must be positive"));
        }
        for (i, e) in self.extent.iter().enumerate() {
            if !(e.is_finite() && *e > 0.0) {
                return Err(err(format!("extent axis {i} must be positive and finite")));
            }
        }
        let [lo, hi] = self.scale;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
            return Err(err("scale must be a positive [min, max] range"));
        }
        let [lo, hi] = self.opacity;
        if !(0.0 < lo && lo <= hi && hi < 1.0) {
            return Err(err("opacity must be a [min, max] range inside (0, 1)"));
        }
        if self.background.iter().any(|b| !b.is_finite()) {
            return Err(err("bg must be finite"));
        }
        if self.shards == Some(0) {
            return Err(err("shards must be positive when given"));
        }
        Ok(())
    }

    /// Serializes the spec into the line-based body format
    /// (`parse(to_body())` round-trips).
    pub fn to_body(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("gaussians {}\n", self.gaussians));
        body.push_str(&format!("seed {}\n", self.seed));
        let [ex, ey, ez] = self.extent;
        body.push_str(&format!("extent {ex} {ey} {ez}\n"));
        body.push_str(&format!("scale {} {}\n", self.scale[0], self.scale[1]));
        body.push_str(&format!(
            "opacity {} {}\n",
            self.opacity[0], self.opacity[1]
        ));
        let [r, g, b] = self.background;
        body.push_str(&format!("bg {r} {g} {b}\n"));
        if let Some(k) = self.shards {
            body.push_str(&format!("shards {k}\n"));
        }
        body
    }

    /// Builds the scene the spec describes: Gaussians scattered uniformly
    /// in the extent box, deterministic in the seed.
    pub fn build(&self) -> GaussianParams {
        let mut rng = Rng64::seed_from_u64(self.seed);
        let mut params = GaussianParams::with_capacity(self.gaussians);
        let half = [
            self.extent[0] / 2.0,
            self.extent[1] / 2.0,
            self.extent[2] / 2.0,
        ];
        for _ in 0..self.gaussians {
            let pos = Vec3::new(
                rng.gen_range(-half[0]..half[0]),
                rng.gen_range(-half[1]..half[1]),
                rng.gen_range(-half[2]..half[2]),
            );
            let scale = rng.gen_range(self.scale[0]..self.scale[1].max(self.scale[0] + 1e-6));
            let rgb = [rng.gen_f32(), rng.gen_f32(), rng.gen_f32()];
            let opacity =
                rng.gen_range(self.opacity[0]..self.opacity[1].max(self.opacity[0] + 1e-6));
            params.push_isotropic(pos, scale, rgb, opacity);
        }
        params
    }
}

/// The shared body normalization of every wire parser: the JSON-ish
/// punctuation becomes whitespace, so line and JSON-ish bodies tokenize
/// identically for [`WireRequest::parse`] and [`SceneSpec::parse`].
fn normalize_body(body: &str) -> String {
    body.chars()
        .map(|c| {
            if matches!(c, '{' | '}' | '"' | ':' | ',') {
                ' '
            } else {
                c
            }
        })
        .collect()
}

fn parse_uints<const N: usize>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    key: &str,
) -> Result<[usize; N], WireError> {
    let mut out = [0usize; N];
    for slot in &mut out {
        let tok = tokens
            .next()
            .ok_or_else(|| err(format!("key {key:?} is missing values")))?;
        *slot = tok.parse::<usize>().map_err(|_| {
            err(format!(
                "key {key:?}: {tok:?} is not a non-negative integer"
            ))
        })?;
    }
    Ok(out)
}

fn parse_floats<const N: usize>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    key: &str,
) -> Result<[f32; N], WireError> {
    let mut out = [0.0f32; N];
    for slot in &mut out {
        let tok = tokens
            .next()
            .ok_or_else(|| err(format!("key {key:?} is missing values")))?;
        *slot = tok
            .parse::<f32>()
            .map_err(|_| err(format!("key {key:?}: {tok:?} is not a number")))?;
        if !slot.is_finite() {
            return Err(err(format!("key {key:?}: {tok:?} is not finite")));
        }
    }
    Ok(out)
}

/// Encodes an image as row-major RGB `f32` little-endian bytes.
pub fn encode_raw_f32(image: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.data().len() * 4);
    for v in image.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes [`encode_raw_f32`] bytes back into an image.
///
/// # Errors
///
/// [`WireError`] if `bytes` is not exactly `12 * width * height` bytes.
pub fn decode_raw_f32(width: usize, height: usize, bytes: &[u8]) -> Result<Image, WireError> {
    let expected = 12 * width * height;
    if bytes.len() != expected {
        return Err(err(format!(
            "raw f32 body is {} bytes, expected {expected} for {width}x{height}",
            bytes.len()
        )));
    }
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Image::from_raw(width, height, data))
}

/// Encodes an image as a binary `P6` PPM with 8-bit channels.
pub fn encode_ppm(image: &Image) -> Vec<u8> {
    let header = format!("P6\n{} {}\n255\n", image.width(), image.height());
    let mut out = Vec::with_capacity(header.len() + image.data().len());
    out.extend_from_slice(header.as_bytes());
    for v in image.data() {
        out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> WireRequest {
        let mut req = WireRequest::new("city", [0.5, -1.25, -8.0], [0.0, 0.0, 0.0], 96, 72);
        req.fov_x = 1.2;
        req.sh_degree = 2;
        req
    }

    #[test]
    fn body_roundtrip_is_exact() {
        let req = demo();
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn roundtrip_preserves_awkward_floats_exactly() {
        let mut req = demo();
        req.position = [0.1 + 0.2, f32::MIN_POSITIVE, -1.0e-7];
        req.fov_x = std::f32::consts::FRAC_PI_3;
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed.position, req.position, "shortest-roundtrip floats");
        assert_eq!(parsed.fov_x, req.fov_x);
    }

    #[test]
    fn json_ish_bodies_parse_like_line_bodies() {
        let body =
            r#"{"scene": "city", "pos": 1 2 -8, "target": 0 0 0, "size": 64 48, "format": "ppm"}"#;
        let req = WireRequest::parse(body).unwrap();
        assert_eq!(req.scene, "city");
        assert_eq!(req.position, [1.0, 2.0, -8.0]);
        assert_eq!((req.width, req.height), (64, 48));
        assert_eq!(req.format, WireFormat::Ppm);
    }

    #[test]
    fn parse_rejects_malformed_bodies() {
        for (body, why) in [
            ("", "empty"),
            ("pos 0 0 -8\ntarget 0 0 0\nsize 8 8\n", "missing scene"),
            ("scene s\npos 0 0 -8\ntarget 0 0 0\n", "missing size"),
            (
                "scene s\npos 0 0 nope\ntarget 0 0 0\nsize 8 8\n",
                "bad float",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nbogus 1\n",
                "unknown key",
            ),
            ("scene s\npos 0 0 -8\ntarget 0 0 0\nsize 0 8\n", "zero dim"),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nsh 9\n",
                "sh too big",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nviewport 4 0 2 8\n",
                "inverted viewport",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nviewport 0 0 9 8\n",
                "viewport outside",
            ),
            (
                "scene s\npos 0 0 0\ntarget 0 0 0\nsize 8 8\n",
                "pos == target",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nup 0 0 1\nsize 8 8\n",
                "up parallel to view",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nformat gif\n",
                "unknown format",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nfov 0\n",
                "degenerate fov",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 99999 8\n",
                "oversized",
            ),
        ] {
            assert!(WireRequest::parse(body).is_err(), "{why}: {body:?}");
        }
    }

    #[test]
    fn deadline_ms_roundtrips_and_reaches_the_render_request() {
        let mut req = demo();
        req.deadline_ms = Some(250);
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed, req);
        let before = std::time::Instant::now();
        let render = parsed.to_render_request();
        let deadline = render.deadline.expect("deadline must be set");
        let delta = deadline - before;
        assert!(
            delta >= std::time::Duration::from_millis(250)
                && delta < std::time::Duration::from_secs(60),
            "deadline must sit ~250ms in the future, got {delta:?}"
        );
        assert!(demo().to_render_request().deadline.is_none());
    }

    #[test]
    fn scene_spec_roundtrips_and_builds_deterministically() {
        let mut spec = SceneSpec::new(200);
        spec.seed = 9;
        spec.extent = [80.0, 8.0, 8.0];
        spec.shards = Some(4);
        let parsed = SceneSpec::parse(&spec.to_body()).unwrap();
        assert_eq!(parsed, spec);
        let a = spec.build();
        let b = parsed.build();
        assert_eq!(a, b, "same spec, same scene");
        assert_eq!(a.len(), 200);
        // Positions honor the extent box.
        for i in 0..a.len() {
            let m = a.mean(i);
            assert!(m.x.abs() <= 40.0 && m.y.abs() <= 4.0 && m.z.abs() <= 4.0);
        }
        // Different seeds give different scenes.
        spec.seed = 10;
        assert_ne!(spec.build(), a);
    }

    #[test]
    fn scene_spec_rejects_malformed_bodies() {
        for (body, why) in [
            ("", "missing gaussians"),
            ("gaussians 0\n", "zero gaussians"),
            ("gaussians 10\nextent 0 5 5\n", "degenerate extent"),
            ("gaussians 10\nopacity 0.5 1.5\n", "opacity above 1"),
            ("gaussians 10\nscale -1 0.5\n", "negative scale"),
            ("gaussians 10\nshards 0\n", "zero shards"),
            ("gaussians 10\nbogus 3\n", "unknown key"),
            ("gaussians ten\n", "non-numeric"),
        ] {
            assert!(SceneSpec::parse(body).is_err(), "{why}: {body:?}");
        }
        // JSON-ish bodies parse like line bodies.
        let spec = SceneSpec::parse(r#"{"gaussians": 50, "seed": 3, "shards": 2}"#).unwrap();
        assert_eq!((spec.gaussians, spec.seed, spec.shards), (50, 3, Some(2)));
    }

    #[test]
    fn scene_ids_that_break_the_round_trip_are_rejected() {
        for id in ["", "my scene", "a,b", "a\"b", "a:b", "{x}", "a/b"] {
            let mut req = demo();
            req.scene = id.to_string();
            assert!(
                req.validate().is_err(),
                "scene id {id:?} cannot survive to_body()/parse()"
            );
        }
    }

    #[test]
    fn to_render_request_builds_the_same_camera_as_look_at() {
        let req = demo();
        let render = req.to_render_request();
        let cam = Camera::look_at(
            96,
            72,
            1.2,
            Vec3::new(0.5, -1.25, -8.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert_eq!(render.camera.position, cam.position);
        assert_eq!(render.camera.rotation.m, cam.rotation.m);
        assert_eq!(render.camera.fx, cam.fx);
        assert_eq!(render.viewport, Viewport::full(&cam));
        assert_eq!(render.sh_degree, 2);
    }

    #[test]
    fn raw_f32_roundtrip_is_lossless() {
        let mut img = Image::zeros(3, 2);
        for (i, v) in img.data_mut().iter_mut().enumerate() {
            *v = (i as f32).sin() * 1.5 - 0.2;
        }
        let decoded = decode_raw_f32(3, 2, &encode_raw_f32(&img)).unwrap();
        assert_eq!(decoded.data(), img.data());
        assert!(decode_raw_f32(3, 2, &[0u8; 5]).is_err());
    }

    #[test]
    fn ppm_has_header_and_clamped_bytes() {
        let mut img = Image::zeros(2, 1);
        img.set_pixel(0, 0, [1.5, -0.5, 0.5]);
        img.set_pixel(1, 0, [0.0, 1.0, 0.25]);
        let ppm = encode_ppm(&img);
        assert!(ppm.starts_with(b"P6\n2 1\n255\n"));
        let px = &ppm[ppm.len() - 6..];
        assert_eq!(px, &[255, 0, 128, 0, 255, 64]);
    }
}
