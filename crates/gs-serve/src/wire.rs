//! Wire format of the HTTP front-end: the render-request body and the binary
//! frame encodings.
//!
//! A render request travels as a small text body of `key value` lines. The
//! parser is deliberately tolerant: `{`, `}`, `"`, `:` and `,` are treated as
//! whitespace, so the same fields can also be written JSON-ish:
//!
//! ```text
//! scene city
//! pos 0 0 -8
//! target 0 0 0
//! size 96 72
//! fov 1.2
//! sh 3
//! format raw
//! ```
//!
//! is equivalent to `{"scene": "city", "pos": 0 0 -8, ...}`. Required keys
//! are `scene`, `pos`, `target` and `size`; `up` (default `0 1 0`), `fov`
//! (default 1.0 rad), `viewport` (default full image), `sh` (default 3),
//! `format` (`raw` | `ppm`, default `raw`) and `client` (a session id for
//! workload capture; defaults to the `X-Client-Id` header, then the peer
//! address) are optional.
//!
//! Responses are binary frames:
//!
//! * [`WireFormat::RawF32`] — the image's row-major RGB `f32` data as
//!   little-endian bytes (12 bytes per pixel). Lossless: the bytes decode to
//!   exactly the floats the renderer produced.
//! * [`WireFormat::Ppm`] — a binary `P6` PPM with 8-bit channels (values
//!   clamped to `[0, 1]` and scaled), viewable in any image tool.

use std::time::{Duration, Instant};

use gs_core::camera::{Camera, Viewport};
use gs_core::gaussian::GaussianParams;
use gs_core::image::Image;
use gs_core::math::Vec3;
use gs_core::rng::Rng64;
use gs_render::rasterize::FrameLayer;

use crate::request::RenderRequest;

/// Largest accepted image dimension; bounds the allocation a request can ask
/// the renderer for.
pub const MAX_WIRE_DIM: usize = 4096;

/// Largest synthetic scene a `POST /scenes/<id>` body may ask the server to
/// build (bounds both build time and the host-side shard stores). Larger
/// specs are answered with `413`.
pub const MAX_SPEC_GAUSSIANS: usize = 500_000;

/// How many latency reservoir samples `GET /stats/wire` ships in a
/// [`StatsReport`] — enough for stable merged percentiles, small enough to
/// keep the report a few KiB.
pub const STATS_SAMPLES: usize = 256;

/// Whether `id` survives the `to_body()`/`parse()` round trip: non-empty,
/// no whitespace and none of the JSON-ish punctuation the parser strips.
pub fn valid_scene_id(id: &str) -> bool {
    !id.is_empty()
        && !id
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '{' | '}' | '"' | ':' | ',' | '/'))
}

/// Binary encoding of a rendered frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Row-major RGB `f32` little-endian bytes (lossless).
    #[default]
    RawF32,
    /// Binary `P6` PPM with 8-bit channels.
    Ppm,
}

impl WireFormat {
    /// The `Content-Type` header value for this encoding.
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::RawF32 => "application/octet-stream",
            WireFormat::Ppm => "image/x-portable-pixmap",
        }
    }
}

/// How much a request matters under overload. The coordinator's
/// priority-aware load shedding drops [`Priority::Speculative`] work first
/// (prefetches, speculative viewpoint warming) and only degrades
/// [`Priority::Interactive`] traffic — via reduced-SH brown-out — once the
/// overload is sustained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// A user is waiting on this frame (the default).
    #[default]
    Interactive,
    /// Prefetch/warming work that can be shed without a user noticing.
    Speculative,
}

impl Priority {
    /// The wire token (and metric label) for this priority.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Speculative => "speculative",
        }
    }
}

/// A malformed or invalid wire request; the message becomes the 400 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// A parsed render request as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Scene id (must not contain whitespace or `{ } " : ,`).
    pub scene: String,
    /// Camera center in world coordinates.
    pub position: [f32; 3],
    /// Point the camera looks at.
    pub target: [f32; 3],
    /// Up direction (default `[0, 1, 0]`).
    pub up: [f32; 3],
    /// Horizontal field of view in radians (default 1.0).
    pub fov_x: f32,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Optional sub-viewport `(x0, y0, x1, y1)`; `None` renders the full
    /// image.
    pub viewport: Option<(usize, usize, usize, usize)>,
    /// SH degree used for color (0..=3, default 3).
    pub sh_degree: usize,
    /// Response encoding.
    pub format: WireFormat,
    /// Optional deadline in milliseconds from the moment the request is
    /// turned into a render request; expired queued requests are answered
    /// with `503` instead of being rendered.
    pub deadline_ms: Option<u64>,
    /// Optional shard index, used by `POST /render_layer` to render a
    /// single shard of a sharded scene as a partial-frame layer. Ignored by
    /// `POST /render`.
    pub shard: Option<usize>,
    /// Optional client/session id (same charset rules as scene ids). The
    /// HTTP front-ends fall back to the `X-Client-Id` header and then the
    /// peer address, so workload capture can always attribute sessions.
    pub client: Option<String>,
    /// How much the request matters under overload (default
    /// [`Priority::Interactive`]); speculative work is shed first.
    pub priority: Priority,
}

impl WireRequest {
    /// A full-image degree-3 request with default up/fov, raw-f32 encoded.
    pub fn new(
        scene: impl Into<String>,
        position: [f32; 3],
        target: [f32; 3],
        width: usize,
        height: usize,
    ) -> Self {
        Self {
            scene: scene.into(),
            position,
            target,
            up: [0.0, 1.0, 0.0],
            fov_x: 1.0,
            width,
            height,
            viewport: None,
            sh_degree: 3,
            format: WireFormat::default(),
            deadline_ms: None,
            shard: None,
            client: None,
            priority: Priority::default(),
        }
    }

    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending key when the body is malformed,
    /// misses a required key, or fails validation.
    pub fn parse(body: &str) -> Result<Self, WireError> {
        let normalized = normalize_body(body);
        let mut tokens = normalized.split_whitespace();

        let mut scene: Option<String> = None;
        let mut position: Option<[f32; 3]> = None;
        let mut target: Option<[f32; 3]> = None;
        let mut up = [0.0f32, 1.0, 0.0];
        let mut fov_x = 1.0f32;
        let mut size: Option<(usize, usize)> = None;
        let mut viewport: Option<(usize, usize, usize, usize)> = None;
        let mut sh_degree = 3usize;
        let mut format = WireFormat::default();
        let mut deadline_ms: Option<u64> = None;
        let mut shard: Option<usize> = None;
        let mut client: Option<String> = None;
        let mut priority = Priority::default();

        use {parse_floats as floats, parse_uints as uints};
        while let Some(key) = tokens.next() {
            match key {
                "scene" => {
                    let id = tokens
                        .next()
                        .ok_or_else(|| err("key \"scene\" is missing its id"))?;
                    scene = Some(id.to_string());
                }
                "pos" => position = Some(floats::<3>(&mut tokens, "pos")?),
                "target" => target = Some(floats::<3>(&mut tokens, "target")?),
                "up" => up = floats::<3>(&mut tokens, "up")?,
                "fov" => fov_x = floats::<1>(&mut tokens, "fov")?[0],
                "size" => {
                    let [w, h] = uints::<2>(&mut tokens, "size")?;
                    size = Some((w, h));
                }
                "viewport" => {
                    let [x0, y0, x1, y1] = uints::<4>(&mut tokens, "viewport")?;
                    viewport = Some((x0, y0, x1, y1));
                }
                "sh" => sh_degree = uints::<1>(&mut tokens, "sh")?[0],
                "deadline_ms" => {
                    deadline_ms = Some(uints::<1>(&mut tokens, "deadline_ms")?[0] as u64)
                }
                "shard" => shard = Some(uints::<1>(&mut tokens, "shard")?[0]),
                "client" => {
                    let id = tokens
                        .next()
                        .ok_or_else(|| err("key \"client\" is missing its id"))?;
                    client = Some(id.to_string());
                }
                "priority" => {
                    priority = match tokens.next() {
                        Some("interactive") => Priority::Interactive,
                        Some("speculative") => Priority::Speculative,
                        other => {
                            return Err(err(format!(
                                "key \"priority\": expected \"interactive\" or \"speculative\", got {other:?}"
                            )))
                        }
                    };
                }
                "format" => {
                    format = match tokens.next() {
                        Some("raw") => WireFormat::RawF32,
                        Some("ppm") => WireFormat::Ppm,
                        other => {
                            return Err(err(format!(
                                "key \"format\": expected \"raw\" or \"ppm\", got {other:?}"
                            )))
                        }
                    };
                }
                unknown => return Err(err(format!("unknown key {unknown:?}"))),
            }
        }

        let scene = scene.ok_or_else(|| err("missing required key \"scene\""))?;
        let position = position.ok_or_else(|| err("missing required key \"pos\""))?;
        let target = target.ok_or_else(|| err("missing required key \"target\""))?;
        let (width, height) = size.ok_or_else(|| err("missing required key \"size\""))?;

        let req = Self {
            scene,
            position,
            target,
            up,
            fov_x,
            width,
            height,
            viewport,
            sh_degree,
            format,
            deadline_ms,
            shard,
            client,
            priority,
        };
        req.validate()?;
        Ok(req)
    }

    /// Validates field ranges and camera-geometry degeneracies.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending field.
    pub fn validate(&self) -> Result<(), WireError> {
        // Enforce the scene-id charset so `to_body()`/`parse()` round-trips:
        // whitespace would split the id into extra tokens, the JSON-ish
        // punctuation is normalized away by the parser, and `/` would break
        // the `POST /scenes/<id>` path.
        if !valid_scene_id(&self.scene) {
            return Err(err(
                "scene id must be non-empty, without whitespace or { } \" : , /",
            ));
        }
        // Client ids share the scene-id charset (and must survive the same
        // round trip); unlike scenes they are optional.
        if self.client.as_deref().is_some_and(|c| !valid_scene_id(c)) {
            return Err(err(
                "client id must be non-empty, without whitespace or { } \" : , /",
            ));
        }
        if self.width == 0 || self.height == 0 {
            return Err(err("size must be positive"));
        }
        if self.width > MAX_WIRE_DIM || self.height > MAX_WIRE_DIM {
            return Err(err(format!("size exceeds the {MAX_WIRE_DIM} pixel limit")));
        }
        if self.sh_degree > gs_core::sh::MAX_DEGREE {
            return Err(err(format!(
                "sh degree {} exceeds the maximum {}",
                self.sh_degree,
                gs_core::sh::MAX_DEGREE
            )));
        }
        if !(self.fov_x > 0.0 && self.fov_x < std::f32::consts::PI) {
            return Err(err("fov must lie in (0, pi) radians"));
        }
        if let Some((x0, y0, x1, y1)) = self.viewport {
            if x0 >= x1 || y0 >= y1 || x1 > self.width || y1 > self.height {
                return Err(err("viewport must be a non-empty region inside the image"));
            }
        }
        let p = Vec3::new(self.position[0], self.position[1], self.position[2]);
        let t = Vec3::new(self.target[0], self.target[1], self.target[2]);
        let u = Vec3::new(self.up[0], self.up[1], self.up[2]);
        let forward = t - p;
        if forward.norm() < 1.0e-6 {
            return Err(err("pos and target must not coincide"));
        }
        if forward.normalized().cross(u).norm() < 1.0e-6 {
            return Err(err("up must not be parallel to the view direction"));
        }
        Ok(())
    }

    /// Serializes the request into the line-based body format.
    ///
    /// Float fields are printed with Rust's shortest-roundtrip formatting, so
    /// `parse(to_body())` reconstructs bit-identical camera parameters.
    pub fn to_body(&self) -> String {
        let mut body = String::new();
        let [px, py, pz] = self.position;
        let [tx, ty, tz] = self.target;
        let [ux, uy, uz] = self.up;
        body.push_str(&format!("scene {}\n", self.scene));
        body.push_str(&format!("pos {px} {py} {pz}\n"));
        body.push_str(&format!("target {tx} {ty} {tz}\n"));
        body.push_str(&format!("up {ux} {uy} {uz}\n"));
        body.push_str(&format!("fov {}\n", self.fov_x));
        body.push_str(&format!("size {} {}\n", self.width, self.height));
        if let Some((x0, y0, x1, y1)) = self.viewport {
            body.push_str(&format!("viewport {x0} {y0} {x1} {y1}\n"));
        }
        body.push_str(&format!("sh {}\n", self.sh_degree));
        if let Some(ms) = self.deadline_ms {
            body.push_str(&format!("deadline_ms {ms}\n"));
        }
        if let Some(k) = self.shard {
            body.push_str(&format!("shard {k}\n"));
        }
        // Peer-address-derived ids (they contain `:`) are local attribution
        // only — emitting them would fail the receiving side's validation.
        if let Some(c) = &self.client {
            if valid_scene_id(c) {
                body.push_str(&format!("client {c}\n"));
            }
        }
        if self.priority != Priority::default() {
            body.push_str(&format!("priority {}\n", self.priority.name()));
        }
        body.push_str(match self.format {
            WireFormat::RawF32 => "format raw\n",
            WireFormat::Ppm => "format ppm\n",
        });
        body
    }

    /// Pixel size of the frame this request produces (the viewport when
    /// set, else the full image) — the single source of truth for wire
    /// validation and cluster-side layer sizing.
    pub fn frame_size(&self) -> (usize, usize) {
        match self.viewport {
            Some((x0, y0, x1, y1)) => (x1 - x0, y1 - y0),
            None => (self.width, self.height),
        }
    }

    /// Builds the in-process [`RenderRequest`] this wire request describes.
    pub fn to_render_request(&self) -> RenderRequest {
        let camera = Camera::look_at(
            self.width,
            self.height,
            self.fov_x,
            Vec3::new(self.position[0], self.position[1], self.position[2]),
            Vec3::new(self.target[0], self.target[1], self.target[2]),
            Vec3::new(self.up[0], self.up[1], self.up[2]),
        );
        let viewport = match self.viewport {
            Some((x0, y0, x1, y1)) => Viewport { x0, y0, x1, y1 },
            None => Viewport::full(&camera),
        };
        RenderRequest {
            scene: self.scene.clone(),
            camera,
            viewport,
            sh_degree: self.sh_degree,
            deadline: self
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            cancel: None,
            client: self.client.clone(),
            trace: None,
        }
    }

    /// The [`gs_trace::TraceEvent`] this request records as: `client` is
    /// the resolved session id (body key, header or peer address),
    /// `at_us` the arrival timestamp from the recorder's clock, and
    /// `outcome`/`latency_us` how the service answered. Viewport and
    /// response format are capture-lossy by design — replay re-renders full
    /// frames.
    pub fn to_trace_event(
        &self,
        client: &str,
        at_us: u64,
        outcome: gs_trace::Outcome,
        latency_us: u64,
    ) -> gs_trace::TraceEvent {
        gs_trace::TraceEvent {
            at_us,
            scene: self.scene.clone(),
            client: client.to_string(),
            position: self.position,
            target: self.target,
            up: self.up,
            fov_x: self.fov_x,
            width: self.width as u32,
            height: self.height as u32,
            sh_degree: self.sh_degree.min(u8::MAX as usize) as u8,
            deadline_ms: self.deadline_ms.unwrap_or(0).min(u32::MAX as u64) as u32,
            outcome,
            latency_us,
        }
    }

    /// Rebuilds the wire request a [`gs_trace::TraceEvent`] describes —
    /// what a replayer submits. The event's `client` id rides along when it
    /// fits the wire charset (peer addresses contain `:`, which does not).
    pub fn from_trace_event(event: &gs_trace::TraceEvent) -> Self {
        Self {
            scene: event.scene.clone(),
            position: event.position,
            target: event.target,
            up: event.up,
            fov_x: event.fov_x,
            width: event.width as usize,
            height: event.height as usize,
            viewport: None,
            sh_degree: event.sh_degree as usize,
            format: WireFormat::RawF32,
            deadline_ms: (event.deadline_ms > 0).then_some(event.deadline_ms as u64),
            shard: None,
            client: valid_scene_id(&event.client).then(|| event.client.clone()),
            // Capture-lossy like the viewport: traces record interactive
            // traffic shapes, not shedding priorities.
            priority: Priority::default(),
        }
    }
}

/// A synthetic-scene specification as it travels in a `POST /scenes/<id>`
/// body: the same tolerant `key value` line format as render requests.
///
/// ```text
/// gaussians 20000
/// seed 7
/// extent 80 8 8
/// scale 0.1 0.4
/// opacity 0.3 0.9
/// bg 0.05 0.05 0.08
/// shards 4
/// ```
///
/// Only `gaussians` is required. `extent` is the full side length of the
/// generation box per axis (an elongated box produces the corridor scenes
/// that shard into depth-disjoint slabs), `scale` and `opacity` are
/// per-Gaussian sampling ranges, and `shards` overrides the server's
/// automatic size-threshold sharding (`0` = auto).
#[derive(Debug, Clone, PartialEq)]
pub struct SceneSpec {
    /// Number of Gaussians to generate (1..=[`MAX_SPEC_GAUSSIANS`]).
    pub gaussians: usize,
    /// Generation seed (deterministic builds).
    pub seed: u64,
    /// Full extents of the generation box, per axis.
    pub extent: [f32; 3],
    /// `[min, max]` isotropic scale range.
    pub scale: [f32; 2],
    /// `[min, max]` opacity range (inside `(0, 1)`).
    pub opacity: [f32; 2],
    /// Background color registered with the scene.
    pub background: [f32; 3],
    /// Explicit shard count; `None` lets the server decide by size.
    pub shards: Option<usize>,
}

impl SceneSpec {
    /// A spec with `gaussians` Gaussians and the documented defaults.
    pub fn new(gaussians: usize) -> Self {
        Self {
            gaussians,
            seed: 0,
            extent: [60.0, 60.0, 12.0],
            scale: [0.1, 0.4],
            opacity: [0.3, 0.9],
            background: [0.05, 0.05, 0.08],
            shards: None,
        }
    }

    /// Parses and validates a scene-spec body.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending key. Note the
    /// [`MAX_SPEC_GAUSSIANS`] cap is *not* enforced here — the HTTP layer
    /// distinguishes an oversized spec (`413`) from a malformed one (`400`).
    pub fn parse(body: &str) -> Result<Self, WireError> {
        let normalized = normalize_body(body);
        let mut tokens = normalized.split_whitespace();
        let mut spec = SceneSpec::new(0);
        let mut gaussians: Option<usize> = None;
        while let Some(key) = tokens.next() {
            match key {
                "gaussians" => gaussians = Some(parse_uints::<1>(&mut tokens, "gaussians")?[0]),
                "seed" => spec.seed = parse_uints::<1>(&mut tokens, "seed")?[0] as u64,
                "extent" => spec.extent = parse_floats::<3>(&mut tokens, "extent")?,
                "scale" => spec.scale = parse_floats::<2>(&mut tokens, "scale")?,
                "opacity" => spec.opacity = parse_floats::<2>(&mut tokens, "opacity")?,
                "bg" => spec.background = parse_floats::<3>(&mut tokens, "bg")?,
                "shards" => spec.shards = Some(parse_uints::<1>(&mut tokens, "shards")?[0]),
                unknown => return Err(err(format!("unknown key {unknown:?}"))),
            }
        }
        spec.gaussians = gaussians.ok_or_else(|| err("missing required key \"gaussians\""))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Validates field ranges (everything except the size cap — see
    /// [`SceneSpec::parse`]).
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending field.
    pub fn validate(&self) -> Result<(), WireError> {
        if self.gaussians == 0 {
            return Err(err("gaussians must be positive"));
        }
        for (i, e) in self.extent.iter().enumerate() {
            if !(e.is_finite() && *e > 0.0) {
                return Err(err(format!("extent axis {i} must be positive and finite")));
            }
        }
        let [lo, hi] = self.scale;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
            return Err(err("scale must be a positive [min, max] range"));
        }
        let [lo, hi] = self.opacity;
        if !(0.0 < lo && lo <= hi && hi < 1.0) {
            return Err(err("opacity must be a [min, max] range inside (0, 1)"));
        }
        if self.background.iter().any(|b| !b.is_finite()) {
            return Err(err("bg must be finite"));
        }
        if self.shards == Some(0) {
            return Err(err("shards must be positive when given"));
        }
        Ok(())
    }

    /// Serializes the spec into the line-based body format
    /// (`parse(to_body())` round-trips).
    pub fn to_body(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("gaussians {}\n", self.gaussians));
        body.push_str(&format!("seed {}\n", self.seed));
        let [ex, ey, ez] = self.extent;
        body.push_str(&format!("extent {ex} {ey} {ez}\n"));
        body.push_str(&format!("scale {} {}\n", self.scale[0], self.scale[1]));
        body.push_str(&format!(
            "opacity {} {}\n",
            self.opacity[0], self.opacity[1]
        ));
        let [r, g, b] = self.background;
        body.push_str(&format!("bg {r} {g} {b}\n"));
        if let Some(k) = self.shards {
            body.push_str(&format!("shards {k}\n"));
        }
        body
    }

    /// Builds the scene the spec describes: Gaussians scattered uniformly
    /// in the extent box, deterministic in the seed.
    pub fn build(&self) -> GaussianParams {
        let mut rng = Rng64::seed_from_u64(self.seed);
        let mut params = GaussianParams::with_capacity(self.gaussians);
        let half = [
            self.extent[0] / 2.0,
            self.extent[1] / 2.0,
            self.extent[2] / 2.0,
        ];
        for _ in 0..self.gaussians {
            let pos = Vec3::new(
                rng.gen_range(-half[0]..half[0]),
                rng.gen_range(-half[1]..half[1]),
                rng.gen_range(-half[2]..half[2]),
            );
            let scale = rng.gen_range(self.scale[0]..self.scale[1].max(self.scale[0] + 1e-6));
            let rgb = [rng.gen_f32(), rng.gen_f32(), rng.gen_f32()];
            let opacity =
                rng.gen_range(self.opacity[0]..self.opacity[1].max(self.opacity[0] + 1e-6));
            params.push_isotropic(pos, scale, rgb, opacity);
        }
        params
    }
}

/// The shared body normalization of every wire parser: the JSON-ish
/// punctuation becomes whitespace, so line and JSON-ish bodies tokenize
/// identically for [`WireRequest::parse`] and [`SceneSpec::parse`].
fn normalize_body(body: &str) -> String {
    body.chars()
        .map(|c| {
            if matches!(c, '{' | '}' | '"' | ':' | ',') {
                ' '
            } else {
                c
            }
        })
        .collect()
}

fn parse_uints<const N: usize>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    key: &str,
) -> Result<[usize; N], WireError> {
    let mut out = [0usize; N];
    for slot in &mut out {
        let tok = tokens
            .next()
            .ok_or_else(|| err(format!("key {key:?} is missing values")))?;
        *slot = tok.parse::<usize>().map_err(|_| {
            err(format!(
                "key {key:?}: {tok:?} is not a non-negative integer"
            ))
        })?;
    }
    Ok(out)
}

fn parse_floats<const N: usize>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    key: &str,
) -> Result<[f32; N], WireError> {
    let mut out = [0.0f32; N];
    for slot in &mut out {
        let tok = tokens
            .next()
            .ok_or_else(|| err(format!("key {key:?} is missing values")))?;
        *slot = tok
            .parse::<f32>()
            .map_err(|_| err(format!("key {key:?}: {tok:?} is not a number")))?;
        if !slot.is_finite() {
            return Err(err(format!("key {key:?}: {tok:?} is not finite")));
        }
    }
    Ok(out)
}

/// Encodes an image as row-major RGB `f32` little-endian bytes.
pub fn encode_raw_f32(image: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.data().len() * 4);
    for v in image.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes [`encode_raw_f32`] bytes back into an image.
///
/// # Errors
///
/// [`WireError`] if `bytes` is not exactly `12 * width * height` bytes.
pub fn decode_raw_f32(width: usize, height: usize, bytes: &[u8]) -> Result<Image, WireError> {
    let expected = 12 * width * height;
    if bytes.len() != expected {
        return Err(err(format!(
            "raw f32 body is {} bytes, expected {expected} for {width}x{height}",
            bytes.len()
        )));
    }
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Image::from_raw(width, height, data))
}

/// Encodes an image as a binary `P6` PPM with 8-bit channels.
pub fn encode_ppm(image: &Image) -> Vec<u8> {
    let header = format!("P6\n{} {}\n255\n", image.width(), image.height());
    let mut out = Vec::with_capacity(header.len() + image.data().len());
    out.extend_from_slice(header.as_bytes());
    for v in image.data() {
        out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
    }
    out
}

// ---- binary frame-layer encoding (cross-node sharded rendering) ----

/// Magic prefix of an encoded [`FrameLayer`].
pub const LAYER_MAGIC: &[u8; 4] = b"GSL1";
/// Magic prefix of an encoded layer *request* envelope.
pub const LAYER_REQUEST_MAGIC: &[u8; 4] = b"GSLQ";
/// Magic prefix of the optional trace block inside a layer-request
/// envelope (see [`encode_layer_request_traced`]).
pub const TRACE_BLOCK_MAGIC: &[u8; 4] = b"GSTC";
/// Magic prefix of a binary scene upload.
pub const SCENE_MAGIC: &[u8; 4] = b"GSSC";

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], at: usize, what: &str) -> Result<u32, WireError> {
    let end = at + 4;
    if bytes.len() < end {
        return Err(err(format!("truncated before {what}")));
    }
    Ok(u32::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

fn push_f32s(out: &mut Vec<u8>, values: &[f32]) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_f32s(bytes: &[u8], n: usize) -> Vec<f32> {
    bytes[..4 * n]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Encodes a [`FrameLayer`] losslessly: `GSL1`, `u32` width and height
/// (little-endian), then the premultiplied color (12 bytes per pixel) and
/// the per-pixel transmittance (4 bytes per pixel) as little-endian `f32`s.
/// `decode_layer(encode_layer(l))` reproduces `l` bit for bit — the
/// property that keeps cross-node shard composites exact.
pub fn encode_layer(layer: &FrameLayer) -> Vec<u8> {
    let (w, h) = (layer.width(), layer.height());
    let mut out = Vec::with_capacity(12 + 16 * w * h);
    out.extend_from_slice(LAYER_MAGIC);
    push_u32(&mut out, w as u32);
    push_u32(&mut out, h as u32);
    push_f32s(&mut out, layer.color().data());
    push_f32s(&mut out, layer.transmittance());
    out
}

/// Decodes [`encode_layer`] bytes.
///
/// # Errors
///
/// [`WireError`] on a bad magic, oversized or zero dimensions, or a body
/// that is not exactly `12 + 16 * width * height` bytes.
pub fn decode_layer(bytes: &[u8]) -> Result<FrameLayer, WireError> {
    if bytes.len() < 12 || &bytes[..4] != LAYER_MAGIC {
        return Err(err("not an encoded frame layer (bad magic)"));
    }
    let w = read_u32(bytes, 4, "layer width")? as usize;
    let h = read_u32(bytes, 8, "layer height")? as usize;
    if w == 0 || h == 0 || w > MAX_WIRE_DIM || h > MAX_WIRE_DIM {
        return Err(err(format!("layer dimensions {w}x{h} out of range")));
    }
    let expected = 12 + 16 * w * h;
    if bytes.len() != expected {
        return Err(err(format!(
            "layer body is {} bytes, expected {expected} for {w}x{h}",
            bytes.len()
        )));
    }
    let color = Image::from_raw(w, h, read_f32s(&bytes[12..], 3 * w * h));
    let transmittance = read_f32s(&bytes[12 + 12 * w * h..], w * h);
    Ok(FrameLayer::from_parts(color, transmittance))
}

/// Encodes a `POST /render_layer` body: `GSLQ`, a `u32` length-prefixed
/// [`WireRequest`] text body (whose `shard` key selects the shard), then
/// optionally an [`encode_layer`] blob carrying the incoming blend state a
/// nearer shard left off — the relayed composite of cross-node sharded
/// rendering.
pub fn encode_layer_request(request: &WireRequest, layer: Option<&FrameLayer>) -> Vec<u8> {
    encode_layer_request_traced(request, None, layer)
}

/// Like [`encode_layer_request`], with an optional `GSTC` trace block
/// between the request text and the layer: `GSTC`, a `u32` length, then
/// `<trace-id-hex>:<parent-span-id>`. A replica rendering the layer records
/// its spans into that trace (under that parent) and returns them in the
/// response's `X-Trace-Spans` header, which is what lets a coordinator
/// stitch one span tree across a cross-node sharded render. Without a trace
/// the envelope is byte-identical to [`encode_layer_request`].
pub fn encode_layer_request_traced(
    request: &WireRequest,
    trace: Option<(gs_obs::TraceId, u32)>,
    layer: Option<&FrameLayer>,
) -> Vec<u8> {
    let text = request.to_body();
    let mut out = Vec::with_capacity(8 + text.len());
    out.extend_from_slice(LAYER_REQUEST_MAGIC);
    push_u32(&mut out, text.len() as u32);
    out.extend_from_slice(text.as_bytes());
    if let Some((trace, parent)) = trace {
        let block = format!("{trace}:{parent}");
        out.extend_from_slice(TRACE_BLOCK_MAGIC);
        push_u32(&mut out, block.len() as u32);
        out.extend_from_slice(block.as_bytes());
    }
    if let Some(layer) = layer {
        out.extend_from_slice(&encode_layer(layer));
    }
    out
}

/// Decodes [`encode_layer_request`] bytes, validating that an attached
/// layer matches the request's viewport size.
///
/// # Errors
///
/// [`WireError`] on a bad envelope, an invalid inner request, or a layer
/// whose size does not match the request viewport.
pub fn decode_layer_request(bytes: &[u8]) -> Result<(WireRequest, Option<FrameLayer>), WireError> {
    decode_layer_request_traced(bytes).map(|(request, _, layer)| (request, layer))
}

/// Decodes [`encode_layer_request_traced`] bytes: the request, the trace
/// context from the optional `GSTC` block, and the optional layer.
///
/// # Errors
///
/// [`WireError`] on a bad envelope, an invalid inner request, a malformed
/// trace block, or a layer whose size does not match the request viewport.
#[allow(clippy::type_complexity)]
pub fn decode_layer_request_traced(
    bytes: &[u8],
) -> Result<
    (
        WireRequest,
        Option<(gs_obs::TraceId, u32)>,
        Option<FrameLayer>,
    ),
    WireError,
> {
    if bytes.len() < 8 || &bytes[..4] != LAYER_REQUEST_MAGIC {
        return Err(err("not a layer request (bad magic)"));
    }
    let text_len = read_u32(bytes, 4, "request text")? as usize;
    let text_end = 8usize
        .checked_add(text_len)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| err("truncated layer request text"))?;
    let text = std::str::from_utf8(&bytes[8..text_end])
        .map_err(|_| err("layer request text is not UTF-8"))?;
    let request = WireRequest::parse(text)?;
    let mut rest = &bytes[text_end..];
    let mut trace = None;
    if rest.len() >= 8 && &rest[..4] == TRACE_BLOCK_MAGIC {
        let block_len = read_u32(rest, 4, "trace block")? as usize;
        let block_end = 8usize
            .checked_add(block_len)
            .filter(|&end| end <= rest.len())
            .ok_or_else(|| err("truncated trace block"))?;
        let block = std::str::from_utf8(&rest[8..block_end])
            .map_err(|_| err("trace block is not UTF-8"))?;
        let (id, parent) = block
            .split_once(':')
            .ok_or_else(|| err("malformed trace block"))?;
        let id = gs_obs::TraceId::parse(id).ok_or_else(|| err("malformed trace id"))?;
        let parent: u32 = parent
            .parse()
            .map_err(|_| err("malformed trace parent span id"))?;
        trace = Some((id, parent));
        rest = &rest[block_end..];
    }
    let layer = if rest.is_empty() {
        None
    } else {
        let layer = decode_layer(rest)?;
        let (w, h) = request.frame_size();
        if (layer.width(), layer.height()) != (w, h) {
            return Err(err(format!(
                "attached layer is {}x{}, request viewport is {w}x{h}",
                layer.width(),
                layer.height()
            )));
        }
        Some(layer)
    };
    Ok((request, trace, layer))
}

// ---- binary scene upload (cluster scene/shard placement) ----

/// Encodes trained Gaussian parameters and a background color losslessly:
/// `GSSC`, `u32` Gaussian count, 3 background `f32`s, then the five
/// parameter groups (means, log-scales, quats, opacity logits, SH) as
/// little-endian `f32`s. The body a cluster coordinator POSTs to
/// `/scenes/<id>` to place a scene — or one shard of one — on a replica.
pub fn encode_scene(params: &GaussianParams, background: [f32; 3]) -> Vec<u8> {
    let n = params.len();
    let mut out = Vec::with_capacity(20 + 4 * n * GaussianParams::PARAMS_PER_GAUSSIAN);
    out.extend_from_slice(SCENE_MAGIC);
    push_u32(&mut out, n as u32);
    push_f32s(&mut out, &background);
    push_f32s(&mut out, &params.means);
    push_f32s(&mut out, &params.log_scales);
    push_f32s(&mut out, &params.quats);
    push_f32s(&mut out, &params.opacities);
    push_f32s(&mut out, &params.sh);
    out
}

/// Whether `bytes` look like a binary scene upload (vs. a text
/// [`SceneSpec`]).
pub fn is_scene_upload(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == SCENE_MAGIC
}

/// Decodes [`encode_scene`] bytes.
///
/// # Errors
///
/// [`WireError`] on a bad magic, a count above [`MAX_SPEC_GAUSSIANS`], or a
/// truncated/oversized body.
pub fn decode_scene(bytes: &[u8]) -> Result<(GaussianParams, [f32; 3]), WireError> {
    if !is_scene_upload(bytes) {
        return Err(err("not a binary scene upload (bad magic)"));
    }
    let n = read_u32(bytes, 4, "gaussian count")? as usize;
    if n > MAX_SPEC_GAUSSIANS {
        return Err(err(format!(
            "scene upload holds {n} gaussians, limit is {MAX_SPEC_GAUSSIANS}"
        )));
    }
    let expected = 20 + 4 * n * GaussianParams::PARAMS_PER_GAUSSIAN;
    if bytes.len() != expected {
        return Err(err(format!(
            "scene upload is {} bytes, expected {expected} for {n} gaussians",
            bytes.len()
        )));
    }
    let bg = read_f32s(&bytes[8..], 3);
    let mut params = GaussianParams::zeros(n);
    let mut at = 20;
    for group in gs_core::gaussian::ParamGroup::ALL {
        let len = n * group.dim();
        params
            .group_mut(group)
            .copy_from_slice(&read_f32s(&bytes[at..], len));
        at += 4 * len;
    }
    Ok((params, [bg[0], bg[1], bg[2]]))
}

// ---- parsable stats report (cluster stats fan-in) ----

/// A replica's statistics as they travel to a cluster coordinator: the
/// headline [`crate::stats::ServeStats`] counters, the latency summary, a
/// bounded uniform sample of the latency reservoir (so cluster-wide
/// percentiles can be computed over *merged distributions* instead of
/// averaging quantiles), and the replica's memory budget. Serialized in the
/// same tolerant `key value` line format as every other text body
/// (`GET /stats/wire`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    /// Completed requests.
    pub completed: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests expired in queue.
    pub expired: u64,
    /// Requests cancelled in queue.
    pub cancelled: u64,
    /// Requests answered by the pre-enqueue cache fast path (included in
    /// `completed`; `latency` and `latency_samples` cover only the
    /// remaining `completed - fast_hits` render-path requests).
    pub fast_hits: u64,
    /// Frame-cache hits.
    pub cache_hits: u64,
    /// Frame-cache misses.
    pub cache_misses: u64,
    /// Shard layers rendered.
    pub shards_rendered: u64,
    /// Shards skipped by view-adaptive culling.
    pub shards_culled: u64,
    /// Layer renders served (cross-node shard requests).
    pub layers_served: u64,
    /// Wall-clock seconds the collector has been running.
    pub elapsed_secs: f64,
    /// Request latency summary in seconds: `[p50, p90, p99, mean, max]`.
    pub latency: [f64; 5],
    /// Uniform sample of request latencies in seconds (possibly empty).
    pub latency_samples: Vec<f64>,
    /// Device admission budget in bytes.
    pub budget_bytes: u64,
    /// Bytes charged to resident scenes/shards.
    pub used_bytes: u64,
}

impl StatsReport {
    /// Assembles a report from a stats snapshot plus the registry numbers.
    pub fn new(
        stats: &crate::stats::ServeStats,
        latency_samples: Vec<f64>,
        budget_bytes: u64,
        used_bytes: u64,
    ) -> Self {
        Self {
            completed: stats.completed,
            errors: stats.errors,
            expired: stats.expired,
            cancelled: stats.cancelled,
            fast_hits: stats.fast_hits,
            cache_hits: stats.cache.hits,
            cache_misses: stats.cache.misses,
            shards_rendered: stats.shards_rendered,
            shards_culled: stats.shards_culled,
            layers_served: stats.layers_served,
            elapsed_secs: stats.elapsed.as_secs_f64(),
            latency: [
                stats.latency.p50,
                stats.latency.p90,
                stats.latency.p99,
                stats.latency.mean,
                stats.latency.max,
            ],
            latency_samples,
            budget_bytes,
            used_bytes,
        }
    }

    /// Serializes the report (`parse(to_body())` round-trips the counters
    /// exactly and the floats via shortest-roundtrip formatting).
    pub fn to_body(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "completed {}\nerrors {}\nexpired {}\ncancelled {}\n",
            self.completed, self.errors, self.expired, self.cancelled
        ));
        body.push_str(&format!("fast_hits {}\n", self.fast_hits));
        body.push_str(&format!(
            "cache {} {}\nshards {} {} {}\n",
            self.cache_hits,
            self.cache_misses,
            self.shards_rendered,
            self.shards_culled,
            self.layers_served
        ));
        body.push_str(&format!("elapsed {}\n", self.elapsed_secs));
        let [p50, p90, p99, mean, max] = self.latency;
        body.push_str(&format!("latency {p50} {p90} {p99} {mean} {max}\n"));
        body.push_str(&format!(
            "budget {}\nused {}\n",
            self.budget_bytes, self.used_bytes
        ));
        if !self.latency_samples.is_empty() {
            body.push_str("samples");
            for s in &self.latency_samples {
                body.push_str(&format!(" {s}"));
            }
            body.push('\n');
        }
        body
    }

    /// Parses a report body.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the offending key.
    pub fn parse(body: &str) -> Result<Self, WireError> {
        let mut report = StatsReport::default();
        for line in body.lines() {
            let mut tokens = line.split_whitespace();
            let Some(key) = tokens.next() else {
                continue;
            };
            let mut u64s = |n: usize, key: &str| -> Result<Vec<u64>, WireError> {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let tok = tokens
                        .next()
                        .ok_or_else(|| err(format!("key {key:?} is missing values")))?;
                    out.push(
                        tok.parse::<u64>()
                            .map_err(|_| err(format!("key {key:?}: {tok:?} is not a count")))?,
                    );
                }
                Ok(out)
            };
            match key {
                "completed" => report.completed = u64s(1, key)?[0],
                "errors" => report.errors = u64s(1, key)?[0],
                "expired" => report.expired = u64s(1, key)?[0],
                "cancelled" => report.cancelled = u64s(1, key)?[0],
                "fast_hits" => report.fast_hits = u64s(1, key)?[0],
                "cache" => {
                    let v = u64s(2, key)?;
                    (report.cache_hits, report.cache_misses) = (v[0], v[1]);
                }
                "shards" => {
                    let v = u64s(3, key)?;
                    (
                        report.shards_rendered,
                        report.shards_culled,
                        report.layers_served,
                    ) = (v[0], v[1], v[2]);
                }
                "budget" => report.budget_bytes = u64s(1, key)?[0],
                "used" => report.used_bytes = u64s(1, key)?[0],
                "elapsed" | "latency" | "samples" => {
                    let mut floats = Vec::new();
                    for tok in tokens.by_ref() {
                        floats.push(
                            tok.parse::<f64>().map_err(|_| {
                                err(format!("key {key:?}: {tok:?} is not a number"))
                            })?,
                        );
                    }
                    match key {
                        "elapsed" => {
                            report.elapsed_secs =
                                *floats.first().ok_or_else(|| err("elapsed missing value"))?;
                        }
                        "latency" => {
                            if floats.len() != 5 {
                                return Err(err("latency expects 5 values"));
                            }
                            report.latency.copy_from_slice(&floats);
                        }
                        _ => report.latency_samples = floats,
                    }
                }
                unknown => return Err(err(format!("unknown stats key {unknown:?}"))),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> WireRequest {
        let mut req = WireRequest::new("city", [0.5, -1.25, -8.0], [0.0, 0.0, 0.0], 96, 72);
        req.fov_x = 1.2;
        req.sh_degree = 2;
        req
    }

    #[test]
    fn body_roundtrip_is_exact() {
        let req = demo();
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn roundtrip_preserves_awkward_floats_exactly() {
        let mut req = demo();
        req.position = [0.1 + 0.2, f32::MIN_POSITIVE, -1.0e-7];
        req.fov_x = std::f32::consts::FRAC_PI_3;
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed.position, req.position, "shortest-roundtrip floats");
        assert_eq!(parsed.fov_x, req.fov_x);
    }

    #[test]
    fn json_ish_bodies_parse_like_line_bodies() {
        let body =
            r#"{"scene": "city", "pos": 1 2 -8, "target": 0 0 0, "size": 64 48, "format": "ppm"}"#;
        let req = WireRequest::parse(body).unwrap();
        assert_eq!(req.scene, "city");
        assert_eq!(req.position, [1.0, 2.0, -8.0]);
        assert_eq!((req.width, req.height), (64, 48));
        assert_eq!(req.format, WireFormat::Ppm);
    }

    #[test]
    fn parse_rejects_malformed_bodies() {
        for (body, why) in [
            ("", "empty"),
            ("pos 0 0 -8\ntarget 0 0 0\nsize 8 8\n", "missing scene"),
            ("scene s\npos 0 0 -8\ntarget 0 0 0\n", "missing size"),
            (
                "scene s\npos 0 0 nope\ntarget 0 0 0\nsize 8 8\n",
                "bad float",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nbogus 1\n",
                "unknown key",
            ),
            ("scene s\npos 0 0 -8\ntarget 0 0 0\nsize 0 8\n", "zero dim"),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nsh 9\n",
                "sh too big",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nviewport 4 0 2 8\n",
                "inverted viewport",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nviewport 0 0 9 8\n",
                "viewport outside",
            ),
            (
                "scene s\npos 0 0 0\ntarget 0 0 0\nsize 8 8\n",
                "pos == target",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nup 0 0 1\nsize 8 8\n",
                "up parallel to view",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nformat gif\n",
                "unknown format",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\nfov 0\n",
                "degenerate fov",
            ),
            (
                "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 99999 8\n",
                "oversized",
            ),
        ] {
            assert!(WireRequest::parse(body).is_err(), "{why}: {body:?}");
        }
    }

    #[test]
    fn priority_roundtrips_and_defaults_to_interactive() {
        // The default stays off the wire so old peers keep parsing bodies.
        let req = demo();
        assert!(!req.to_body().contains("priority"));
        assert_eq!(
            WireRequest::parse(&req.to_body()).unwrap().priority,
            Priority::Interactive
        );
        let mut spec = demo();
        spec.priority = Priority::Speculative;
        let parsed = WireRequest::parse(&spec.to_body()).unwrap();
        assert_eq!(parsed, spec);
        assert!(WireRequest::parse(
            "scene s\npos 0 0 -8\ntarget 0 0 0\nsize 8 8\npriority urgent\n"
        )
        .is_err());
    }

    #[test]
    fn deadline_ms_roundtrips_and_reaches_the_render_request() {
        let mut req = demo();
        req.deadline_ms = Some(250);
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed, req);
        let before = std::time::Instant::now();
        let render = parsed.to_render_request();
        let deadline = render.deadline.expect("deadline must be set");
        let delta = deadline - before;
        assert!(
            delta >= std::time::Duration::from_millis(250)
                && delta < std::time::Duration::from_secs(60),
            "deadline must sit ~250ms in the future, got {delta:?}"
        );
        assert!(demo().to_render_request().deadline.is_none());
    }

    #[test]
    fn scene_spec_roundtrips_and_builds_deterministically() {
        let mut spec = SceneSpec::new(200);
        spec.seed = 9;
        spec.extent = [80.0, 8.0, 8.0];
        spec.shards = Some(4);
        let parsed = SceneSpec::parse(&spec.to_body()).unwrap();
        assert_eq!(parsed, spec);
        let a = spec.build();
        let b = parsed.build();
        assert_eq!(a, b, "same spec, same scene");
        assert_eq!(a.len(), 200);
        // Positions honor the extent box.
        for i in 0..a.len() {
            let m = a.mean(i);
            assert!(m.x.abs() <= 40.0 && m.y.abs() <= 4.0 && m.z.abs() <= 4.0);
        }
        // Different seeds give different scenes.
        spec.seed = 10;
        assert_ne!(spec.build(), a);
    }

    #[test]
    fn scene_spec_rejects_malformed_bodies() {
        for (body, why) in [
            ("", "missing gaussians"),
            ("gaussians 0\n", "zero gaussians"),
            ("gaussians 10\nextent 0 5 5\n", "degenerate extent"),
            ("gaussians 10\nopacity 0.5 1.5\n", "opacity above 1"),
            ("gaussians 10\nscale -1 0.5\n", "negative scale"),
            ("gaussians 10\nshards 0\n", "zero shards"),
            ("gaussians 10\nbogus 3\n", "unknown key"),
            ("gaussians ten\n", "non-numeric"),
        ] {
            assert!(SceneSpec::parse(body).is_err(), "{why}: {body:?}");
        }
        // JSON-ish bodies parse like line bodies.
        let spec = SceneSpec::parse(r#"{"gaussians": 50, "seed": 3, "shards": 2}"#).unwrap();
        assert_eq!((spec.gaussians, spec.seed, spec.shards), (50, 3, Some(2)));
    }

    #[test]
    fn scene_ids_that_break_the_round_trip_are_rejected() {
        for id in ["", "my scene", "a,b", "a\"b", "a:b", "{x}", "a/b"] {
            let mut req = demo();
            req.scene = id.to_string();
            assert!(
                req.validate().is_err(),
                "scene id {id:?} cannot survive to_body()/parse()"
            );
        }
    }

    #[test]
    fn to_render_request_builds_the_same_camera_as_look_at() {
        let req = demo();
        let render = req.to_render_request();
        let cam = Camera::look_at(
            96,
            72,
            1.2,
            Vec3::new(0.5, -1.25, -8.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert_eq!(render.camera.position, cam.position);
        assert_eq!(render.camera.rotation.m, cam.rotation.m);
        assert_eq!(render.camera.fx, cam.fx);
        assert_eq!(render.viewport, Viewport::full(&cam));
        assert_eq!(render.sh_degree, 2);
    }

    #[test]
    fn raw_f32_roundtrip_is_lossless() {
        let mut img = Image::zeros(3, 2);
        for (i, v) in img.data_mut().iter_mut().enumerate() {
            *v = (i as f32).sin() * 1.5 - 0.2;
        }
        let decoded = decode_raw_f32(3, 2, &encode_raw_f32(&img)).unwrap();
        assert_eq!(decoded.data(), img.data());
        assert!(decode_raw_f32(3, 2, &[0u8; 5]).is_err());
    }

    fn demo_layer(w: usize, h: usize, seed: u64) -> FrameLayer {
        let mut rng = Rng64::seed_from_u64(seed);
        let color = Image::from_raw(
            w,
            h,
            (0..3 * w * h)
                .map(|_| rng.gen_f32() * 1.5 - 0.2)
                .collect::<Vec<f32>>(),
        );
        let transmittance = (0..w * h).map(|_| rng.gen_f32()).collect();
        FrameLayer::from_parts(color, transmittance)
    }

    #[test]
    fn layer_roundtrip_is_exact_including_awkward_floats() {
        let mut layer = demo_layer(7, 5, 42);
        // Values a lossy encoding would disturb: subnormals, huge partials,
        // exact negatives from background-free premultiplied blending.
        let (mut color, mut t) = layer.clone().into_parts();
        color.data_mut()[0] = f32::MIN_POSITIVE;
        color.data_mut()[1] = 0.1 + 0.2;
        t[0] = 1.0e-7;
        layer = FrameLayer::from_parts(color, t);
        let decoded = decode_layer(&encode_layer(&layer)).unwrap();
        assert_eq!(decoded.color().data(), layer.color().data());
        assert_eq!(decoded.transmittance(), layer.transmittance());
    }

    #[test]
    fn truncated_and_corrupt_layers_are_rejected() {
        let encoded = encode_layer(&demo_layer(6, 4, 43));
        // Truncations at every structural boundary.
        for cut in [0, 3, 7, 11, encoded.len() - 1] {
            assert!(
                decode_layer(&encoded[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Trailing garbage.
        let mut padded = encoded.clone();
        padded.extend_from_slice(&[0u8; 4]);
        assert!(decode_layer(&padded).is_err());
        // Wrong magic.
        let mut bad = encoded.clone();
        bad[0] = b'X';
        assert!(decode_layer(&bad).is_err());
        // Corrupt dimensions: oversized and zero.
        let mut huge = encoded.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_layer(&huge).is_err());
        let mut zero = encoded;
        zero[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_layer(&zero).is_err());
    }

    #[test]
    fn layer_request_roundtrips_with_and_without_a_layer() {
        let mut req = demo();
        req.shard = Some(2);
        let (parsed, none) = decode_layer_request(&encode_layer_request(&req, None)).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.shard, Some(2));
        assert!(none.is_none());

        let layer = demo_layer(96, 72, 44);
        let (parsed, relayed) =
            decode_layer_request(&encode_layer_request(&req, Some(&layer))).unwrap();
        assert_eq!(parsed, req);
        let relayed = relayed.expect("layer must survive the envelope");
        assert_eq!(relayed.color().data(), layer.color().data());
        assert_eq!(relayed.transmittance(), layer.transmittance());
    }

    #[test]
    fn layer_request_trace_block_roundtrips_and_stays_compatible() {
        let mut req = demo();
        req.shard = Some(1);
        let trace = gs_obs::TraceId::parse("00000000deadbeef").unwrap();
        let layer = demo_layer(96, 72, 47);

        // Trace block + layer: everything survives, in both decoders.
        let encoded = encode_layer_request_traced(&req, Some((trace, 7)), Some(&layer));
        let (parsed, ctx, relayed) = decode_layer_request_traced(&encoded).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(ctx, Some((trace, 7)));
        assert_eq!(
            relayed.unwrap().color().data(),
            layer.color().data(),
            "the trace block must not disturb the layer payload"
        );
        let (parsed, relayed) = decode_layer_request(&encoded).unwrap();
        assert_eq!(parsed, req);
        assert!(relayed.is_some());

        // An untraced envelope is byte-identical to the legacy encoder and
        // decodes with no context.
        assert_eq!(
            encode_layer_request_traced(&req, None, None),
            encode_layer_request(&req, None)
        );
        let (_, ctx, _) = decode_layer_request_traced(&encode_layer_request(&req, None)).unwrap();
        assert!(ctx.is_none());

        // Corrupt blocks are rejected, not misread as layers.
        let mut truncated = encode_layer_request_traced(&req, Some((trace, 7)), None);
        truncated.truncate(truncated.len() - 1);
        assert!(decode_layer_request_traced(&truncated).is_err());
        let garbled = encode_layer_request_traced(&req, Some((trace, u32::MAX)), None);
        assert!(decode_layer_request_traced(&garbled).is_ok());
    }

    #[test]
    fn layer_request_rejects_mismatched_and_corrupt_envelopes() {
        let req = demo();
        // Layer size must match the viewport (full image here: 96x72).
        let wrong = demo_layer(8, 8, 45);
        assert!(decode_layer_request(&encode_layer_request(&req, Some(&wrong))).is_err());
        // A viewport-restricted request accepts a viewport-sized layer.
        let mut vp_req = demo();
        vp_req.viewport = Some((8, 4, 40, 28));
        let vp_layer = demo_layer(32, 24, 46);
        assert!(decode_layer_request(&encode_layer_request(&vp_req, Some(&vp_layer))).is_ok());
        // Bad magic / truncated text length.
        assert!(decode_layer_request(b"NOPE").is_err());
        let mut encoded = encode_layer_request(&req, None);
        encoded[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_layer_request(&encoded).is_err());
    }

    #[test]
    fn scene_upload_roundtrips_exactly() {
        let spec = SceneSpec::new(64);
        let params = spec.build();
        let encoded = encode_scene(&params, [0.1, 0.2, 0.3]);
        assert!(is_scene_upload(&encoded));
        let (decoded, bg) = decode_scene(&encoded).unwrap();
        assert_eq!(decoded, params, "binary scene upload must be lossless");
        assert_eq!(bg, [0.1, 0.2, 0.3]);

        // Truncation, oversized counts and text bodies are rejected.
        assert!(decode_scene(&encoded[..encoded.len() - 1]).is_err());
        let mut huge = encoded.clone();
        huge[4..8].copy_from_slice(&(MAX_SPEC_GAUSSIANS as u32 + 1).to_le_bytes());
        assert!(decode_scene(&huge).is_err());
        assert!(!is_scene_upload(b"gaussians 10\n"));
        assert!(decode_scene(b"gaussians 10\n").is_err());
    }

    #[test]
    fn stats_report_roundtrips() {
        let report = StatsReport {
            completed: 120,
            errors: 3,
            expired: 2,
            cancelled: 1,
            fast_hits: 25,
            cache_hits: 40,
            cache_misses: 80,
            shards_rendered: 64,
            shards_culled: 16,
            layers_served: 8,
            elapsed_secs: 12.5,
            latency: [0.001, 0.002, 0.004, 0.0015, 0.01],
            latency_samples: vec![0.001, 0.0012, 0.009],
            budget_bytes: 1 << 30,
            used_bytes: 123456,
        };
        let parsed = StatsReport::parse(&report.to_body()).unwrap();
        assert_eq!(parsed, report);
        // Sample-free reports round-trip too, and junk is rejected.
        let mut bare = report.clone();
        bare.latency_samples.clear();
        assert_eq!(StatsReport::parse(&bare.to_body()).unwrap(), bare);
        assert!(StatsReport::parse("bogus 4\n").is_err());
        assert!(StatsReport::parse("latency 1 2\n").is_err());
    }

    #[test]
    fn client_id_roundtrips_and_is_validated() {
        let mut req = demo();
        req.client = Some("session-42".to_string());
        let parsed = WireRequest::parse(&req.to_body()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(
            parsed.to_render_request().client.as_deref(),
            Some("session-42")
        );
        assert!(demo().to_render_request().client.is_none());
        // Ids that cannot survive the round trip are rejected.
        for id in ["", "a b", "a:b", "a/b"] {
            let mut req = demo();
            req.client = Some(id.to_string());
            assert!(req.validate().is_err(), "client id {id:?} must be rejected");
        }
    }

    #[test]
    fn trace_event_conversion_roundtrips_the_request() {
        let mut req = demo();
        req.position = [0.1 + 0.2, f32::MIN_POSITIVE, -1.0e-7];
        req.deadline_ms = Some(120);
        req.client = Some("tab-1".to_string());
        let event = req.to_trace_event("tab-1", 5_000, gs_trace::Outcome::CacheHit, 777);
        assert_eq!(event.at_us, 5_000);
        assert_eq!(event.scene, "city");
        assert_eq!(event.client, "tab-1");
        assert_eq!(event.deadline_ms, 120);
        assert_eq!(event.outcome, gs_trace::Outcome::CacheHit);
        assert_eq!(event.latency_us, 777);
        let back = WireRequest::from_trace_event(&event);
        assert_eq!(back, req, "capture→replay must rebuild the same request");
        // A peer-address client id (contains ':') is recorded but not put
        // back on the wire body.
        let event = req.to_trace_event("127.0.0.1:5000", 0, gs_trace::Outcome::Completed, 0);
        assert_eq!(event.client, "127.0.0.1:5000");
        assert_eq!(WireRequest::from_trace_event(&event).client, None);
    }

    #[test]
    fn shard_key_roundtrips_on_wire_requests() {
        let mut req = demo();
        req.shard = Some(3);
        assert_eq!(WireRequest::parse(&req.to_body()).unwrap(), req);
        assert!(req.to_body().contains("shard 3"));
        assert_eq!(demo().shard, None);
    }

    #[test]
    fn ppm_has_header_and_clamped_bytes() {
        let mut img = Image::zeros(2, 1);
        img.set_pixel(0, 0, [1.5, -0.5, 0.5]);
        img.set_pixel(1, 0, [0.0, 1.0, 0.25]);
        let ppm = encode_ppm(&img);
        assert!(ppm.starts_with(b"P6\n2 1\n255\n"));
        let px = &ppm[ppm.len() - 6..];
        assert_eq!(px, &[255, 0, 128, 0, 255, 64]);
    }
}
