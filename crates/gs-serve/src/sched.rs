//! Pluggable scheduling between the job queue and the worker pool.
//!
//! The worker pool used to be hard-wired to one policy: pop the head job
//! and drain its scene's other queued jobs into a batch. That serves the
//! *head's* scene with whatever happens to be queued at pop time — it
//! never prefers a denser scene over the head's, and under paced arrivals
//! it dispatches eagerly, so mid-load mixed traffic degenerates to
//! near-singleton batches and the shared cull/gather work of
//! [`crate::batch`] goes unamortized.
//!
//! This module makes the scheduling decision a policy:
//!
//! * [`Scheduler`] — the trait between producers ([`push`](Scheduler::push)
//!   with backpressure) and workers
//!   ([`next_batch`](Scheduler::next_batch)), with the dead-job sweep hook
//!   ([`drain_where`](Scheduler::drain_where)) the deadline/cancellation
//!   machinery uses.
//! * [`FifoScheduler`] — the original behavior, verbatim, over
//!   [`crate::queue::BoundedQueue`]: serve the head job's scene, draining
//!   its queued same-scene jobs (queue-wide, order preserved) into the
//!   batch.
//! * [`BatchAwareScheduler`] — picks the *densest* scene inside a bounded
//!   reorder window instead of the head's, and **accumulates** thin
//!   batches under light load (see the struct docs), all under a hard
//!   fairness cap: a head job older than `age_cap` (or whose deadline is
//!   within `age_cap`) is never passed over and never held, so no request
//!   waits more than one cap past its turn — plus per-client weighted
//!   fairness (scenes whose waiting clients were served least recently go
//!   first), so a heavy client's flood cannot starve a light client's
//!   occasional requests. Per-request output is
//!   unaffected — each request still renders its own exact camera through
//!   the shared batch path, which is proven bit-identical to unbatched
//!   rendering — only *when* a request is picked changes.
//!
//! The policy is selected per server via
//! [`ServeConfig::scheduler`](crate::server::ServeConfig).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::queue::BoundedQueue;
use crate::request::SceneId;

/// What a scheduler needs to know about a queued job.
pub trait SchedItem {
    /// The scene the job renders (batches never mix scenes).
    fn scene(&self) -> &SceneId;
    /// When the job entered the scheduler (for age-based fairness).
    fn enqueued_at(&self) -> Instant;
    /// The job's completion deadline, if any.
    fn deadline(&self) -> Option<Instant>;
    /// The client the job belongs to, for per-client weighted fairness;
    /// `None` opts the job out (it is treated as never-served, so it is
    /// always eligible).
    fn client(&self) -> Option<&str> {
        None
    }
}

/// Which scheduling policy a server runs between its queue and its workers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum SchedulerPolicy {
    /// Strict FIFO with adjacent same-scene batching (the baseline).
    #[default]
    Fifo,
    /// Cross-scene reordering inside a bounded window to form larger
    /// same-scene batches, with an age/deadline fairness cap.
    BatchAware {
        /// How many queued jobs (from the head) the scheduler may inspect
        /// and reorder across. Jobs beyond the window keep strict FIFO
        /// order relative to the window.
        window: usize,
        /// Fairness cap: once the head job has waited this long (or its
        /// deadline is this close), its scene is scheduled next no matter
        /// what the rest of the window looks like.
        age_cap: Duration,
    },
}

impl SchedulerPolicy {
    /// The batch-aware policy with default knobs (window 32, 50 ms cap).
    pub fn batch_aware() -> Self {
        SchedulerPolicy::BatchAware {
            window: 32,
            age_cap: Duration::from_millis(50),
        }
    }

    /// Short policy name as reported in stats.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::BatchAware { .. } => "batch-aware",
        }
    }

    /// Builds the scheduler with `capacity` queue slots.
    pub fn build<T: SchedItem + Send + 'static>(&self, capacity: usize) -> Box<dyn Scheduler<T>> {
        match *self {
            SchedulerPolicy::Fifo => Box::new(FifoScheduler::new(capacity)),
            SchedulerPolicy::BatchAware { window, age_cap } => {
                Box::new(BatchAwareScheduler::new(capacity, window, age_cap))
            }
        }
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The scheduling layer between producers and the worker pool.
///
/// Semantics every implementation upholds:
///
/// * [`push`](Scheduler::push) blocks while the scheduler is at capacity
///   (producer backpressure) and fails with the item once closed.
/// * [`next_batch`](Scheduler::next_batch) blocks for work and returns a
///   non-empty batch of jobs **for one scene**, at most `max_batch` long;
///   `None` once the scheduler is closed *and* drained.
/// * Jobs of the same scene are always delivered in FIFO order relative to
///   each other (cross-scene order is policy-defined).
/// * [`drain_where`](Scheduler::drain_where) removes matching queued jobs
///   without blocking (the dead-job sweep).
pub trait Scheduler<T: SchedItem>: Send + Sync {
    /// The policy's short name (what stats report).
    fn name(&self) -> &'static str;

    /// Blocks until there is room, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the scheduler has been closed.
    fn push(&self, item: T) -> Result<(), T>;

    /// Blocks until work is available and returns the next same-scene batch
    /// (at most `max_batch` jobs). Returns `None` once the scheduler is
    /// closed and drained.
    fn next_batch(&self, max_batch: usize) -> Option<Vec<T>>;

    /// Removes and returns up to `max` queued items matching `pred`,
    /// preserving FIFO order. Does not block.
    fn drain_where(&self, max: usize, pred: &mut dyn FnMut(&T) -> bool) -> Vec<T>;

    /// Number of items currently queued.
    fn len(&self) -> usize;

    /// Whether no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the scheduler: pending and future pushes fail, and
    /// `next_batch` returns `None` once the remaining items are drained.
    fn close(&self);

    /// How many times the policy scheduled a non-head scene ahead of the
    /// head (0 for FIFO).
    fn reorders(&self) -> u64 {
        0
    }
}

/// Strict FIFO scheduling with adjacent same-scene batching — the baseline
/// policy, implemented over the bounded blocking queue.
pub struct FifoScheduler<T> {
    queue: BoundedQueue<T>,
}

impl<T> FifoScheduler<T> {
    /// Creates a FIFO scheduler holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            queue: BoundedQueue::new(capacity),
        }
    }
}

impl<T: SchedItem + Send> Scheduler<T> for FifoScheduler<T> {
    fn name(&self) -> &'static str {
        SchedulerPolicy::Fifo.name()
    }

    fn push(&self, item: T) -> Result<(), T> {
        self.queue.push(item)
    }

    fn next_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let first = self.queue.pop()?;
        let scene = first.scene().clone();
        let mut batch = vec![first];
        if max_batch > 1 {
            batch.extend(
                self.queue
                    .drain_where(max_batch - 1, |j| j.scene() == &scene),
            );
        }
        Some(batch)
    }

    fn drain_where(&self, max: usize, pred: &mut dyn FnMut(&T) -> bool) -> Vec<T> {
        self.queue.drain_where(max, pred)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn close(&self) {
        self.queue.close();
    }
}

/// Ceiling on any single per-client served count before every count is
/// halved (exponential decay, so old traffic ages out of the debt signal).
const SERVED_DECAY_AT: u64 = 4096;
/// Ceiling on how many clients the served table tracks before a decay pass
/// sheds the long-idle ones.
const SERVED_CLIENTS_MAX: usize = 512;

struct BatchState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Jobs dispatched per client since the last decay — the "debt" side of
    /// per-client weighted fairness: a scene whose least-served waiting
    /// client has the lowest debt is picked first, so a heavy client's
    /// flood cannot starve a light client's occasional requests.
    served: HashMap<String, u64>,
}

impl<T> BatchState<T> {
    /// The fairness debt a queued job carries: how much its client has been
    /// served recently (`0` for client-less jobs — always eligible).
    fn debt(&self, item: &T) -> u64
    where
        T: SchedItem,
    {
        item.client()
            .and_then(|c| self.served.get(c).copied())
            .unwrap_or(0)
    }

    /// Charges one dispatched job to its client, decaying the table when a
    /// count (or the client population) outgrows its bound.
    fn charge(&mut self, item: &T)
    where
        T: SchedItem,
    {
        let Some(client) = item.client() else { return };
        let count = self.served.entry(client.to_string()).or_insert(0);
        *count += 1;
        if *count >= SERVED_DECAY_AT || self.served.len() > SERVED_CLIENTS_MAX {
            self.served.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
    }
}

/// Cross-scene batch-aware scheduling (see the module docs): the next batch
/// is the densest scene inside a bounded reorder window, unless the head
/// job has hit the fairness cap — then the head's scene goes first.
///
/// When the densest scene is still thin (fewer than half a full batch) and
/// no fairness cap is near, the scheduler briefly **accumulates**: it waits
/// for more arrivals instead of dispatching a near-empty batch — the
/// dynamic-batching move that actually grows batches under paced mixed
/// traffic. Accumulation is bounded three ways so it can never hurt a
/// loaded system: the head's age/deadline cap, a short no-arrival grace
/// (closed-loop traffic, where nothing can arrive while every client
/// waits, dispatches after one grace), and a full or closed queue
/// (dispatch immediately — waiting cannot help).
pub struct BatchAwareScheduler<T> {
    state: Mutex<BatchState<T>>,
    capacity: usize,
    window: usize,
    age_cap: Duration,
    /// How long one accumulation wait lasts when no arrival lands.
    grace: Duration,
    not_empty: Condvar,
    not_full: Condvar,
    reorders: AtomicU64,
}

impl<T: SchedItem> BatchAwareScheduler<T> {
    /// Creates a scheduler with `capacity` queue slots, a reorder window of
    /// `window` jobs and the given fairness cap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `window` is zero.
    pub fn new(capacity: usize, window: usize, age_cap: Duration) -> Self {
        assert!(capacity > 0, "scheduler capacity must be positive");
        assert!(window > 0, "reorder window must be positive");
        Self {
            state: Mutex::new(BatchState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                served: HashMap::new(),
            }),
            capacity,
            window,
            age_cap,
            grace: (age_cap / 4).clamp(Duration::from_millis(1), Duration::from_millis(25)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            reorders: AtomicU64::new(0),
        }
    }

    /// Whether the head job must be scheduled now: it has aged past the
    /// fairness cap, or its deadline is within one cap of expiring.
    fn head_urgent(&self, head: &T, now: Instant) -> bool {
        now.saturating_duration_since(head.enqueued_at()) >= self.age_cap
            || head
                .deadline()
                .is_some_and(|d| d.saturating_duration_since(now) <= self.age_cap)
    }
}

impl<T: SchedItem + Send> Scheduler<T> for BatchAwareScheduler<T> {
    fn name(&self) -> &'static str {
        SchedulerPolicy::batch_aware().name()
    }

    fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    fn next_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock().unwrap();
        // Set once an accumulation wait times out without arrivals: the
        // next evaluation dispatches unconditionally (re-deciding the scene
        // from the *current* queue — never from pre-wait indices, which may
        // be stale after concurrent dispatches and pushes).
        let mut barren = false;
        let scene: SceneId = loop {
            while state.items.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.not_empty.wait(state).unwrap();
            }
            let now = Instant::now();
            let window = self.window.min(state.items.len());
            // A head at its fairness cap is never passed over *and* never
            // made to wait for accumulation: its scene dispatches now.
            if self.head_urgent(&state.items[0], now) {
                break state.items[0].scene().clone();
            }
            // Scene choice inside the reorder window: least client debt
            // first (per-client weighted fairness — a scene is as eligible
            // as its *least-served* waiting client), then densest, then
            // earliest first occurrence (stable, biased toward older work).
            // With no client ids every debt is 0 and this reduces to plain
            // densest-first.
            let mut counts: Vec<(usize, usize, u64)> = Vec::new(); // (first index, count, debt)
            for i in 0..window {
                let debt = state.debt(&state.items[i]);
                let s = state.items[i].scene();
                match counts
                    .iter_mut()
                    .find(|&&mut (first, ..)| state.items[first].scene() == s)
                {
                    Some((_, c, d)) => {
                        *c += 1;
                        *d = (*d).min(debt);
                    }
                    None => counts.push((i, 1, debt)),
                }
            }
            let (first, count, _) = counts
                .iter()
                .copied()
                .max_by_key(|&(first, count, debt)| (u64::MAX - debt, count, usize::MAX - first))
                .expect("window is non-empty");
            // Dispatch when the batch is worth it or waiting cannot help:
            // a half-full (or better) batch exists, the queue is at
            // capacity (backpressure — arrivals are blocked anyway), the
            // scheduler is closed (drain mode), or an accumulation wait
            // already came back empty.
            if barren
                || count >= max_batch.div_ceil(2)
                || state.items.len() >= self.capacity
                || state.closed
            {
                break state.items[first].scene().clone();
            }
            // Accumulate: wait (briefly) for more arrivals. Bounded by the
            // head's remaining fairness allowance and by the no-arrival
            // grace — if nothing arrives within one grace the traffic is
            // closed-loop (every client is already queued) and waiting
            // longer is pure idle time.
            let head_allowance = self
                .age_cap
                .saturating_sub(now.saturating_duration_since(state.items[0].enqueued_at()));
            let timeout = self.grace.min(head_allowance);
            let (guard, wait) = self.not_empty.wait_timeout(state, timeout).unwrap();
            state = guard;
            barren = wait.timed_out();
            // Re-evaluate from scratch either way: the queue may have
            // changed under the wait (arrivals, other workers dispatching,
            // sweeps), so nothing computed before it can be trusted.
        };
        if state.items[0].scene() != &scene {
            self.reorders.fetch_add(1, Ordering::Relaxed);
        }
        // Extract up to `max_batch` jobs of the target scene from the
        // window region, FIFO among themselves; everything else (including
        // jobs beyond the window) keeps its order.
        let mut batch = Vec::new();
        let mut kept = VecDeque::with_capacity(state.items.len());
        for (i, item) in state.items.drain(..).enumerate() {
            if i < self.window && batch.len() < max_batch && item.scene() == &scene {
                batch.push(item);
            } else {
                kept.push_back(item);
            }
        }
        state.items = kept;
        for item in &batch {
            state.charge(item);
        }
        drop(state);
        for _ in 0..batch.len() {
            self.not_full.notify_one();
        }
        debug_assert!(!batch.is_empty(), "the target scene came from the window");
        Some(batch)
    }

    fn drain_where(&self, max: usize, pred: &mut dyn FnMut(&T) -> bool) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut state = self.state.lock().unwrap();
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(state.items.len());
        while let Some(item) = state.items.pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        state.items = kept;
        drop(state);
        for _ in 0..taken.len() {
            self.not_full.notify_one();
        }
        taken
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn reorders(&self) -> u64 {
        self.reorders.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct TestJob {
        scene: SceneId,
        seq: usize,
        enqueued: Instant,
        deadline: Option<Instant>,
        client: Option<String>,
    }

    impl TestJob {
        fn new(scene: &str, seq: usize) -> Self {
            Self {
                scene: scene.to_string(),
                seq,
                enqueued: Instant::now(),
                deadline: None,
                client: None,
            }
        }

        fn aged(mut self, by: Duration) -> Self {
            self.enqueued = Instant::now().checked_sub(by).unwrap_or(self.enqueued);
            self
        }

        fn with_client(mut self, client: &str) -> Self {
            self.client = Some(client.to_string());
            self
        }
    }

    impl SchedItem for TestJob {
        fn scene(&self) -> &SceneId {
            &self.scene
        }
        fn enqueued_at(&self) -> Instant {
            self.enqueued
        }
        fn deadline(&self) -> Option<Instant> {
            self.deadline
        }
        fn client(&self) -> Option<&str> {
            self.client.as_deref()
        }
    }

    fn sched(window: usize, cap_ms: u64) -> BatchAwareScheduler<TestJob> {
        BatchAwareScheduler::new(64, window, Duration::from_millis(cap_ms))
    }

    #[test]
    fn batch_aware_groups_the_densest_scene_in_the_window() {
        // Interleaved a/b with b denser: the batch-aware scheduler jumps
        // the b's over the head a (one reorder), whereas FIFO would return
        // a batch of exactly one a.
        let s = sched(16, 10_000);
        for (i, scene) in ["a", "b", "b", "a", "b"].iter().enumerate() {
            s.push(TestJob::new(scene, i)).unwrap();
        }
        let batch = s.next_batch(8).unwrap();
        let scenes: Vec<&str> = batch.iter().map(|j| j.scene.as_str()).collect();
        assert_eq!(scenes, ["b", "b", "b"]);
        assert_eq!(
            batch.iter().map(|j| j.seq).collect::<Vec<_>>(),
            vec![1, 2, 4],
            "same-scene jobs stay FIFO among themselves"
        );
        assert_eq!(s.reorders(), 1);
        // The passed-over a's are still there, in order.
        let batch = s.next_batch(8).unwrap();
        assert_eq!(batch.iter().map(|j| j.seq).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(s.reorders(), 1, "head scene scheduled: no extra reorder");
    }

    #[test]
    fn an_aged_head_is_never_passed_over() {
        let s = sched(16, 50);
        s.push(TestJob::new("lone", 0).aged(Duration::from_secs(1)))
            .unwrap();
        for i in 1..6 {
            s.push(TestJob::new("popular", i)).unwrap();
        }
        let batch = s.next_batch(8).unwrap();
        assert_eq!(
            batch[0].scene, "lone",
            "a head past the age cap must go first even against a denser scene"
        );
        assert_eq!(s.reorders(), 0);
    }

    #[test]
    fn an_imminent_head_deadline_is_never_passed_over() {
        let s = sched(16, 50);
        let mut urgent = TestJob::new("lone", 0);
        urgent.deadline = Some(Instant::now() + Duration::from_millis(10));
        s.push(urgent).unwrap();
        for i in 1..6 {
            s.push(TestJob::new("popular", i)).unwrap();
        }
        let batch = s.next_batch(8).unwrap();
        assert_eq!(batch[0].scene, "lone");
    }

    #[test]
    fn jobs_beyond_the_window_cannot_jump_the_queue() {
        // Window of 2: the six c's beyond the window must not be selected
        // even though c is globally densest.
        let s = sched(2, 10_000);
        s.push(TestJob::new("a", 0)).unwrap();
        s.push(TestJob::new("b", 1)).unwrap();
        for i in 2..8 {
            s.push(TestJob::new("c", i)).unwrap();
        }
        let batch = s.next_batch(8).unwrap();
        assert_eq!(
            batch[0].scene,
            "a",
            "outside-window scenes must not win: {:?}",
            batch.iter().map(|j| j.scene.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_pushed_job_is_delivered_exactly_once() {
        let scenes = ["a", "b", "c"];
        // Capacity above the push count: this test drives the scheduler
        // single-threaded, so a full queue would deadlock the pushes.
        let s = BatchAwareScheduler::new(256, 8, Duration::from_secs(10));
        let mut rng = gs_core::rng::Rng64::seed_from_u64(99);
        let total = 200usize;
        for i in 0..total {
            let scene = scenes[rng.gen_range(0usize..scenes.len())];
            s.push(TestJob::new(scene, i)).unwrap();
        }
        s.close();
        let mut seen = vec![false; total];
        let mut last_per_scene: std::collections::HashMap<String, usize> = Default::default();
        while let Some(batch) = s.next_batch(4) {
            assert!(!batch.is_empty() && batch.len() <= 4);
            let scene = batch[0].scene.clone();
            for job in batch {
                assert_eq!(job.scene, scene, "batches must not mix scenes");
                assert!(!seen[job.seq], "job {} delivered twice", job.seq);
                seen[job.seq] = true;
                if let Some(&prev) = last_per_scene.get(&job.scene) {
                    assert!(prev < job.seq, "same-scene FIFO violated");
                }
                last_per_scene.insert(job.scene, job.seq);
            }
        }
        assert!(seen.iter().all(|&s| s), "every job must be delivered");
    }

    #[test]
    fn a_heavy_client_cannot_starve_a_light_one() {
        // A heavy client floods two hot scenes; a light client's three jobs
        // on a cold scene are buried mid-flood. Once the first batch has
        // charged the heavy client, the cold scene's zero debt must win the
        // next selection even though the hot scenes stay far denser.
        let s = BatchAwareScheduler::new(256, 32, Duration::from_secs(10));
        let mut rng = gs_core::rng::Rng64::seed_from_u64(42);
        let mut seq = 0usize;
        let mut push = |s: &BatchAwareScheduler<TestJob>, scene: &str, client: &str| {
            s.push(TestJob::new(scene, seq).with_client(client))
                .unwrap();
            seq += 1;
        };
        for _ in 0..20 {
            let scene = if rng.gen_range(0u32..2) == 0 {
                "hot-a"
            } else {
                "hot-b"
            };
            push(&s, scene, "heavy");
        }
        for _ in 0..3 {
            push(&s, "cold", "light");
        }
        for _ in 0..40 {
            let scene = if rng.gen_range(0u32..2) == 0 {
                "hot-a"
            } else {
                "hot-b"
            };
            push(&s, scene, "heavy");
        }
        s.close();
        let mut batch_index = 0usize;
        let mut light_done_at = None;
        let mut heavy_left = 60usize;
        while let Some(batch) = s.next_batch(8) {
            for job in &batch {
                match job.client.as_deref() {
                    Some("heavy") => heavy_left -= 1,
                    Some("light") => light_done_at = Some((batch_index, heavy_left)),
                    _ => unreachable!(),
                }
            }
            batch_index += 1;
        }
        let (at, heavy_still_queued) = light_done_at.expect("light jobs delivered");
        assert!(
            at <= 2 && heavy_still_queued >= 20,
            "light client must be served while the heavy flood is still queued \
             (last light batch {at}, heavy jobs left {heavy_still_queued})"
        );
    }

    #[test]
    fn accumulation_gathers_paced_same_scene_arrivals() {
        use std::sync::Arc;
        // One thin item queued; a producer trickles four more of the same
        // scene in at 1 ms intervals — well inside the accumulation grace.
        // next_batch must hold the thin batch and return the gathered run,
        // not dispatch the lone head eagerly.
        let s = Arc::new(BatchAwareScheduler::new(64, 32, Duration::from_millis(500)));
        s.push(TestJob::new("a", 0)).unwrap();
        let s2 = Arc::clone(&s);
        let producer = std::thread::spawn(move || {
            for i in 1..5 {
                std::thread::sleep(Duration::from_millis(1));
                s2.push(TestJob::new("a", i)).unwrap();
            }
        });
        let batch = s.next_batch(8).unwrap();
        producer.join().unwrap();
        assert!(
            batch.len() >= 3,
            "accumulation must gather paced arrivals into one batch, got {}",
            batch.len()
        );
    }

    #[test]
    fn push_blocks_at_capacity_and_close_fails_pending_pushes() {
        use std::sync::Arc;
        let s = Arc::new(BatchAwareScheduler::new(1, 4, Duration::from_millis(50)));
        s.push(TestJob::new("a", 0)).unwrap();
        let s2 = Arc::clone(&s);
        let producer = std::thread::spawn(move || s2.push(TestJob::new("a", 1)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(s.len(), 1, "producer should be blocked");
        s.close();
        assert!(producer.join().unwrap().is_err());
        // The queued item still drains, then the scheduler reports done.
        assert_eq!(s.next_batch(4).unwrap()[0].seq, 0);
        assert!(s.next_batch(4).is_none());
    }

    #[test]
    fn drain_where_sweeps_matching_jobs_fifo() {
        let s = sched(8, 10_000);
        for i in 0..6 {
            s.push(TestJob::new(if i % 2 == 0 { "x" } else { "y" }, i))
                .unwrap();
        }
        let drained = s.drain_where(usize::MAX, &mut |j: &TestJob| j.scene == "y");
        assert_eq!(
            drained.iter().map(|j| j.seq).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(s.len(), 3);
    }
}
