//! Scene sharding: spatial partitioning of a Gaussian store into shards
//! that are admitted, cached and rendered independently.
//!
//! GS-Scale's training side splits parameter state across host and GPU so
//! scenes larger than one device fit; this module extends the same idea to
//! serving. A scene is partitioned into `K` shards by **recursive
//! axis-median splits** on the Gaussian centers: each split selects the
//! longest axis of the subset's center bounding box and cuts at the
//! quantile that balances the shard counts on both sides (the exact median
//! when `K` is a power of two). Every Gaussian lands in exactly one shard,
//! each shard records its center AABB and memory footprint, and the shard
//! footprints sum to the unsharded footprint.
//!
//! At render time the shards are ordered **front-to-back by depth along the
//! view ray** ([`depth_order`]) and rendered one at a time into a
//! [`gs_render::rasterize::FrameLayer`], so only one shard's 59-parameter
//! store needs to be resident at a time — a scene larger than the whole
//! registry budget still serves, one shard's worth of memory per step.

use std::sync::Arc;

use gs_core::camera::{Camera, Viewport};
use gs_core::gaussian::GaussianParams;
use gs_core::math::Vec3;
use gs_render::culling::{CULL_PIXEL_SLACK, CULL_RADIUS_MARGIN};
use gs_render::projection::RADIUS_SIGMA;

/// An axis-aligned bounding box over Gaussian centers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Componentwise minimum corner.
    pub min: Vec3,
    /// Componentwise maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// An empty box (inverted bounds) that grows to fit the first point.
    pub fn empty() -> Self {
        Self {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// The box tightly enclosing the centers of `ids` within `params`.
    pub fn of_centers(params: &GaussianParams, ids: &[u32]) -> Self {
        let mut aabb = Self::empty();
        for &id in ids {
            aabb.grow(params.mean(id as usize));
        }
        aabb
    }

    /// Expands the box to include `p`.
    pub fn grow(&mut self, p: Vec3) {
        self.min = Vec3::new(
            self.min.x.min(p.x),
            self.min.y.min(p.y),
            self.min.z.min(p.z),
        );
        self.max = Vec3::new(
            self.max.x.max(p.x),
            self.max.y.max(p.y),
            self.max.z.max(p.z),
        );
    }

    /// Whether `p` lies inside the box (inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The box center (the point shard depth ordering projects).
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extents (`max - min`).
    pub fn extents(&self) -> Vec3 {
        self.max - self.min
    }

    /// Merges another box into this one.
    pub fn union(&mut self, other: &Aabb) {
        self.grow(other.min);
        self.grow(other.max);
    }

    /// Whether the box is empty (inverted bounds, nothing grown into it).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// The box's eight corners.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

/// Conservative shard-level frustum test: whether *any* Gaussian whose
/// center lies in `aabb` (with per-Gaussian scale at most `max_scale`) could
/// survive [`gs_render::culling::gaussian_in_frustum`] for this view. When
/// this returns `false`, every Gaussian of the shard is culled before
/// projection, so skipping the shard entirely leaves the composite
/// bit-identical — the shard-granular analogue of frustum culling.
///
/// The per-Gaussian test's conditions (`near < z < far`, projected pixel
/// inside the viewport inflated by the conservative radius) are rewritten as
/// linear half-space tests in camera space, which makes the eight corners of
/// the AABB's camera-space hull exact witnesses: centers are convex
/// combinations of corners, so a half-space that excludes all corners
/// excludes every center. The inflation radius uses the shard-wide
/// `max_scale`, an upper bound on each Gaussian's own.
pub fn shard_visible(aabb: &Aabb, max_scale: f32, cam: &Camera, viewport: &Viewport) -> bool {
    if aabb.is_empty() {
        return false;
    }
    let corners = aabb.corners().map(|c| cam.world_to_cam(c));
    // Depth planes: every center's z lies within the corner hull's z range.
    if corners.iter().all(|c| c.z <= cam.near) || corners.iter().all(|c| c.z >= cam.far) {
        return false;
    }
    // Side planes. A Gaussian at camera-space (x, y, z) with z > near fails
    // e.g. the right margin iff `fx*x/z + cx >= x1 + slack + pad/z`, i.e.
    // `fx*x - (x1 - cx + slack)*z - pad >= 0` — linear in (x, z). Corners
    // with z <= near fail the depth plane instead, so an all-corner
    // exclusion on any one side proves the whole shard invisible.
    let focal = cam.fx.max(cam.fy);
    let pad = CULL_RADIUS_MARGIN * RADIUS_SIGMA * max_scale * focal;
    let (x0, x1) = (viewport.x0 as f32, viewport.x1 as f32);
    let (y0, y1) = (viewport.y0 as f32, viewport.y1 as f32);
    let right = x1 - cam.cx + CULL_PIXEL_SLACK;
    if corners
        .iter()
        .all(|c| cam.fx * c.x - right * c.z - pad >= 0.0)
    {
        return false;
    }
    let left = x0 - cam.cx - CULL_PIXEL_SLACK;
    if corners
        .iter()
        .all(|c| cam.fx * c.x - left * c.z + pad < 0.0)
    {
        return false;
    }
    let bottom = y1 - cam.cy + CULL_PIXEL_SLACK;
    if corners
        .iter()
        .all(|c| cam.fy * c.y - bottom * c.z - pad >= 0.0)
    {
        return false;
    }
    let top = y0 - cam.cy - CULL_PIXEL_SLACK;
    if corners.iter().all(|c| cam.fy * c.y - top * c.z + pad < 0.0) {
        return false;
    }
    true
}

/// One shard of a partitioned scene: a gathered parameter store plus the
/// metadata the registry and renderer need.
#[derive(Debug, Clone)]
pub struct ShardSource {
    /// The shard's own parameter container (gathered, ascending global id
    /// order — which is what keeps depth-disjoint composites bit-identical).
    pub params: Arc<GaussianParams>,
    /// Global ids of the Gaussians in this shard (ascending).
    pub ids: Vec<u32>,
    /// Bounding box of the shard's Gaussian centers.
    pub aabb: Aabb,
    /// Largest per-axis world-space scale of any Gaussian in the shard; the
    /// conservative inflation radius of [`shard_visible`].
    pub max_scale: f32,
    /// Bytes this shard charges against the registry pool when resident.
    pub bytes: u64,
}

/// Partitions `0..params.len()` into `k` id sets by recursive axis-median
/// splits on the Gaussian centers. Every id appears in exactly one set, the
/// sets are returned with ascending ids, and set sizes are balanced to
/// within one Gaussian.
///
/// `k` is clamped to the number of Gaussians (an empty store yields one
/// empty shard).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn partition_ids(params: &GaussianParams, k: usize) -> Vec<Vec<u32>> {
    assert!(k > 0, "shard count must be at least 1");
    let k = k.min(params.len()).max(1);
    let mut ids: Vec<u32> = (0..params.len() as u32).collect();
    let mut out = Vec::with_capacity(k);
    split_recursive(params, &mut ids, k, &mut out);
    for shard in &mut out {
        shard.sort_unstable();
    }
    out
}

fn split_recursive(params: &GaussianParams, ids: &mut [u32], k: usize, out: &mut Vec<Vec<u32>>) {
    if k <= 1 {
        out.push(ids.to_vec());
        return;
    }
    // Longest axis of the subset's center bounding box.
    let aabb = Aabb::of_centers(params, ids);
    let ext = aabb.extents();
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };
    let coord = |id: u32| -> f32 {
        let m = params.mean(id as usize);
        match axis {
            0 => m.x,
            1 => m.y,
            _ => m.z,
        }
    };
    // Split at the quantile that balances shard counts: the exact median
    // for an even split (k a power of two), proportional otherwise.
    let k_left = k / 2;
    let k_right = k - k_left;
    let cut = ids.len() * k_left / k;
    ids.select_nth_unstable_by(cut, |&a, &b| {
        coord(a)
            .partial_cmp(&coord(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let (left, right) = ids.split_at_mut(cut);
    split_recursive(params, left, k_left, out);
    split_recursive(params, right, k_right, out);
}

/// Partitions a scene into `k` shards, gathering each shard's parameters
/// into its own container (see [`partition_ids`] for the split rule).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn shard_scene(params: &GaussianParams, k: usize) -> Vec<ShardSource> {
    partition_ids(params, k)
        .into_iter()
        .map(|ids| {
            let shard_params = params.gather(&ids);
            let bytes = shard_params.total_bytes() as u64;
            let aabb = Aabb::of_centers(params, &ids);
            let max_scale = (0..shard_params.len())
                .map(|i| shard_params.scale(i).max_elem())
                .fold(0.0f32, f32::max);
            ShardSource {
                params: Arc::new(shard_params),
                ids,
                aabb,
                max_scale,
                bytes,
            }
        })
        .collect()
}

/// Orders shard indices front-to-back by the camera-space depth of each
/// shard's AABB center — the composite order of the fan-out render path.
///
/// For shards whose depth ranges are disjoint along the view ray (e.g. a
/// corridor scene partitioned along its long axis, viewed down that axis)
/// this order makes the layered composite bit-identical to the unsharded
/// render; for overlapping shards it is the error-minimizing heuristic.
pub fn depth_order(aabbs: &[Aabb], cam: &Camera) -> Vec<usize> {
    let mut order: Vec<usize> = (0..aabbs.len()).collect();
    order.sort_by(|&a, &b| {
        let za = cam.world_to_cam(aabbs[a].center()).z;
        let zb = cam.world_to_cam(aabbs[b].center()).z;
        za.total_cmp(&zb)
    });
    order
}

/// Depth-orders shards front-to-back and drops the frustum-invisible ones —
/// the shared shard selection of the single-node fan-out render and the
/// cluster coordinator. Selecting (and ordering) identically on both paths
/// is part of what keeps a relayed cross-node composite bit-identical to
/// the single-node sharded render.
///
/// # Panics
///
/// Panics if `max_scales` is shorter than `aabbs`.
pub fn visible_shards(
    aabbs: &[Aabb],
    max_scales: &[f32],
    cam: &Camera,
    viewport: &Viewport,
) -> Vec<usize> {
    assert!(max_scales.len() >= aabbs.len(), "one max scale per shard");
    depth_order(aabbs, cam)
        .into_iter()
        .filter(|&k| shard_visible(&aabbs[k], max_scales[k], cam, viewport))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::rng::Rng64;

    fn random_scene(seed: u64, n: usize, extents: [f32; 3]) -> GaussianParams {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut p = GaussianParams::with_capacity(n);
        for _ in 0..n {
            p.push_isotropic(
                Vec3::new(
                    rng.gen_range(-extents[0]..extents[0]),
                    rng.gen_range(-extents[1]..extents[1]),
                    rng.gen_range(-extents[2]..extents[2]),
                ),
                rng.gen_range(0.1f32..0.4),
                [rng.gen_f32(), rng.gen_f32(), rng.gen_f32()],
                rng.gen_range(0.3f32..0.9),
            );
        }
        p
    }

    #[test]
    fn every_gaussian_lands_in_exactly_one_shard() {
        // Seeded property loop over scene sizes and shard counts, including
        // non-power-of-two K and K larger than the scene.
        for (seed, n, k) in [
            (1u64, 100usize, 2usize),
            (2, 101, 3),
            (3, 257, 5),
            (4, 64, 8),
            (5, 33, 7),
            (6, 5, 9),
        ] {
            let params = random_scene(seed, n, [20.0, 10.0, 5.0]);
            let shards = partition_ids(&params, k);
            assert_eq!(shards.len(), k.min(n));
            let mut seen = vec![0u32; n];
            for ids in &shards {
                for &id in ids {
                    seen[id as usize] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "seed {seed}: every gaussian must appear exactly once"
            );
            // Balanced to within one Gaussian per shard.
            let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "seed {seed}: unbalanced sizes {sizes:?}");
        }
    }

    #[test]
    fn shard_aabbs_cover_the_scene() {
        for seed in [10u64, 11, 12] {
            let params = random_scene(seed, 200, [30.0, 8.0, 8.0]);
            let shards = shard_scene(&params, 4);
            let mut hull = Aabb::empty();
            for shard in &shards {
                for &id in &shard.ids {
                    assert!(
                        shard.aabb.contains(params.mean(id as usize)),
                        "seed {seed}: every center must lie inside its shard AABB"
                    );
                }
                hull.union(&shard.aabb);
            }
            let all: Vec<u32> = (0..params.len() as u32).collect();
            let scene_aabb = Aabb::of_centers(&params, &all);
            assert_eq!(
                hull, scene_aabb,
                "seed {seed}: shard AABBs must cover the scene"
            );
        }
    }

    #[test]
    fn shard_footprints_sum_to_the_unsharded_footprint() {
        for (seed, k) in [(20u64, 2usize), (21, 3), (22, 6)] {
            let params = random_scene(seed, 150, [10.0, 10.0, 10.0]);
            let shards = shard_scene(&params, k);
            let total: u64 = shards.iter().map(|s| s.bytes).sum();
            assert_eq!(total, params.total_bytes() as u64);
            let gaussians: usize = shards.iter().map(|s| s.params.len()).sum();
            assert_eq!(gaussians, params.len());
        }
    }

    #[test]
    fn gathered_shards_hold_the_right_parameters() {
        let params = random_scene(30, 80, [15.0, 15.0, 15.0]);
        for shard in shard_scene(&params, 3) {
            for (local, &global) in shard.ids.iter().enumerate() {
                assert_eq!(shard.params.mean(local), params.mean(global as usize));
                assert_eq!(
                    shard.params.opacity_logit(local),
                    params.opacity_logit(global as usize)
                );
            }
        }
    }

    #[test]
    fn elongated_scenes_split_along_the_long_axis() {
        // A corridor along x must produce x-contiguous slabs: every shard's
        // x-range is disjoint from every other shard's.
        let params = random_scene(40, 256, [40.0, 4.0, 4.0]);
        let mut shards = shard_scene(&params, 8);
        shards.sort_by(|a, b| a.aabb.min.x.total_cmp(&b.aabb.min.x));
        for pair in shards.windows(2) {
            assert!(
                pair[0].aabb.max.x < pair[1].aabb.min.x,
                "corridor shards must be disjoint slabs along x: {:?} vs {:?}",
                pair[0].aabb,
                pair[1].aabb
            );
        }
    }

    #[test]
    fn depth_order_sorts_slabs_along_the_view_ray() {
        let params = random_scene(50, 128, [40.0, 4.0, 4.0]);
        let shards = shard_scene(&params, 4);
        let aabbs: Vec<Aabb> = shards.iter().map(|s| s.aabb).collect();
        // Camera at the -x end looking down +x: depth == x - cam.x.
        let cam = Camera::look_at(
            32,
            24,
            1.0,
            Vec3::new(-50.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let order = depth_order(&aabbs, &cam);
        for pair in order.windows(2) {
            assert!(
                aabbs[pair[0]].center().x <= aabbs[pair[1]].center().x,
                "depth order must walk the corridor front to back"
            );
        }
        // From the opposite end the order reverses.
        let back = Camera::look_at(
            32,
            24,
            1.0,
            Vec3::new(50.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let reversed = depth_order(&aabbs, &back);
        assert_eq!(
            reversed,
            order.iter().rev().copied().collect::<Vec<_>>(),
            "reversing the camera must reverse the shard order"
        );
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let empty = GaussianParams::new();
        let shards = partition_ids(&empty, 4);
        assert_eq!(shards.len(), 1);
        assert!(shards[0].is_empty());

        let one = random_scene(60, 1, [1.0, 1.0, 1.0]);
        let shards = shard_scene(&one, 5);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].params.len(), 1);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shards_panics() {
        let params = random_scene(70, 10, [1.0, 1.0, 1.0]);
        let _ = partition_ids(&params, 0);
    }

    #[test]
    fn shard_visibility_is_a_superset_of_per_gaussian_culling() {
        // The load-bearing invariant of view-adaptive shard culling: a shard
        // holding *any* Gaussian that per-Gaussian frustum culling keeps must
        // never be reported invisible. Seeded loop over scenes, shard counts
        // and cameras, including views from inside the scene.
        for (seed, k) in [(80u64, 2usize), (81, 4), (82, 7)] {
            let params = random_scene(seed, 300, [40.0, 6.0, 6.0]);
            let shards = shard_scene(&params, k);
            let cams = [
                Camera::look_at(
                    64,
                    48,
                    1.2,
                    Vec3::new(-50.0, 0.0, 0.0),
                    Vec3::ZERO,
                    Vec3::new(0.0, 1.0, 0.0),
                ),
                // Mid-scene looking down +x: shards behind must be culled.
                Camera::look_at(
                    64,
                    48,
                    1.2,
                    Vec3::new(0.0, 1.0, 0.5),
                    Vec3::new(1.0, 1.0, 0.5),
                    Vec3::new(0.0, 1.0, 0.0),
                ),
                // Looking away from the scene entirely.
                Camera::look_at(
                    64,
                    48,
                    1.2,
                    Vec3::new(-50.0, 0.0, 0.0),
                    Vec3::new(-60.0, 0.0, 0.0),
                    Vec3::new(0.0, 1.0, 0.0),
                ),
            ];
            for cam in &cams {
                let vp = Viewport::full(cam);
                let survivors = gs_render::culling::frustum_cull(&params, cam, &vp).ids;
                let survivor_set: std::collections::HashSet<u32> = survivors.into_iter().collect();
                for shard in &shards {
                    let visible = shard_visible(&shard.aabb, shard.max_scale, cam, &vp);
                    let holds_survivor = shard.ids.iter().any(|id| survivor_set.contains(id));
                    assert!(
                        visible || !holds_survivor,
                        "seed {seed} k{k}: a shard holding a culling survivor was culled"
                    );
                }
            }
        }
    }

    #[test]
    fn shards_fully_outside_the_frustum_are_culled() {
        let params = random_scene(90, 200, [40.0, 4.0, 4.0]);
        let shards = shard_scene(&params, 4);
        // Camera past the +x end looking further along +x: the whole scene
        // sits behind it.
        let cam = Camera::look_at(
            64,
            48,
            1.2,
            Vec3::new(60.0, 0.0, 0.0),
            Vec3::new(70.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let vp = Viewport::full(&cam);
        for shard in &shards {
            assert!(
                !shard_visible(&shard.aabb, shard.max_scale, &cam, &vp),
                "a shard entirely behind the camera must be culled"
            );
        }
        // An empty AABB is never visible.
        assert!(!shard_visible(&Aabb::empty(), 0.0, &cam, &vp));
    }

    #[test]
    fn shard_max_scale_bounds_every_member() {
        let params = random_scene(91, 120, [20.0, 8.0, 8.0]);
        for shard in shard_scene(&params, 3) {
            for &id in &shard.ids {
                assert!(params.scale(id as usize).max_elem() <= shard.max_scale);
            }
        }
    }
}
