//! Request/response types for the rendering service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gs_core::camera::{Camera, Viewport};
use gs_core::image::Image;

/// Identifies a loaded scene in the registry.
pub type SceneId = String;

/// A shared cancellation flag attached to a [`RenderRequest`].
///
/// The submitter keeps a clone; setting it tells the service the client is
/// gone (e.g. its HTTP connection closed while the request was queued).
/// Workers sweep cancelled jobs out of the queue via `drain_where` and
/// answer them with [`ServeError::Cancelled`] instead of rendering frames
/// nobody will read — the same treatment expired deadlines get.
///
/// When the service accepts the request it installs a *watcher* counter on
/// the token ([`CancelToken::watch`]): the first `cancel()` bumps it, which
/// is how workers know a sweep is worth its O(queue) walk at all — merely
/// *carrying* a token (every HTTP request does) costs the queue nothing.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<CancelInner>);

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    /// `(counted, watcher)` under one mutex so the watcher is notified
    /// exactly once no matter how `cancel()` and `watch()` interleave.
    watch: std::sync::Mutex<(bool, Option<Arc<std::sync::atomic::AtomicU64>>)>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the request as cancelled, notifying the watcher (if installed)
    /// exactly once.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::SeqCst);
        let mut watch = self.0.watch.lock().unwrap();
        if !watch.0 {
            if let Some(counter) = &watch.1 {
                counter.fetch_add(1, Ordering::SeqCst);
                watch.0 = true;
            }
        }
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.flag.load(Ordering::SeqCst)
    }

    /// Installs the counter `cancel()` bumps; if the token was cancelled
    /// before the watcher arrived, the counter is bumped immediately.
    pub(crate) fn watch(&self, counter: &Arc<std::sync::atomic::AtomicU64>) {
        let mut watch = self.0.watch.lock().unwrap();
        watch.1 = Some(Arc::clone(counter));
        if self.0.flag.load(Ordering::SeqCst) && !watch.0 {
            counter.fetch_add(1, Ordering::SeqCst);
            watch.0 = true;
        }
    }
}

/// A request to render one view of one scene.
#[derive(Debug, Clone)]
pub struct RenderRequest {
    /// Which scene to render.
    pub scene: SceneId,
    /// Camera pose and intrinsics for the view.
    pub camera: Camera,
    /// Pixel region of the camera image to render.
    pub viewport: Viewport,
    /// Number of spherical-harmonic bands used for color (0..=3).
    pub sh_degree: usize,
    /// Optional completion deadline. A queued request whose deadline passes
    /// before a worker picks it up is answered with
    /// [`ServeError::DeadlineExceeded`] instead of being rendered (and
    /// counted as `expired` in the service stats) — under overload there is
    /// no point rendering frames nobody is waiting for anymore.
    pub deadline: Option<Instant>,
    /// Optional cancellation flag (see [`CancelToken`]). A queued request
    /// whose token is cancelled is answered with [`ServeError::Cancelled`]
    /// and counted as `cancelled` in the service stats, never rendered.
    pub cancel: Option<CancelToken>,
    /// Optional client/session id, used by workload capture to attribute
    /// requests to sessions. The HTTP front-end fills it from the body's
    /// `client` key, the `X-Client-Id` header, or the peer address.
    pub client: Option<String>,
    /// Optional trace context. When set, the serving layers record queue /
    /// render / kernel-phase spans into the shared tree as the request
    /// moves through them; when `None`, the request is untraced (the
    /// common case — ingress samples every Nth request).
    pub trace: Option<gs_obs::TraceContext>,
}

impl RenderRequest {
    /// A full-image render request with degree-3 SH color, no deadline and
    /// no cancel token.
    pub fn full(scene: impl Into<SceneId>, camera: Camera) -> Self {
        let viewport = Viewport::full(&camera);
        Self {
            scene: scene.into(),
            camera,
            viewport,
            sh_degree: 3,
            deadline: None,
            cancel: None,
            client: None,
            trace: None,
        }
    }

    /// Sets the deadline to `timeout` from now.
    pub fn deadline_in(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Attaches a cancel token (the caller keeps a clone to trigger it).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a client/session id.
    pub fn with_client(mut self, client: impl Into<String>) -> Self {
        self.client = Some(client.into());
        self
    }

    /// Attaches a trace context (spans the serving layers record will
    /// parent under its `parent` span).
    pub fn with_trace(mut self, trace: gs_obs::TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Whether the request's deadline (if any) has passed at `now`.
    pub fn is_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Whether the request's cancel token (if any) has been triggered.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// A completed render, including the measurements the service collected for
/// the request.
#[derive(Debug, Clone)]
pub struct RenderedFrame {
    /// The rendered image (shared with the frame cache).
    pub image: Arc<Image>,
    /// Scene the frame belongs to.
    pub scene: SceneId,
    /// Time from enqueue to completion.
    pub latency: Duration,
    /// Number of same-scene requests the worker grouped with this one
    /// (1 = unbatched).
    pub batch_size: usize,
    /// Whether the frame was served from the frame cache.
    pub cache_hit: bool,
    /// Index of the worker thread that produced the frame. Frames answered
    /// by the pre-enqueue cache fast path never touch the pool and report
    /// the index one past it (`== workers`).
    pub worker: usize,
    /// Number of shard layers composited into this frame (1 for an
    /// unsharded scene, and for cache hits of either kind).
    pub shards: usize,
}

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The requested scene is not loaded in the registry.
    UnknownScene(SceneId),
    /// Loading a scene was rejected by admission control.
    Admission(gs_core::Error),
    /// A load required the scene to be new, but the id is already taken
    /// (e.g. `POST /scenes/<id>` for a loaded scene).
    SceneExists(SceneId),
    /// The request's deadline passed while it was still queued.
    DeadlineExceeded,
    /// The request's cancel token was triggered while it was still queued
    /// (e.g. the submitting client disconnected).
    Cancelled,
    /// A layer render named a shard the scene does not have.
    UnknownShard(SceneId, usize),
    /// The service dropped the request without answering it — it is
    /// shutting down, or the worker processing the request failed.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownScene(id) => write!(f, "scene {id:?} is not loaded"),
            ServeError::Admission(e) => write!(f, "admission control rejected the load: {e}"),
            ServeError::SceneExists(id) => write!(f, "scene {id:?} is already loaded"),
            ServeError::DeadlineExceeded => {
                write!(f, "the request's deadline passed before it was rendered")
            }
            ServeError::Cancelled => {
                write!(f, "the request was cancelled before it was rendered")
            }
            ServeError::UnknownShard(id, k) => {
                write!(f, "scene {id:?} has no shard {k}")
            }
            ServeError::ShuttingDown => write!(f, "the service dropped the request"),
        }
    }
}

impl std::error::Error for ServeError {}
