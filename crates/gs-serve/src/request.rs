//! Request/response types for the rendering service.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gs_core::camera::{Camera, Viewport};
use gs_core::image::Image;

/// Identifies a loaded scene in the registry.
pub type SceneId = String;

/// A request to render one view of one scene.
#[derive(Debug, Clone)]
pub struct RenderRequest {
    /// Which scene to render.
    pub scene: SceneId,
    /// Camera pose and intrinsics for the view.
    pub camera: Camera,
    /// Pixel region of the camera image to render.
    pub viewport: Viewport,
    /// Number of spherical-harmonic bands used for color (0..=3).
    pub sh_degree: usize,
    /// Optional completion deadline. A queued request whose deadline passes
    /// before a worker picks it up is answered with
    /// [`ServeError::DeadlineExceeded`] instead of being rendered (and
    /// counted as `expired` in the service stats) — under overload there is
    /// no point rendering frames nobody is waiting for anymore.
    pub deadline: Option<Instant>,
}

impl RenderRequest {
    /// A full-image render request with degree-3 SH color and no deadline.
    pub fn full(scene: impl Into<SceneId>, camera: Camera) -> Self {
        let viewport = Viewport::full(&camera);
        Self {
            scene: scene.into(),
            camera,
            viewport,
            sh_degree: 3,
            deadline: None,
        }
    }

    /// Sets the deadline to `timeout` from now.
    pub fn deadline_in(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Whether the request's deadline (if any) has passed at `now`.
    pub fn is_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// A completed render, including the measurements the service collected for
/// the request.
#[derive(Debug, Clone)]
pub struct RenderedFrame {
    /// The rendered image (shared with the frame cache).
    pub image: Arc<Image>,
    /// Scene the frame belongs to.
    pub scene: SceneId,
    /// Time from enqueue to completion.
    pub latency: Duration,
    /// Number of same-scene requests the worker grouped with this one
    /// (1 = unbatched).
    pub batch_size: usize,
    /// Whether the frame was served from the frame cache.
    pub cache_hit: bool,
    /// Index of the worker thread that produced the frame.
    pub worker: usize,
    /// Number of shard layers composited into this frame (1 for an
    /// unsharded scene, and for cache hits of either kind).
    pub shards: usize,
}

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The requested scene is not loaded in the registry.
    UnknownScene(SceneId),
    /// Loading a scene was rejected by admission control.
    Admission(gs_core::Error),
    /// A load required the scene to be new, but the id is already taken
    /// (e.g. `POST /scenes/<id>` for a loaded scene).
    SceneExists(SceneId),
    /// The request's deadline passed while it was still queued.
    DeadlineExceeded,
    /// The service dropped the request without answering it — it is
    /// shutting down, or the worker processing the request failed.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownScene(id) => write!(f, "scene {id:?} is not loaded"),
            ServeError::Admission(e) => write!(f, "admission control rejected the load: {e}"),
            ServeError::SceneExists(id) => write!(f, "scene {id:?} is already loaded"),
            ServeError::DeadlineExceeded => {
                write!(f, "the request's deadline passed before it was rendered")
            }
            ServeError::ShuttingDown => write!(f, "the service dropped the request"),
        }
    }
}

impl std::error::Error for ServeError {}
