//! Service-level statistics: latency percentiles, throughput, cache hit
//! rate, batch-size histogram and per-worker counters.
//!
//! Since the observability PR the collector is a *view* over a
//! [`gs_obs::Registry`]: every monotone counter lives in the registry (so
//! `GET /metrics` exposes it in Prometheus text form), while the
//! percentile reservoirs and the batch-size histogram — aggregates the
//! text exposition cannot represent losslessly — stay in a mutex. The
//! [`ServeStats`] snapshot and its wire form are unchanged.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gs_obs::{Counter, Histogram, Registry, TraceId, LATENCY_BUCKETS};

use crate::cache::CacheStats;

/// Latency distribution summary in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Worst observed latency.
    pub max: f64,
}

impl LatencySummary {
    fn from_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return Self::default();
        }
        // Linear interpolation between adjacent ranks. Nearest-rank rounding
        // collapses p99 onto the max for small samples and biases p50/p90
        // toward whichever neighbor the rounding lands on.
        let pct = |p: f64| {
            let rank = (sorted.len() as f64 - 1.0) * p;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
        };
        Self {
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max: *sorted.last().unwrap(),
        }
    }
}

/// Connection-level counters of the HTTP front-end (all zero when the
/// service is driven in-process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Connections accepted and handed to a handler thread.
    pub accepted: u64,
    /// Connections shed with `503` at the connection limit (or because no
    /// handler thread could be spawned).
    pub rejected: u64,
    /// Connections currently being handled.
    pub active: u64,
}

/// A point-in-time report of everything the service measured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Successfully completed requests.
    pub completed: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests answered with `DeadlineExceeded` because their deadline
    /// passed while queued (never rendered).
    pub expired: u64,
    /// Requests answered with `Cancelled` because their cancel token fired
    /// while queued (e.g. the submitting client disconnected).
    pub cancelled: u64,
    /// Requests answered by the pre-enqueue cache fast path (never queued,
    /// never rendered; included in `completed`).
    pub fast_hits: u64,
    /// Wall-clock time since the collector was created.
    pub elapsed: Duration,
    /// Latency distribution of requests that went through the queue and
    /// render path (enqueue to response). Fast-path cache hits are
    /// *excluded* — they never wait in the queue, and folding their
    /// near-zero latencies in here used to drag p50 down under repeat-heavy
    /// traffic; they are summarized in `hit_latency` instead.
    pub latency: LatencySummary,
    /// Latency distribution of fast-path cache hits (submit to response).
    pub hit_latency: LatencySummary,
    /// Frame-cache counters.
    pub cache: CacheStats,
    /// Times the scheduler picked a non-head scene ahead of the queue head
    /// (0 under FIFO).
    pub sched_reorders: u64,
    /// Name of the scheduling policy serving this report.
    pub scheduler: String,
    /// Name of the frame-cache replacement policy serving this report.
    pub cache_policy: String,
    /// `(batch size, number of batches)` in ascending batch-size order.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Completed requests per worker thread.
    pub per_worker: Vec<u64>,
    /// Gaussians gathered across all batches (shared unions).
    pub union_active: u64,
    /// Gaussians that would have been gathered without batching.
    pub summed_active: u64,
    /// Shard layers rendered by the sharded fan-out path (0 when only
    /// unsharded scenes are served).
    pub shards_rendered: u64,
    /// Shards skipped by view-adaptive culling (their AABB misses the view
    /// frustum, so they could not contribute to the frame).
    pub shards_culled: u64,
    /// Layer renders served through [`crate::server::RenderServer::render_layer_blocking`]
    /// (the cross-node sharded-rendering entry point).
    pub layers_served: u64,
    /// Frames whose rasterization fanned out across tile-row bands because
    /// the queue was empty at render time (0 when the pool was always busy
    /// or tile parallelism is disabled).
    pub tile_renders: u64,
    /// Latency distribution of individual shard-layer renders.
    pub shard_layer: LatencySummary,
    /// HTTP connection counters (filled in by the HTTP front-end).
    pub connections: ConnectionStats,
}

impl ServeStats {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Average number of requests grouped per batch.
    pub fn mean_batch_size(&self) -> f64 {
        let batches: u64 = self.batch_histogram.iter().map(|&(_, c)| c).sum();
        let requests: u64 = self
            .batch_histogram
            .iter()
            .map(|&(s, c)| s as u64 * c)
            .sum();
        if batches == 0 {
            0.0
        } else {
            requests as f64 / batches as f64
        }
    }

    /// How many times fewer Gaussians were gathered thanks to batch sharing
    /// (1.0 = no sharing).
    pub fn cull_sharing_factor(&self) -> f64 {
        if self.union_active == 0 {
            1.0
        } else {
            self.summed_active as f64 / self.union_active as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "serve stats ({:.2}s window)", self.elapsed.as_secs_f64())?;
        writeln!(
            f,
            "  requests:   {} completed, {} errors, {} expired, {} cancelled, {:.1} req/s",
            self.completed,
            self.errors,
            self.expired,
            self.cancelled,
            self.throughput_rps()
        )?;
        writeln!(
            f,
            "  latency:    p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  mean {:.2}ms  max {:.2}ms",
            self.latency.p50 * 1e3,
            self.latency.p90 * 1e3,
            self.latency.p99 * 1e3,
            self.latency.mean * 1e3,
            self.latency.max * 1e3,
        )?;
        writeln!(
            f,
            "  cache:      {:.1}% hit rate ({} hits / {} misses, {} evictions, {} rejected, \
             policy {})",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.rejected,
            if self.cache_policy.is_empty() {
                "?"
            } else {
                &self.cache_policy
            },
        )?;
        writeln!(
            f,
            "  fast path:  {} hits served pre-enqueue, hit p50 {:.3}ms  max {:.3}ms",
            self.fast_hits,
            self.hit_latency.p50 * 1e3,
            self.hit_latency.max * 1e3,
        )?;
        writeln!(
            f,
            "  scheduler:  {} ({} reorders)",
            if self.scheduler.is_empty() {
                "?"
            } else {
                &self.scheduler
            },
            self.sched_reorders,
        )?;
        let histogram: Vec<String> = self
            .batch_histogram
            .iter()
            .map(|&(s, c)| format!("{s}:{c}"))
            .collect();
        writeln!(
            f,
            "  batching:   mean size {:.2}, {:.2}x gather sharing, histogram [{}]",
            self.mean_batch_size(),
            self.cull_sharing_factor(),
            histogram.join(" "),
        )?;
        writeln!(
            f,
            "  sharding:   {} shard layers ({} culled, {} served as layers), layer p50 {:.2}ms  p99 {:.2}ms  mean {:.2}ms",
            self.shards_rendered,
            self.shards_culled,
            self.layers_served,
            self.shard_layer.p50 * 1e3,
            self.shard_layer.p99 * 1e3,
            self.shard_layer.mean * 1e3,
        )?;
        writeln!(
            f,
            "  tiling:     {} tile-parallel renders",
            self.tile_renders,
        )?;
        writeln!(
            f,
            "  connections: {} accepted, {} rejected, {} active",
            self.connections.accepted, self.connections.rejected, self.connections.active,
        )?;
        let per_worker: Vec<String> = self
            .per_worker
            .iter()
            .enumerate()
            .map(|(i, c)| format!("w{i}:{c}"))
            .collect();
        write!(f, "  workers:    [{}]", per_worker.join(" "))
    }
}

/// Number of latency samples kept for percentile estimation. Mean and max
/// are exact (tracked as running aggregates); percentiles come from a
/// uniform reservoir sample so a long-running service's memory stays
/// bounded no matter how many requests it serves.
const LATENCY_RESERVOIR: usize = 65_536;

/// A bounded-memory latency accumulator: exact running mean and max plus a
/// uniform reservoir sample (Algorithm R) for percentile estimation.
struct LatencyAccum {
    reservoir: Vec<f64>,
    count: u64,
    sum: f64,
    max: f64,
    rng: gs_core::rng::Rng64,
}

impl LatencyAccum {
    fn new(seed: u64) -> Self {
        Self {
            reservoir: Vec::new(),
            count: 0,
            sum: 0.0,
            max: 0.0,
            rng: gs_core::rng::Rng64::seed_from_u64(seed),
        }
    }

    fn record(&mut self, secs: f64) {
        self.count += 1;
        self.sum += secs;
        self.max = self.max.max(secs);
        // Algorithm R: every observed latency ends up in the reservoir with
        // equal probability.
        if self.reservoir.len() < LATENCY_RESERVOIR {
            self.reservoir.push(secs);
        } else {
            let j = self.rng.gen_range(0u64..self.count) as usize;
            if j < LATENCY_RESERVOIR {
                self.reservoir[j] = secs;
            }
        }
    }

    fn summary(&self) -> LatencySummary {
        let mut sorted = self.reservoir.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut summary = LatencySummary::from_sorted(&sorted);
        // Percentiles are sampled; mean and max are exact.
        if self.count > 0 {
            summary.mean = self.sum / self.count as f64;
            summary.max = self.max;
        }
        summary
    }
}

struct CollectorInner {
    latency: LatencyAccum,
    hit_latency: LatencyAccum,
    shard_layer: LatencyAccum,
    batches: BTreeMap<usize, u64>,
}

/// Thread-safe accumulator the workers report into.
///
/// Monotone counters live in a shared [`gs_obs::Registry`] (exposed at
/// `GET /metrics`); the reservoirs and batch-size histogram stay local.
pub struct StatsCollector {
    started: Instant,
    registry: Arc<Registry>,
    completed: Counter,
    errors: Counter,
    expired: Counter,
    cancelled: Counter,
    fast_hits: Counter,
    shards_rendered: Counter,
    shards_culled: Counter,
    layers_served: Counter,
    tile_renders: Counter,
    batches_total: Counter,
    union_active: Counter,
    summed_active: Counter,
    per_worker: Vec<Counter>,
    request_seconds: Histogram,
    fast_hit_seconds: Histogram,
    shard_layer_seconds: Histogram,
    inner: Mutex<CollectorInner>,
}

impl StatsCollector {
    /// Creates a collector for `workers` worker threads with its own
    /// private registry.
    pub fn new(workers: usize) -> Self {
        Self::with_registry(Arc::new(Registry::new()), workers)
    }

    /// Creates a collector that registers its counters in `registry` — the
    /// form the server uses so request counters, span-sink counters and
    /// kernel-phase aggregates share one `GET /metrics` exposition.
    pub fn with_registry(registry: Arc<Registry>, workers: usize) -> Self {
        let outcome = |o: &str| {
            registry.counter(
                "gs_requests_total",
                &[("outcome", o)],
                "Requests answered, by outcome",
            )
        };
        let latency_hist =
            |name: &str, help: &str| registry.histogram(name, &[], help, &LATENCY_BUCKETS);
        Self {
            started: Instant::now(),
            completed: outcome("completed"),
            errors: outcome("error"),
            expired: outcome("expired"),
            cancelled: outcome("cancelled"),
            fast_hits: registry.counter(
                "gs_fast_hits_total",
                &[],
                "Requests answered by the pre-enqueue cache fast path",
            ),
            shards_rendered: registry.counter(
                "gs_shards_rendered_total",
                &[],
                "Shard layers rendered by the sharded fan-out path",
            ),
            shards_culled: registry.counter(
                "gs_shards_culled_total",
                &[],
                "Shards skipped by view-adaptive culling",
            ),
            layers_served: registry.counter(
                "gs_layers_served_total",
                &[],
                "Layer renders served to cross-node shard requests",
            ),
            tile_renders: registry.counter(
                "gs_tile_renders_total",
                &[],
                "Frames rasterized with tile-row parallelism",
            ),
            batches_total: registry.counter("gs_batches_total", &[], "Batches formed"),
            union_active: registry.counter(
                "gs_union_active_total",
                &[],
                "Gaussians gathered across batches (shared unions)",
            ),
            summed_active: registry.counter(
                "gs_summed_active_total",
                &[],
                "Gaussians that would have been gathered without batching",
            ),
            per_worker: (0..workers)
                .map(|w| {
                    registry.counter(
                        "gs_worker_completed_total",
                        &[("worker", &w.to_string())],
                        "Completed requests per worker thread",
                    )
                })
                .collect(),
            request_seconds: latency_hist(
                "gs_request_seconds",
                "Queue-wait + render latency of completed requests",
            ),
            fast_hit_seconds: latency_hist(
                "gs_fast_hit_seconds",
                "Latency of pre-enqueue cache fast hits",
            ),
            shard_layer_seconds: latency_hist(
                "gs_shard_layer_seconds",
                "Latency of individual shard-layer renders",
            ),
            registry: Arc::clone(&registry),
            inner: Mutex::new(CollectorInner {
                latency: LatencyAccum::new(0x5eed),
                hit_latency: LatencyAccum::new(0xfa57),
                shard_layer: LatencyAccum::new(0x51a6d),
                batches: BTreeMap::new(),
            }),
        }
    }

    /// The registry the collector's counters live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one completed request.
    pub fn record_completed(&self, worker: usize, latency: Duration) {
        let secs = latency.as_secs_f64();
        self.completed.inc();
        self.request_seconds.observe(secs);
        if let Some(counter) = self.per_worker.get(worker) {
            counter.inc();
        }
        self.inner.lock().unwrap().latency.record(secs);
    }

    /// [`StatsCollector::record_completed`], additionally pinning the
    /// request's trace id as the latency histogram's exemplar on the
    /// bucket the observation landed in — the link that lets a bad p99
    /// bucket on `/metrics` resolve to a stitched trace via
    /// `/trace?id=`.
    pub fn record_completed_traced(
        &self,
        worker: usize,
        latency: Duration,
        trace: Option<TraceId>,
    ) {
        let Some(id) = trace else {
            return self.record_completed(worker, latency);
        };
        let secs = latency.as_secs_f64();
        self.completed.inc();
        self.request_seconds.observe_exemplar(secs, &id.to_string());
        if let Some(counter) = self.per_worker.get(worker) {
            counter.inc();
        }
        self.inner.lock().unwrap().latency.record(secs);
    }

    /// Completed requests so far (fast hits included) — the watcher's
    /// cheap progress probe for queue-stall detection.
    pub fn completed_count(&self) -> u64 {
        self.completed.get()
    }

    /// Records one request answered from the cache *before* it enqueued
    /// (the submit fast path). Counted as completed, but its latency lands
    /// in the hit reservoir so the request-latency percentiles keep
    /// measuring the queue-wait + render path.
    pub fn record_fast_hit(&self, latency: Duration) {
        let secs = latency.as_secs_f64();
        self.completed.inc();
        self.fast_hits.inc();
        self.fast_hit_seconds.observe(secs);
        self.inner.lock().unwrap().hit_latency.record(secs);
    }

    /// Records one request answered with an error.
    pub fn record_error(&self) {
        self.record_errors(1);
    }

    /// Records `n` requests answered with (or dropped into) an error, e.g.
    /// every job of a panicked batch.
    pub fn record_errors(&self, n: u64) {
        self.errors.add(n);
    }

    /// Records `n` requests skipped because their deadline passed in queue.
    pub fn record_expired(&self, n: u64) {
        self.expired.add(n);
    }

    /// Records `n` requests skipped because their cancel token fired while
    /// they were queued.
    pub fn record_cancelled(&self, n: u64) {
        self.cancelled.add(n);
    }

    /// Records `n` shards skipped by view-adaptive culling.
    pub fn record_shards_culled(&self, n: u64) {
        self.shards_culled.add(n);
    }

    /// Records one served layer render (the cross-node shard entry point).
    pub fn record_layer_served(&self) {
        self.layers_served.inc();
    }

    /// Records `n` frames rasterized tile-parallel (fanned across tile-row
    /// bands while the queue was empty).
    pub fn record_tile_renders(&self, n: u64) {
        self.tile_renders.add(n);
    }

    /// A uniform sample of observed request latencies in seconds (at most
    /// `max` values, deterministically strided out of the reservoir). The
    /// raw material a cluster coordinator merges across replicas so
    /// cluster-wide percentiles reflect every replica's distribution instead
    /// of averaging pre-computed quantiles.
    pub fn latency_samples(&self, max: usize) -> Vec<f64> {
        let inner = self.inner.lock().unwrap();
        let reservoir = &inner.latency.reservoir;
        if max == 0 || reservoir.is_empty() {
            return Vec::new();
        }
        let stride = reservoir.len().div_ceil(max);
        reservoir.iter().step_by(stride).copied().collect()
    }

    /// Records one rendered shard layer and how long it took.
    pub fn record_shard_layer(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.shards_rendered.inc();
        self.shard_layer_seconds.observe(secs);
        self.inner.lock().unwrap().shard_layer.record(secs);
    }

    /// Records one formed batch and its gather-sharing counts.
    pub fn record_batch(&self, size: usize, union_active: usize, summed_active: usize) {
        self.batches_total.inc();
        self.union_active.add(union_active as u64);
        self.summed_active.add(summed_active as u64);
        *self.inner.lock().unwrap().batches.entry(size).or_insert(0) += 1;
    }

    /// Snapshots everything into a [`ServeStats`] report.
    pub fn snapshot(&self, cache: CacheStats) -> ServeStats {
        let inner = self.inner.lock().unwrap();
        ServeStats {
            completed: self.completed.get(),
            errors: self.errors.get(),
            expired: self.expired.get(),
            cancelled: self.cancelled.get(),
            fast_hits: self.fast_hits.get(),
            elapsed: self.started.elapsed(),
            latency: inner.latency.summary(),
            hit_latency: inner.hit_latency.summary(),
            cache,
            sched_reorders: 0,
            scheduler: String::new(),
            cache_policy: String::new(),
            batch_histogram: inner.batches.iter().map(|(&s, &c)| (s, c)).collect(),
            per_worker: self.per_worker.iter().map(Counter::get).collect(),
            union_active: self.union_active.get(),
            summed_active: self.summed_active.get(),
            shards_rendered: self.shards_rendered.get(),
            shards_culled: self.shards_culled.get(),
            layers_served: self.layers_served.get(),
            tile_renders: self.tile_renders.get(),
            shard_layer: inner.shard_layer.summary(),
            connections: ConnectionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_the_sorted_distribution() {
        let collector = StatsCollector::new(2);
        for ms in 1..=100u64 {
            collector.record_completed((ms % 2) as usize, Duration::from_millis(ms));
        }
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.completed, 100);
        // Interpolated ranks over samples 0.001..=0.100: p50 sits exactly
        // between 0.050 and 0.051, p90 at rank 89.1, p99 at rank 98.01.
        assert!(
            (stats.latency.p50 - 0.0505).abs() < 1e-9,
            "{}",
            stats.latency.p50
        );
        assert!(
            (stats.latency.p90 - 0.0901).abs() < 1e-9,
            "{}",
            stats.latency.p90
        );
        assert!(
            (stats.latency.p99 - 0.09901).abs() < 1e-9,
            "{}",
            stats.latency.p99
        );
        assert!((stats.latency.max - 0.100).abs() < 1e-9);
        assert_eq!(stats.per_worker, vec![50, 50]);
    }

    #[test]
    fn small_sample_percentiles_interpolate_instead_of_collapsing_onto_max() {
        // Regression: nearest-rank rounding turned p99 of a 4-sample
        // distribution into the max (rank 2.97 rounded to 3) and pushed p50
        // onto sorted[2] (rank 1.5 rounded up).
        let collector = StatsCollector::new(1);
        for ms in [5u64, 10, 15, 20] {
            collector.record_completed(0, Duration::from_millis(ms));
        }
        let stats = collector.snapshot(CacheStats::default());
        assert!(
            (stats.latency.p50 - 0.0125).abs() < 1e-9,
            "{}",
            stats.latency.p50
        );
        assert!(
            (stats.latency.p90 - 0.0185).abs() < 1e-9,
            "{}",
            stats.latency.p90
        );
        assert!(
            (stats.latency.p99 - 0.01985).abs() < 1e-9,
            "{}",
            stats.latency.p99
        );
        assert!(
            stats.latency.p99 < stats.latency.max,
            "p99 of a small sample must not collapse onto the max"
        );
    }

    #[test]
    fn fast_hits_stay_out_of_the_queue_wait_reservoir() {
        // Regression: folding near-zero cache-hit latencies into the
        // request reservoir dragged p50 toward zero under repeat-heavy
        // traffic. Fast hits are counted as completed but summarized in
        // their own reservoir.
        let collector = StatsCollector::new(1);
        for _ in 0..90 {
            collector.record_fast_hit(Duration::from_micros(3));
        }
        for _ in 0..10 {
            collector.record_completed(0, Duration::from_millis(20));
        }
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.fast_hits, 90);
        assert!(
            (stats.latency.p50 - 0.020).abs() < 1e-9,
            "render-path p50 must not be diluted by hits: {}",
            stats.latency.p50
        );
        assert!(
            stats.hit_latency.max <= 0.001,
            "hit latencies land in their own summary: {:?}",
            stats.hit_latency
        );
        let text = stats.to_string();
        assert!(text.contains("90 hits served pre-enqueue"), "{text}");
    }

    #[test]
    fn batch_histogram_and_sharing_factor() {
        let collector = StatsCollector::new(1);
        collector.record_batch(1, 10, 10);
        collector.record_batch(4, 20, 60);
        collector.record_batch(4, 30, 90);
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.batch_histogram, vec![(1, 1), (4, 2)]);
        assert!((stats.mean_batch_size() - 3.0).abs() < 1e-12);
        assert!((stats.cull_sharing_factor() - 160.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn latency_memory_stays_bounded_past_the_reservoir() {
        let collector = StatsCollector::new(1);
        // Far more samples than the reservoir holds: aggregates stay exact
        // and the percentile estimate stays inside the observed range.
        let n = LATENCY_RESERVOIR as u64 + 10_000;
        for i in 0..n {
            collector.record_completed(0, Duration::from_micros(1 + i % 1000));
        }
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.completed, n);
        assert!((stats.latency.max - 0.001).abs() < 1e-9, "max is exact");
        assert!(
            stats.latency.p50 > 0.0 && stats.latency.p50 <= 0.001,
            "sampled p50 {} must lie in the observed range",
            stats.latency.p50
        );
    }

    #[test]
    fn expired_and_shard_layer_counters_accumulate() {
        let collector = StatsCollector::new(1);
        collector.record_expired(3);
        collector.record_shard_layer(Duration::from_millis(2));
        collector.record_shard_layer(Duration::from_millis(4));
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.expired, 3);
        assert_eq!(stats.shards_rendered, 2);
        assert!((stats.shard_layer.mean - 0.003).abs() < 1e-9);
        assert!((stats.shard_layer.max - 0.004).abs() < 1e-9);
        let text = stats.to_string();
        assert!(text.contains("3 expired"), "{text}");
        assert!(text.contains("2 shard layers"), "{text}");
        assert!(text.contains("connections:"), "{text}");
    }

    #[test]
    fn cancelled_culled_and_layer_counters_accumulate() {
        let collector = StatsCollector::new(1);
        collector.record_cancelled(2);
        collector.record_shards_culled(5);
        collector.record_layer_served();
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.cancelled, 2);
        assert_eq!(stats.shards_culled, 5);
        assert_eq!(stats.layers_served, 1);
        let text = stats.to_string();
        assert!(text.contains("2 cancelled"), "{text}");
        assert!(text.contains("5 culled"), "{text}");
        assert!(text.contains("1 served as layers"), "{text}");
    }

    #[test]
    fn latency_samples_are_bounded_and_within_range() {
        let collector = StatsCollector::new(1);
        for ms in 1..=1000u64 {
            collector.record_completed(0, Duration::from_millis(ms));
        }
        let samples = collector.latency_samples(64);
        assert!(
            !samples.is_empty() && samples.len() <= 64,
            "{}",
            samples.len()
        );
        assert!(samples.iter().all(|&s| (0.001..=1.0).contains(&s)));
        assert!(collector.latency_samples(0).is_empty());
        assert!(StatsCollector::new(1).latency_samples(16).is_empty());
    }

    #[test]
    fn traced_completions_pin_exemplars_on_the_latency_histogram() {
        let collector = StatsCollector::new(1);
        let id = TraceId(0xabc);
        collector.record_completed_traced(0, Duration::from_millis(5), Some(id));
        collector.record_completed_traced(0, Duration::from_millis(7), None);
        assert_eq!(collector.completed_count(), 2);
        let text = collector.registry().render();
        assert!(
            text.contains(&format!("# {{trace_id=\"{id}\"}} 0.005")),
            "{text}"
        );
        gs_obs::lint_prometheus(&text).unwrap();
        let stats = collector.snapshot(CacheStats::default());
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.per_worker, vec![2]);
    }

    #[test]
    fn empty_collector_reports_zeros() {
        let stats = StatsCollector::new(3).snapshot(CacheStats::default());
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.throughput_rps(), 0.0);
        assert_eq!(stats.mean_batch_size(), 0.0);
        assert_eq!(stats.cull_sharing_factor(), 1.0);
        assert_eq!(stats.latency, LatencySummary::default());
    }

    #[test]
    fn display_contains_the_headline_numbers() {
        let collector = StatsCollector::new(1);
        collector.record_completed(0, Duration::from_millis(5));
        collector.record_batch(2, 5, 10);
        let text = collector.snapshot(CacheStats::default()).to_string();
        assert!(text.contains("p50"));
        assert!(text.contains("hit rate"));
        assert!(text.contains("histogram"));
        assert!(text.contains("w0:1"));
    }
}
