//! A policy-driven frame cache keyed by (scene, quantized camera pose,
//! viewport).
//!
//! Serving workloads revisit nearly identical viewpoints constantly (map
//! tiles, orbiting clients, popular landmarks). Quantizing the camera pose
//! collapses those near-duplicate views onto one key so repeated traffic is
//! answered without touching the renderer — the serving-side analogue of the
//! amortize-repeated-work theme. The cache is bounded in *bytes* (images
//! dominate); recency bookkeeping is the *mechanism*, while the replacement
//! decision is a swappable [`CachePolicy`]:
//!
//! * [`CachePolicyKind::Lru`] — classic LRU: every new frame is admitted,
//!   evicting the least recently used frames to make room.
//! * [`CachePolicyKind::TinyLfu`] — frequency-aware admission (TinyLFU): a
//!   [`gs_core::sketch::FrequencySketch`] (count-min sketch + doorkeeper)
//!   tracks recent key popularity, and a new frame only displaces the LRU
//!   victim when the candidate's recent frequency beats the victim's. Scan
//!   and one-hit-wonder traffic stops flushing the hot working set.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use gs_core::camera::{Camera, Viewport};
use gs_core::image::Image;
use gs_core::sketch::FrequencySketch;

use crate::request::{RenderRequest, SceneId};

/// A camera pose snapped to a fixed grid so that nearly identical views share
/// a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantizedPose {
    position: [i64; 3],
    rotation: [i64; 9],
    focal: [i64; 2],
    size: [u32; 2],
}

impl QuantizedPose {
    /// Quantizes `cam` with a translation grid of `step` world units.
    ///
    /// Rotation entries are quantized at `step / 10` (orientation errors show
    /// up on screen roughly an image-width sooner than translation errors).
    pub fn quantize(cam: &Camera, step: f32) -> Self {
        let step = step.max(1.0e-6);
        let rot_step = step / 10.0;
        let q = |v: f32, s: f32| (v / s).round() as i64;
        let r = &cam.rotation.m;
        Self {
            position: [
                q(cam.position.x, step),
                q(cam.position.y, step),
                q(cam.position.z, step),
            ],
            rotation: [
                q(r[0][0], rot_step),
                q(r[0][1], rot_step),
                q(r[0][2], rot_step),
                q(r[1][0], rot_step),
                q(r[1][1], rot_step),
                q(r[1][2], rot_step),
                q(r[2][0], rot_step),
                q(r[2][1], rot_step),
                q(r[2][2], rot_step),
            ],
            focal: [q(cam.fx, 0.01), q(cam.fy, 0.01)],
            size: [cam.width as u32, cam.height as u32],
        }
    }
}

/// Cache key: scene, quantized pose, viewport and SH degree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrameKey {
    /// Scene the frame belongs to.
    pub scene: SceneId,
    /// Quantized camera pose.
    pub pose: QuantizedPose,
    /// Viewport rectangle `(x0, y0, x1, y1)`.
    pub viewport: (u32, u32, u32, u32),
    /// SH degree used for color.
    pub sh_degree: u8,
}

impl FrameKey {
    /// Builds the cache key for a request with translation grid `pose_step`.
    pub fn for_request(req: &RenderRequest, pose_step: f32) -> Self {
        let Viewport { x0, y0, x1, y1 } = req.viewport;
        Self {
            scene: req.scene.clone(),
            pose: QuantizedPose::quantize(&req.camera, pose_step),
            viewport: (x0 as u32, y0 as u32, x1 as u32, y1 as u32),
            sh_degree: req.sh_degree as u8,
        }
    }
}

/// Which replacement policy a [`FrameCache`] runs (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CachePolicyKind {
    /// Plain LRU: always admit, evict least recently used.
    #[default]
    Lru,
    /// TinyLFU-style frequency-aware admission over LRU eviction order.
    TinyLfu,
}

impl CachePolicyKind {
    /// Short policy name as reported in stats.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicyKind::Lru => "lru",
            CachePolicyKind::TinyLfu => "tinylfu",
        }
    }

    /// Builds the policy, sized for a cache of roughly `entries_hint`
    /// resident frames.
    fn build(self, entries_hint: usize) -> Box<dyn CachePolicy> {
        match self {
            CachePolicyKind::Lru => Box::new(LruPolicy),
            CachePolicyKind::TinyLfu => Box::new(TinyLfuPolicy::new(entries_hint)),
        }
    }
}

impl std::fmt::Display for CachePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The replacement-policy side of the frame cache. The cache owns the
/// mechanism (byte accounting, recency order, invalidation); the policy owns
/// the decisions: what to learn from each lookup, and whether a new frame
/// may displace the current LRU victim.
pub trait CachePolicy: Send {
    /// The policy's [`CachePolicyKind`].
    fn kind(&self) -> CachePolicyKind;

    /// Notes one (counted) lookup of `key`, hit or miss — the signal a
    /// frequency-aware policy learns popularity from.
    fn record_access(&mut self, key: &FrameKey);

    /// Whether inserting `candidate` may evict `victim` (the cache's
    /// current least-recently-used entry). Returning `false` rejects the
    /// insertion instead (counted as [`CacheStats::rejected`]).
    fn should_replace(&mut self, candidate: &FrameKey, victim: &FrameKey) -> bool;
}

/// Classic LRU: admits everything; eviction order alone decides.
struct LruPolicy;

impl CachePolicy for LruPolicy {
    fn kind(&self) -> CachePolicyKind {
        CachePolicyKind::Lru
    }

    fn record_access(&mut self, _key: &FrameKey) {}

    fn should_replace(&mut self, _candidate: &FrameKey, _victim: &FrameKey) -> bool {
        true
    }
}

/// Stable 64-bit hash of a frame key for the frequency sketch.
fn key_hash(key: &FrameKey) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// TinyLFU admission: a candidate displaces the LRU victim only when its
/// recent frequency (count-min sketch + doorkeeper, aged by sample windows)
/// beats the victim's.
struct TinyLfuPolicy {
    sketch: FrequencySketch,
}

impl TinyLfuPolicy {
    fn new(entries_hint: usize) -> Self {
        Self {
            sketch: FrequencySketch::new(entries_hint),
        }
    }
}

impl CachePolicy for TinyLfuPolicy {
    fn kind(&self) -> CachePolicyKind {
        CachePolicyKind::TinyLfu
    }

    fn record_access(&mut self, key: &FrameKey) {
        self.sketch.record(key_hash(key));
    }

    fn should_replace(&mut self, candidate: &FrameKey, victim: &FrameKey) -> bool {
        self.sketch.frequency(key_hash(candidate)) > self.sketch.frequency(key_hash(victim))
    }
}

/// Hit/miss/eviction counters for the frame cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a render.
    pub misses: u64,
    /// Frames inserted.
    pub insertions: u64,
    /// Frames evicted to stay under the byte budget.
    pub evictions: u64,
    /// Frames the admission policy refused to insert (a TinyLFU candidate
    /// whose recent frequency did not beat the LRU victim's; always 0 under
    /// plain LRU).
    pub rejected: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    image: Arc<Image>,
    bytes: u64,
    tick: u64,
}

/// Byte-bounded cache of rendered frames with a pluggable replacement
/// policy (LRU eviction order; the [`CachePolicy`] decides admission).
pub struct FrameCache {
    entries: HashMap<FrameKey, Entry>,
    by_recency: BTreeMap<u64, FrameKey>,
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    stats: CacheStats,
    policy: Box<dyn CachePolicy>,
}

fn image_bytes(img: &Image) -> u64 {
    std::mem::size_of_val(img.data()) as u64
}

/// Sizing hint for frequency sketches: assume frames around 64 KiB, clamped
/// to a sane entry-count range. The sketch only needs the right order of
/// magnitude — it tracks relative popularity, not exact residency.
fn entries_hint(capacity_bytes: u64) -> usize {
    usize::try_from(capacity_bytes / (64 << 10))
        .unwrap_or(usize::MAX)
        .clamp(64, 1 << 16)
}

impl FrameCache {
    /// Creates an LRU cache bounded to `capacity_bytes` (0 disables
    /// caching).
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_policy(capacity_bytes, CachePolicyKind::Lru)
    }

    /// Creates a cache bounded to `capacity_bytes` running `policy`.
    pub fn with_policy(capacity_bytes: u64, policy: CachePolicyKind) -> Self {
        Self {
            entries: HashMap::new(),
            by_recency: BTreeMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
            policy: policy.build(entries_hint(capacity_bytes)),
        }
    }

    /// The replacement policy this cache runs.
    pub fn policy(&self) -> CachePolicyKind {
        self.policy.kind()
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the lookup
    /// (hit or miss) and feeds it to the policy's popularity estimate.
    pub fn get(&mut self, key: &FrameKey) -> Option<Arc<Image>> {
        self.policy.record_access(key);
        self.lookup(key, true)
    }

    /// The pre-enqueue fast-path lookup: answers a hit exactly like
    /// [`FrameCache::get`], but a miss is *not* counted and *not* fed to the
    /// policy — the request proceeds to the render path, whose own `get`
    /// does the counting. Every request therefore contributes exactly one
    /// counted lookup no matter how many probes it makes.
    pub fn get_fast(&mut self, key: &FrameKey) -> Option<Arc<Image>> {
        if !self.entries.contains_key(key) {
            return None;
        }
        self.policy.record_access(key);
        self.lookup(key, false)
    }

    fn lookup(&mut self, key: &FrameKey, count_miss: bool) -> Option<Arc<Image>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.by_recency.remove(&entry.tick);
                entry.tick = tick;
                self.by_recency.insert(tick, key.clone());
                self.stats.hits += 1;
                Some(Arc::clone(&entry.image))
            }
            None => {
                if count_miss {
                    self.stats.misses += 1;
                }
                None
            }
        }
    }

    /// Inserts a rendered frame, evicting least-recently-used frames as the
    /// policy permits. Frames larger than the whole cache are not stored,
    /// and a zero-capacity (disabled) cache admits nothing — not even
    /// zero-byte frames, which would otherwise pass the size check. Under
    /// frequency-aware admission the insertion itself can be rejected: if
    /// the candidate's recent frequency does not beat the LRU victim's, the
    /// resident working set wins and the new frame is dropped (counted as
    /// [`CacheStats::rejected`]).
    pub fn insert(&mut self, key: FrameKey, image: Arc<Image>) {
        if self.capacity_bytes == 0 {
            return;
        }
        let bytes = image_bytes(&image);
        if bytes > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.by_recency.remove(&old.tick);
            self.used_bytes -= old.bytes;
        }
        // Decide before evicting: collect the LRU victims the insertion
        // would need, and consult the policy for every one of them first. A
        // mid-loop rejection after evictions would shrink the cache without
        // admitting anything — residents must only die for a candidate that
        // actually gets in.
        let mut victims: Vec<u64> = Vec::new();
        let mut freed = 0u64;
        for (&tick, victim_key) in self.by_recency.iter() {
            if self.used_bytes - freed + bytes <= self.capacity_bytes {
                break;
            }
            if !self.policy.should_replace(&key, victim_key) {
                self.stats.rejected += 1;
                return;
            }
            freed += self.entries[victim_key].bytes;
            victims.push(tick);
        }
        for tick in victims {
            let victim = self.by_recency.remove(&tick).expect("tick just seen");
            let entry = self.entries.remove(&victim).expect("entry for tick");
            self.used_bytes -= entry.bytes;
            self.stats.evictions += 1;
        }
        self.used_bytes += bytes;
        self.entries.insert(
            key.clone(),
            Entry {
                image,
                bytes,
                tick: self.tick,
            },
        );
        self.by_recency.insert(self.tick, key);
        self.stats.insertions += 1;
    }

    /// Drops every cached frame of `scene` (used when a scene is evicted from
    /// the registry so stale frames cannot outlive their scene).
    pub fn invalidate_scene(&mut self, scene: &SceneId) {
        let victims: Vec<FrameKey> = self
            .entries
            .keys()
            .filter(|k| &k.scene == scene)
            .cloned()
            .collect();
        for key in victims {
            if let Some(entry) = self.entries.remove(&key) {
                self.by_recency.remove(&entry.tick);
                self.used_bytes -= entry.bytes;
            }
        }
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no frames.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::math::Vec3;

    fn cam(x: f32) -> Camera {
        Camera::look_at(
            32,
            24,
            1.0,
            Vec3::new(x, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    fn req(scene: &str, x: f32) -> RenderRequest {
        RenderRequest::full(scene, cam(x))
    }

    fn frame() -> Arc<Image> {
        Arc::new(Image::zeros(32, 24))
    }

    const FRAME_BYTES: u64 = 32 * 24 * 3 * 4;

    #[test]
    fn nearby_poses_share_a_key_and_distant_ones_do_not() {
        let a = FrameKey::for_request(&req("s", 0.0), 0.1);
        let b = FrameKey::for_request(&req("s", 0.004), 0.1);
        let c = FrameKey::for_request(&req("s", 3.0), 0.1);
        assert_eq!(a, b, "sub-step poses must collide");
        assert_ne!(a, c, "distant poses must not collide");
        let other_scene = FrameKey::for_request(&req("t", 0.0), 0.1);
        assert_ne!(a, other_scene);
    }

    #[test]
    fn hit_after_insert_and_stats_track() {
        let mut cache = FrameCache::new(10 * FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), frame());
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut cache = FrameCache::new(2 * FRAME_BYTES);
        let a = FrameKey::for_request(&req("s", 0.0), 0.1);
        let b = FrameKey::for_request(&req("s", 10.0), 0.1);
        let c = FrameKey::for_request(&req("s", 20.0), 0.1);
        cache.insert(a.clone(), frame());
        cache.insert(b.clone(), frame());
        assert!(cache.get(&a).is_some()); // refresh a; b is now LRU
        cache.insert(c.clone(), frame());
        assert!(cache.get(&b).is_none(), "b should have been evicted");
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = FrameCache::new(0);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), frame());
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn zero_capacity_rejects_even_zero_byte_frames() {
        // Regression: `bytes > capacity` is false when both are 0, so an
        // empty (0x0) render used to be admitted into a disabled cache.
        let mut cache = FrameCache::new(0);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), Arc::new(Image::zeros(0, 0)));
        assert!(cache.is_empty(), "a disabled cache must admit nothing");
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn empty_frames_are_cacheable_when_capacity_is_nonzero() {
        let mut cache = FrameCache::new(FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), Arc::new(Image::zeros(0, 0)));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn invalidate_scene_only_touches_that_scene() {
        let mut cache = FrameCache::new(10 * FRAME_BYTES);
        let a = FrameKey::for_request(&req("a", 0.0), 0.1);
        let b = FrameKey::for_request(&req("b", 0.0), 0.1);
        cache.insert(a.clone(), frame());
        cache.insert(b.clone(), frame());
        cache.invalidate_scene(&"a".to_string());
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        assert_eq!(cache.used_bytes(), FRAME_BYTES);
    }

    #[test]
    fn reinsert_updates_in_place_without_leaking_bytes() {
        let mut cache = FrameCache::new(3 * FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), frame());
        cache.insert(key.clone(), frame());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), FRAME_BYTES);
    }

    #[test]
    fn fast_path_hits_count_but_misses_do_not() {
        let mut cache = FrameCache::new(4 * FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        assert!(cache.get_fast(&key).is_none());
        assert_eq!(
            cache.stats().misses,
            0,
            "a fast-path miss must not be counted (the render path counts it)"
        );
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().misses, 1);
        cache.insert(key.clone(), frame());
        assert!(cache.get_fast(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn tinylfu_scan_does_not_flush_the_hot_working_set() {
        // Two hot entries fill the cache and keep getting hit; a scan of
        // one-hit wonders then streams through. Under TinyLFU the scan
        // candidates (frequency 1) must not displace the hot entries
        // (frequency >> 1) — the classic scan-resistance property LRU lacks.
        let mut cache = FrameCache::with_policy(2 * FRAME_BYTES, CachePolicyKind::TinyLfu);
        assert_eq!(cache.policy(), CachePolicyKind::TinyLfu);
        let hot_a = FrameKey::for_request(&req("s", 0.0), 0.1);
        let hot_b = FrameKey::for_request(&req("s", 10.0), 0.1);
        // Build popularity: misses first, then repeated hits.
        for _ in 0..6 {
            let _ = cache.get(&hot_a);
            let _ = cache.get(&hot_b);
        }
        cache.insert(hot_a.clone(), frame());
        cache.insert(hot_b.clone(), frame());
        for _ in 0..6 {
            assert!(cache.get(&hot_a).is_some());
            assert!(cache.get(&hot_b).is_some());
        }
        // The scan: 20 distinct keys, each seen once.
        for i in 0..20 {
            let cold = FrameKey::for_request(&req("s", 100.0 + 20.0 * i as f32), 0.1);
            assert!(cache.get(&cold).is_none());
            cache.insert(cold, frame());
        }
        assert!(
            cache.get(&hot_a).is_some() && cache.get(&hot_b).is_some(),
            "hot entries must survive the scan"
        );
        assert_eq!(cache.stats().evictions, 0, "nothing hot was displaced");
        assert_eq!(cache.stats().rejected, 20, "every scan key was rejected");
    }

    #[test]
    fn tinylfu_admits_a_candidate_hotter_than_the_victim() {
        let mut cache = FrameCache::with_policy(FRAME_BYTES, CachePolicyKind::TinyLfu);
        let cold = FrameKey::for_request(&req("s", 0.0), 0.1);
        let hot = FrameKey::for_request(&req("s", 10.0), 0.1);
        let _ = cache.get(&cold);
        cache.insert(cold.clone(), frame());
        // Make `hot` clearly more popular than the resident `cold`.
        for _ in 0..5 {
            let _ = cache.get(&hot);
        }
        cache.insert(hot.clone(), frame());
        assert!(
            cache.get(&hot).is_some(),
            "hotter candidate must be admitted"
        );
        assert!(cache.get(&cold).is_none(), "the colder victim is evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn tinylfu_rejection_never_evicts_residents_first() {
        // Regression: a candidate needing several slots used to evict the
        // colder victims one by one and *then* get rejected against a
        // hotter one — shrinking the cache without admitting anything. The
        // policy must be consulted against every needed victim before any
        // eviction happens.
        let mut cache = FrameCache::with_policy(2 * FRAME_BYTES, CachePolicyKind::TinyLfu);
        let cold = FrameKey::for_request(&req("s", 0.0), 0.1);
        let hot = FrameKey::for_request(&req("s", 10.0), 0.1);
        let mid = FrameKey::for_request(&req("s", 20.0), 0.1);
        for _ in 0..2 {
            let _ = cache.get(&cold);
        }
        for _ in 0..9 {
            let _ = cache.get(&hot);
        }
        for _ in 0..5 {
            let _ = cache.get(&mid);
        }
        cache.insert(cold.clone(), frame());
        cache.insert(hot.clone(), frame());
        // `mid` needs both slots (a double-size frame): it beats `cold`
        // but not `hot`, so it must be rejected with nothing evicted.
        cache.insert(mid.clone(), Arc::new(Image::zeros(64, 24)));
        assert!(cache.get(&cold).is_some(), "cold resident must survive");
        assert!(cache.get(&hot).is_some(), "hot resident must survive");
        assert!(cache.get(&mid).is_none());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().rejected, 1);
    }

    #[test]
    fn lru_policy_reports_zero_rejections() {
        let mut cache = FrameCache::new(FRAME_BYTES);
        assert_eq!(cache.policy(), CachePolicyKind::Lru);
        for i in 0..5 {
            let key = FrameKey::for_request(&req("s", 10.0 * i as f32), 0.1);
            let _ = cache.get(&key);
            cache.insert(key, frame());
        }
        assert_eq!(cache.stats().rejected, 0);
        assert_eq!(cache.stats().evictions, 4);
    }
}
