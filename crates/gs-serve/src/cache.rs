//! An LRU frame cache keyed by (scene, quantized camera pose, viewport).
//!
//! Serving workloads revisit nearly identical viewpoints constantly (map
//! tiles, orbiting clients, popular landmarks). Quantizing the camera pose
//! collapses those near-duplicate views onto one key so repeated traffic is
//! answered without touching the renderer — the serving-side analogue of the
//! amortize-repeated-work theme. The cache is bounded in *bytes* (images
//! dominate) and evicts the least recently used frame first.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use gs_core::camera::{Camera, Viewport};
use gs_core::image::Image;

use crate::request::{RenderRequest, SceneId};

/// A camera pose snapped to a fixed grid so that nearly identical views share
/// a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantizedPose {
    position: [i64; 3],
    rotation: [i64; 9],
    focal: [i64; 2],
    size: [u32; 2],
}

impl QuantizedPose {
    /// Quantizes `cam` with a translation grid of `step` world units.
    ///
    /// Rotation entries are quantized at `step / 10` (orientation errors show
    /// up on screen roughly an image-width sooner than translation errors).
    pub fn quantize(cam: &Camera, step: f32) -> Self {
        let step = step.max(1.0e-6);
        let rot_step = step / 10.0;
        let q = |v: f32, s: f32| (v / s).round() as i64;
        let r = &cam.rotation.m;
        Self {
            position: [
                q(cam.position.x, step),
                q(cam.position.y, step),
                q(cam.position.z, step),
            ],
            rotation: [
                q(r[0][0], rot_step),
                q(r[0][1], rot_step),
                q(r[0][2], rot_step),
                q(r[1][0], rot_step),
                q(r[1][1], rot_step),
                q(r[1][2], rot_step),
                q(r[2][0], rot_step),
                q(r[2][1], rot_step),
                q(r[2][2], rot_step),
            ],
            focal: [q(cam.fx, 0.01), q(cam.fy, 0.01)],
            size: [cam.width as u32, cam.height as u32],
        }
    }
}

/// Cache key: scene, quantized pose, viewport and SH degree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrameKey {
    /// Scene the frame belongs to.
    pub scene: SceneId,
    /// Quantized camera pose.
    pub pose: QuantizedPose,
    /// Viewport rectangle `(x0, y0, x1, y1)`.
    pub viewport: (u32, u32, u32, u32),
    /// SH degree used for color.
    pub sh_degree: u8,
}

impl FrameKey {
    /// Builds the cache key for a request with translation grid `pose_step`.
    pub fn for_request(req: &RenderRequest, pose_step: f32) -> Self {
        let Viewport { x0, y0, x1, y1 } = req.viewport;
        Self {
            scene: req.scene.clone(),
            pose: QuantizedPose::quantize(&req.camera, pose_step),
            viewport: (x0 as u32, y0 as u32, x1 as u32, y1 as u32),
            sh_degree: req.sh_degree as u8,
        }
    }
}

/// Hit/miss/eviction counters for the frame cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a render.
    pub misses: u64,
    /// Frames inserted.
    pub insertions: u64,
    /// Frames evicted to stay under the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    image: Arc<Image>,
    bytes: u64,
    tick: u64,
}

/// Byte-bounded LRU cache of rendered frames.
pub struct FrameCache {
    entries: HashMap<FrameKey, Entry>,
    by_recency: BTreeMap<u64, FrameKey>,
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    stats: CacheStats,
}

fn image_bytes(img: &Image) -> u64 {
    std::mem::size_of_val(img.data()) as u64
}

impl FrameCache {
    /// Creates a cache bounded to `capacity_bytes` (0 disables caching).
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            entries: HashMap::new(),
            by_recency: BTreeMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &FrameKey) -> Option<Arc<Image>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.by_recency.remove(&entry.tick);
                entry.tick = tick;
                self.by_recency.insert(tick, key.clone());
                self.stats.hits += 1;
                Some(Arc::clone(&entry.image))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a rendered frame, evicting least-recently-used frames as
    /// needed. Frames larger than the whole cache are not stored, and a
    /// zero-capacity (disabled) cache admits nothing — not even zero-byte
    /// frames, which would otherwise pass the size check.
    pub fn insert(&mut self, key: FrameKey, image: Arc<Image>) {
        if self.capacity_bytes == 0 {
            return;
        }
        let bytes = image_bytes(&image);
        if bytes > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.by_recency.remove(&old.tick);
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let Some((&oldest, _)) = self.by_recency.iter().next() else {
                break;
            };
            let victim = self.by_recency.remove(&oldest).expect("tick just seen");
            let entry = self.entries.remove(&victim).expect("entry for tick");
            self.used_bytes -= entry.bytes;
            self.stats.evictions += 1;
        }
        self.used_bytes += bytes;
        self.entries.insert(
            key.clone(),
            Entry {
                image,
                bytes,
                tick: self.tick,
            },
        );
        self.by_recency.insert(self.tick, key);
        self.stats.insertions += 1;
    }

    /// Drops every cached frame of `scene` (used when a scene is evicted from
    /// the registry so stale frames cannot outlive their scene).
    pub fn invalidate_scene(&mut self, scene: &SceneId) {
        let victims: Vec<FrameKey> = self
            .entries
            .keys()
            .filter(|k| &k.scene == scene)
            .cloned()
            .collect();
        for key in victims {
            if let Some(entry) = self.entries.remove(&key) {
                self.by_recency.remove(&entry.tick);
                self.used_bytes -= entry.bytes;
            }
        }
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no frames.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::math::Vec3;

    fn cam(x: f32) -> Camera {
        Camera::look_at(
            32,
            24,
            1.0,
            Vec3::new(x, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    fn req(scene: &str, x: f32) -> RenderRequest {
        RenderRequest::full(scene, cam(x))
    }

    fn frame() -> Arc<Image> {
        Arc::new(Image::zeros(32, 24))
    }

    const FRAME_BYTES: u64 = 32 * 24 * 3 * 4;

    #[test]
    fn nearby_poses_share_a_key_and_distant_ones_do_not() {
        let a = FrameKey::for_request(&req("s", 0.0), 0.1);
        let b = FrameKey::for_request(&req("s", 0.004), 0.1);
        let c = FrameKey::for_request(&req("s", 3.0), 0.1);
        assert_eq!(a, b, "sub-step poses must collide");
        assert_ne!(a, c, "distant poses must not collide");
        let other_scene = FrameKey::for_request(&req("t", 0.0), 0.1);
        assert_ne!(a, other_scene);
    }

    #[test]
    fn hit_after_insert_and_stats_track() {
        let mut cache = FrameCache::new(10 * FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), frame());
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut cache = FrameCache::new(2 * FRAME_BYTES);
        let a = FrameKey::for_request(&req("s", 0.0), 0.1);
        let b = FrameKey::for_request(&req("s", 10.0), 0.1);
        let c = FrameKey::for_request(&req("s", 20.0), 0.1);
        cache.insert(a.clone(), frame());
        cache.insert(b.clone(), frame());
        assert!(cache.get(&a).is_some()); // refresh a; b is now LRU
        cache.insert(c.clone(), frame());
        assert!(cache.get(&b).is_none(), "b should have been evicted");
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = FrameCache::new(0);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), frame());
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn zero_capacity_rejects_even_zero_byte_frames() {
        // Regression: `bytes > capacity` is false when both are 0, so an
        // empty (0x0) render used to be admitted into a disabled cache.
        let mut cache = FrameCache::new(0);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), Arc::new(Image::zeros(0, 0)));
        assert!(cache.is_empty(), "a disabled cache must admit nothing");
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn empty_frames_are_cacheable_when_capacity_is_nonzero() {
        let mut cache = FrameCache::new(FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), Arc::new(Image::zeros(0, 0)));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn invalidate_scene_only_touches_that_scene() {
        let mut cache = FrameCache::new(10 * FRAME_BYTES);
        let a = FrameKey::for_request(&req("a", 0.0), 0.1);
        let b = FrameKey::for_request(&req("b", 0.0), 0.1);
        cache.insert(a.clone(), frame());
        cache.insert(b.clone(), frame());
        cache.invalidate_scene(&"a".to_string());
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        assert_eq!(cache.used_bytes(), FRAME_BYTES);
    }

    #[test]
    fn reinsert_updates_in_place_without_leaking_bytes() {
        let mut cache = FrameCache::new(3 * FRAME_BYTES);
        let key = FrameKey::for_request(&req("s", 0.0), 0.1);
        cache.insert(key.clone(), frame());
        cache.insert(key.clone(), frame());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), FRAME_BYTES);
    }
}
