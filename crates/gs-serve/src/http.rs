//! A std-only HTTP/1.1 front-end for [`RenderServer`] — and the reusable
//! listener machinery other services (the cluster coordinator) build their
//! own front-ends on.
//!
//! [`HttpServer::bind`] starts a TCP listener and serves a minimal HTTP/1.1
//! subset — `GET`/`POST` with `Content-Length` bodies and keep-alive — so
//! external load generators (curl, wrk-style closed loops) can drive the
//! rendering service over a real wire protocol:
//!
//! * `POST /render` — body in the [`crate::wire`] format; answers with the
//!   rendered frame encoded per the request's `format` (raw little-endian
//!   `f32` or binary PPM) plus `X-Image-Width`/`X-Image-Height`/
//!   `X-Cache-Hit`/`X-Batch-Size`/`X-Shards`/`X-Worker`/`X-Latency-Us`
//!   headers. While the request is queued the handler watches the client
//!   socket: a disconnect triggers the request's [`crate::CancelToken`], so
//!   workers sweep the dead job out of the queue (counted as `cancelled`)
//!   instead of rendering a frame nobody will read.
//! * `POST /render_layer` — a [`crate::wire::encode_layer_request`] body;
//!   renders one shard (or a whole scene) as a partial-frame
//!   [`gs_render::rasterize::FrameLayer`], optionally continuing an attached
//!   incoming layer's blend state, and answers with the
//!   [`crate::wire::encode_layer`] bytes. The remote half of cross-node
//!   sharded rendering.
//! * `POST /scenes/<id>` — a text [`SceneSpec`] (synthetic build) or a
//!   binary [`crate::wire::encode_scene`] upload (exact parameters; how a
//!   cluster coordinator places scenes and shards on a replica).
//! * `GET /stats` — the [`crate::stats::ServeStats`] text report.
//! * `GET /stats/wire` — the machine-readable [`crate::wire::StatsReport`]
//!   a cluster coordinator aggregates (counters, latency samples, budget).
//! * `GET /metrics` — Prometheus text exposition of the metrics registry
//!   (request counters, latency histograms, kernel-phase rooflines, trace
//!   gauges).
//! * `GET /trace` — the finished-span ring as Chrome trace-event JSON
//!   (load it in `chrome://tracing` / Perfetto). `GET /trace?id=<hex>`
//!   exports just that trace, `404` when it has aged out of the ring.
//! * `GET /slo` — SLO burn-rate status as JSON (see [`gs_obs::SloEngine`]).
//! * `GET /heat` — windowed per-scene / per-client top-K telemetry as JSON.
//! * `GET /events` — the flight recorder's recent wide events as JSON.
//! * `GET /incidents` — captured anomaly incidents (trigger, event tail,
//!   metrics snapshot, slow traces) as JSON.
//! * `GET /dashboard` — the self-refreshing HTML health dashboard.
//! * `GET /scenes` — the loaded scene ids, one per line.
//! * `GET /healthz` — liveness probe.
//!
//! Request tracing: `POST /render` joins the trace named by an
//! `X-Trace-Id` header (generating none otherwise unless ingress sampling
//! is on), parents its spans under `X-Trace-Parent` when given, and echoes
//! the id back. A request carrying a *parent* is treated as one hop of a
//! remote trace: its spans are returned in the response's `X-Trace-Spans`
//! header for the caller to graft, instead of landing in the local ring.
//! `POST /render_layer` does the same via the envelope's trace block (see
//! [`crate::wire::encode_layer_request_traced`]) or the same headers.
//!
//! Errors map onto status codes: malformed requests and bodies get `400`,
//! unknown paths and unknown scenes `404`, wrong methods `405`, oversized
//! heads/bodies `413`, unsupported transfer encodings `501`, and a
//! connection-limit or shutting-down service `503`.
//!
//! Concurrency model: one handler thread per connection (bounded by
//! [`HttpConfig::max_connections`]). Each handler blocks on the bounded
//! worker queue while it is full — the queue's backpressure therefore
//! propagates all the way to the TCP client, exactly like the in-process
//! closed-loop clients. Custom services plug their routing into the same
//! listener via [`HttpHandler`] and [`HttpServer::bind_with`].

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gs_obs::{render_dashboard, DashboardData, RequestTrace, Span, TraceContext, TraceId};
use gs_trace::{Outcome, TraceRecorder};

use crate::obs::ServeObs;
use crate::request::{CancelToken, ServeError};
use crate::server::RenderServer;
use crate::stats::ConnectionStats;
use crate::wire::{self, SceneSpec, StatsReport, WireFormat, WireRequest};

/// Configuration of an [`HttpServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Maximum concurrent connections; excess connections get `503`.
    pub max_connections: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// How long a keep-alive connection may sit idle (or a request may
    /// dribble in) before it is closed. Keeps slow or abandoned sockets from
    /// pinning handler threads and `max_connections` slots forever.
    pub idle_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_body_bytes: 64 << 10,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Maximum size of a request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 << 10;
/// How often blocked reads and the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Per-write-call timeout; bounds how long a stalled (never-reading) client
/// can pin a handler thread mid-response.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Accepted / rejected / active connection counters, shared between the
/// accept loop, the handlers (so `GET /stats` can report them) and
/// [`HttpServer::connection_stats`].
#[derive(Default)]
struct ConnCounters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    active: AtomicUsize,
}

impl ConnCounters {
    fn snapshot(&self) -> ConnectionStats {
        ConnectionStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            active: self.active.load(Ordering::SeqCst) as u64,
        }
    }
}

/// The HTTP front-end: an accept loop plus one handler thread per
/// connection, all serving one shared [`RenderServer`].
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<ConnCounters>,
}

impl HttpServer {
    /// Binds the listener and starts accepting connections, serving the
    /// standard [`RenderServer`] routes.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: HttpConfig, server: Arc<RenderServer>) -> io::Result<Self> {
        Self::bind_with(
            config,
            Arc::new(ServeHandler {
                server,
                recorder: None,
            }),
        )
    }

    /// Like [`HttpServer::bind`], but with workload capture: every
    /// `POST /render` the front-end answers is recorded into `recorder`
    /// (scene, pose, deadline, arrival time, client id, outcome, latency).
    /// The caller keeps its own [`TraceRecorder`] handle and snapshots the
    /// [`gs_trace::Trace`] whenever it wants.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_recorded(
        config: HttpConfig,
        server: Arc<RenderServer>,
        recorder: Arc<TraceRecorder>,
    ) -> io::Result<Self> {
        Self::bind_with(
            config,
            Arc::new(ServeHandler {
                server,
                recorder: Some(recorder),
            }),
        )
    }

    /// Binds the listener with a custom routing layer — how services other
    /// than a plain `RenderServer` (e.g. a cluster coordinator) reuse the
    /// whole connection machinery: accept loop, per-connection handler
    /// threads, keep-alive framing, connection limits and idle timeouts.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(config: HttpConfig, handler: Arc<dyn HttpHandler>) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept polled against the stop flag: shutdown never
        // hangs waiting for one more connection to arrive.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(ConnCounters::default());

        let accept = {
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("gs-serve-http-accept".to_string())
                .spawn(move || {
                    accept_loop(&listener, &config, &handler, &stop, &handlers, &counters);
                })
                .expect("spawn http accept thread")
        };

        Ok(Self {
            local_addr,
            stop,
            accept: Some(accept),
            handlers,
            counters,
        })
    }

    /// The bound address (with the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connection-level counters (also reported inside `GET /stats`).
    pub fn connection_stats(&self) -> ConnectionStats {
        self.counters.snapshot()
    }

    /// Stops accepting, waits for every in-flight connection handler to
    /// finish, and returns.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &HttpConfig,
    handler: &Arc<dyn HttpHandler>,
    stop: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: &Arc<ConnCounters>,
) {
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
            Err(_) => {
                // Persistent failures (e.g. EMFILE at the fd limit) would
                // otherwise spin; back off so in-flight handlers can finish
                // and free descriptors.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        // Reap finished handler threads so the handle list stays bounded by
        // the number of *live* connections.
        handlers.lock().unwrap().retain(|h| !h.is_finished());
        if counters.active.load(Ordering::SeqCst) >= config.max_connections {
            counters.rejected.fetch_add(1, Ordering::SeqCst);
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                &HttpResponse::text(503, "service at its connection limit\n"),
                false,
            );
            drain_before_close(&mut stream);
            continue;
        }
        counters.active.fetch_add(1, Ordering::SeqCst);
        counters.accepted.fetch_add(1, Ordering::SeqCst);
        let handler = Arc::clone(handler);
        let stop = Arc::clone(stop);
        let guard = ActiveGuard(Arc::clone(counters));
        let conn_counters = Arc::clone(counters);
        let max_body = config.max_body_bytes;
        let idle_timeout = config.idle_timeout;
        let spawned = std::thread::Builder::new()
            .name("gs-serve-http-conn".to_string())
            .spawn(move || {
                // Moved into the thread so the slot is released even if the
                // handler panics.
                let _guard = guard;
                handle_connection(
                    handler.as_ref(),
                    &conn_counters,
                    stream,
                    max_body,
                    idle_timeout,
                    &stop,
                );
            });
        match spawned {
            Ok(handle) => handlers.lock().unwrap().push(handle),
            Err(_) => {
                // Out of threads: shed the connection like the limit path
                // does instead of panicking the accept loop. The stream and
                // the active-count guard were moved into the failed spawn
                // closure, which drops them: the socket closes and the slot
                // is released. It counts as shed, not served.
                counters.accepted.fetch_sub(1, Ordering::SeqCst);
                counters.rejected.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Decrements the active-connection count when dropped, so the slot is
/// released on every handler exit path — including a panic.
struct ActiveGuard(Arc<ConnCounters>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One parsed HTTP request, as handed to an [`HttpHandler`].
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (`/render`, ...).
    pub path: String,
    /// Protocol version string (`HTTP/1.1`).
    pub version: String,
    /// Header map, names lowercased.
    pub headers: HashMap<String, String>,
    /// Request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    /// `Connection` header overrides either.
    fn keep_alive(&self) -> bool {
        match self
            .headers
            .get("connection")
            .map(|v| v.to_ascii_lowercase())
        {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version != "HTTP/1.0",
        }
    }
}

/// The routing layer plugged into the shared listener machinery (see
/// [`HttpServer::bind_with`]). Called on the connection's handler thread;
/// blocking in `handle` blocks only this connection.
pub trait HttpHandler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, request: &HttpRequest, conn: &mut Conn<'_>) -> HttpResponse;
}

/// The handler's view of the connection it is serving: the shared
/// connection counters plus a live probe of the client socket, so
/// long-waiting routes (a queued render) can notice the client leaving.
pub struct Conn<'a> {
    stream: &'a mut TcpStream,
    /// Bytes already read off the socket but not yet consumed (pipelined
    /// next requests); disconnect probes must preserve them.
    buf: &'a mut Vec<u8>,
    /// Cap on `buf` growth during disconnect probes (one head plus one
    /// body); a client streaming more than a pipelined request's worth of
    /// bytes mid-response is abusive and treated as disconnected.
    max_buffered: usize,
    counters: &'a ConnCounters,
    stop: &'a AtomicBool,
}

impl Conn<'_> {
    /// Connection-level counters (what `GET /stats` reports).
    pub fn connections(&self) -> ConnectionStats {
        self.counters.snapshot()
    }

    /// Whether the front-end is shutting down.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The client's socket address, if the OS can still name it — the
    /// fallback client/session id for workload capture when a request
    /// carries neither a `client` body key nor an `X-Client-Id` header.
    pub fn peer_addr(&self) -> Option<String> {
        self.stream.peer_addr().ok().map(|a| a.to_string())
    }

    /// Probes the client socket without consuming request data: returns
    /// `true` once the peer has closed (EOF) or errored. Bytes of a
    /// pipelined next request that arrive during the probe are buffered for
    /// the connection loop. A half-closed client (write side shut down) is
    /// reported as disconnected — it could still read a response, but a
    /// client that has hung up its request stream is treated as gone.
    ///
    /// Blocks at most one short poll interval (the stream's read timeout).
    pub fn client_disconnected(&mut self) -> bool {
        let mut chunk = [0u8; 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => true,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                // A client flooding bytes while its render is queued would
                // otherwise grow the buffer without bound (head/body limits
                // are only enforced when the next request is parsed).
                self.buf.len() > self.max_buffered
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                false
            }
            Err(_) => true,
        }
    }
}

enum ReadOutcome {
    Request(HttpRequest),
    /// Clean EOF between requests.
    Closed,
    /// Framing or syntax error; respond with the status then close.
    Bad(HttpResponse),
}

fn handle_connection(
    handler: &dyn HttpHandler,
    counters: &ConnCounters,
    mut stream: TcpStream,
    max_body: usize,
    idle_timeout: Duration,
    stop: &AtomicBool,
) {
    // On some platforms an accepted socket inherits the listener's
    // non-blocking flag; reads must block (with a timeout) or the poll loop
    // below would spin.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    // Reads time out so an idle keep-alive connection re-checks the stop
    // flag instead of pinning its handler thread forever.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // Writes time out too: a client that requests a large frame and never
    // drains its socket would otherwise block `write_all` forever and make
    // `HttpServer::shutdown` (which joins this thread) hang with it. A
    // draining-but-slow client is safe — the timeout applies per write call,
    // not to the whole response.
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    // Bytes already read off the socket but not yet consumed (a pipelined
    // next request, or the partial head of one still arriving).
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_request(&mut stream, &mut buf, max_body, idle_timeout, stop) {
            ReadOutcome::Request(req) => {
                let keep_alive = req.keep_alive();
                let response = {
                    let mut conn = Conn {
                        stream: &mut stream,
                        buf: &mut buf,
                        max_buffered: MAX_HEAD_BYTES + max_body,
                        counters,
                        stop,
                    };
                    handler.handle(&req, &mut conn)
                };
                if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            ReadOutcome::Closed => break,
            ReadOutcome::Bad(response) => {
                // Framing is lost after a malformed head; answer and close.
                let _ = write_response(&mut stream, &response, false);
                drain_before_close(&mut stream);
                break;
            }
        }
    }
}

/// Briefly drains unread request bytes (after a write shutdown) before the
/// socket closes. Closing with unread data in the receive queue sends a TCP
/// RST, which can destroy an error response the client has not read yet —
/// the client would see `ECONNRESET` instead of the 4xx/5xx we just wrote.
fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}

/// Reads one full request (head + `Content-Length` body) from the stream,
/// polling `stop` on read timeouts. A connection that stays idle (or
/// dribbles a request in) past `idle_timeout` is closed so abandoned or
/// slow-loris sockets cannot pin handler threads and connection slots.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    max_body: usize,
    idle_timeout: Duration,
    stop: &AtomicBool,
) -> ReadOutcome {
    let deadline = Instant::now() + idle_timeout;
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Bad(HttpResponse::text(413, "request head too large\n"));
        }
        match read_more(stream, buf, &mut chunk, deadline, stop) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Bad(HttpResponse::text(400, "truncated request\n"))
                };
            }
            Ok(_) => {}
            Err(_) => return ReadOutcome::Closed,
        }
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h.to_string(),
        Err(_) => return ReadOutcome::Bad(HttpResponse::text(400, "request head is not UTF-8\n")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if v.starts_with("HTTP/") => {
            (m.to_string(), p.to_string(), v.to_string())
        }
        _ => {
            return ReadOutcome::Bad(HttpResponse::text(
                400,
                "malformed request line (expected: METHOD PATH HTTP/1.x)\n",
            ))
        }
    };
    let mut headers = HashMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Bad(HttpResponse::text(400, "malformed header line\n"));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    if headers.contains_key("transfer-encoding") {
        // Only Content-Length framing is implemented; silently treating a
        // chunked body as empty would desync the connection (the chunk data
        // would parse as the next request's head).
        return ReadOutcome::Bad(HttpResponse::text(
            501,
            "transfer encodings are not supported; use Content-Length\n",
        ));
    }
    let body_len = match headers.get("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Bad(HttpResponse::text(400, "bad Content-Length\n")),
        },
        None => 0,
    };
    if body_len > max_body {
        return ReadOutcome::Bad(HttpResponse::text(413, "request body too large\n"));
    }
    // curl sends `Expect: 100-continue` for larger bodies and stalls ~1s
    // waiting for the interim response before transmitting the body. Sent
    // only once the request is going to be read (rejections above answer
    // with their final status instead, per RFC 9110).
    if body_len > 0
        && headers
            .get("expect")
            .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"))
        && stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
    {
        return ReadOutcome::Closed;
    }
    let total = head_end + 4 + body_len;
    while buf.len() < total {
        match read_more(stream, buf, &mut chunk, deadline, stop) {
            Ok(0) => return ReadOutcome::Bad(HttpResponse::text(400, "truncated request body\n")),
            Ok(_) => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    let body = buf[head_end + 4..total].to_vec();
    buf.drain(..total);
    ReadOutcome::Request(HttpRequest {
        method,
        path,
        version,
        headers,
        body,
    })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one chunk, retrying through timeouts until `stop` is set or
/// `deadline` passes (then reports the connection as closed via `Err`).
fn read_more(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    chunk: &mut [u8],
    deadline: Instant,
    stop: &AtomicBool,
) -> Result<usize, ()> {
    loop {
        match stream.read(chunk) {
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(n);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    return Err(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
}

/// A response ready to serialize.
pub struct HttpResponse {
    /// Status code (200, 400, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (`X-Image-Width`, ...).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(
    stream: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: two small writes would trip the
    // Nagle/delayed-ACK interaction and stall small responses by ~40ms.
    let mut message = head.into_bytes();
    message.extend_from_slice(&response.body);
    stream.write_all(&message)?;
    stream.flush()
}

/// The status code a [`ServeError`] maps onto.
pub fn status_for_error(err: &ServeError) -> u16 {
    match err {
        ServeError::UnknownScene(_) | ServeError::UnknownShard(_, _) => 404,
        ServeError::SceneExists(_) => 409,
        ServeError::ShuttingDown
        | ServeError::Admission(_)
        | ServeError::DeadlineExceeded
        | ServeError::Cancelled => 503,
    }
}

/// Splits a request target into its path and optional query string.
pub fn split_path_query(target: &str) -> (&str, Option<&str>) {
    match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    }
}

/// Extracts the (undecoded) value of `key` from a query string.
pub fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// A `200` JSON response.
fn json_response(body: String) -> HttpResponse {
    HttpResponse {
        status: 200,
        content_type: "application/json",
        headers: Vec::new(),
        body: body.into_bytes(),
    }
}

/// `GET /dashboard` on the single-node tier: snapshot the interpretation
/// layer plus the stats block into one self-contained HTML page.
fn dashboard_route(server: &RenderServer, conn: &mut Conn<'_>) -> HttpResponse {
    let obs = server.obs();
    let mut stats = server.stats();
    stats.connections = conn.connections();
    let data = DashboardData {
        title: "gs-serve".to_string(),
        node: obs.node().to_string(),
        uptime_s: obs.uptime_s(),
        refresh_s: 2,
        slos: obs.slo().report(),
        heat: obs.heat_scenes().snapshot().0,
        clients: obs.heat_clients().snapshot().0,
        replicas: Vec::new(),
        replication: Vec::new(),
        incidents: obs.recorder().incidents(),
        stats_text: format!("{stats}"),
    };
    HttpResponse {
        status: 200,
        content_type: "text/html; charset=utf-8",
        headers: Vec::new(),
        body: render_dashboard(&data).into_bytes(),
    }
}

/// The standard [`RenderServer`] routing layer (what [`HttpServer::bind`]
/// installs).
struct ServeHandler {
    server: Arc<RenderServer>,
    /// Workload capture (see [`HttpServer::bind_recorded`]); `None` = off.
    recorder: Option<Arc<TraceRecorder>>,
}

impl HttpHandler for ServeHandler {
    fn handle(&self, req: &HttpRequest, conn: &mut Conn<'_>) -> HttpResponse {
        let server = self.server.as_ref();
        let (path, query) = split_path_query(req.path.as_str());
        match (req.method.as_str(), path) {
            ("GET", "/stats") => {
                let mut stats = server.stats();
                stats.connections = conn.connections();
                HttpResponse::text(200, format!("{stats}\n"))
            }
            ("GET", "/stats/wire") => {
                let stats = server.stats();
                let report = StatsReport::new(
                    &stats,
                    server.latency_samples(wire::STATS_SAMPLES),
                    server.budget_bytes(),
                    server.used_bytes(),
                );
                HttpResponse::text(200, report.to_body())
            }
            ("GET", "/scenes") => {
                // One line per scene with its shard layout and residency,
                // e.g. `city shards=4 resident=2/4 gaussians=80000
                // bytes=18880000`.
                let mut body = String::new();
                for layout in server.scene_layouts() {
                    body.push_str(&format!(
                        "{} shards={} resident={}/{} gaussians={} bytes={}\n",
                        layout.id,
                        layout.shards,
                        layout.resident_shards,
                        layout.shards,
                        layout.gaussians,
                        layout.bytes,
                    ));
                }
                HttpResponse::text(200, body)
            }
            ("GET", "/healthz") => HttpResponse::text(200, "ok\n"),
            ("GET", "/metrics") => HttpResponse::text(200, server.metrics_text()),
            ("GET", "/trace") => match query_param(query, "id") {
                Some(id) => match server.obs().chrome_json_for(id) {
                    Some(json) => json_response(json),
                    None => HttpResponse::text(
                        404,
                        format!("no trace {id:?} in the ring (bad id, or it aged out)\n"),
                    ),
                },
                None => json_response(server.obs().chrome_json()),
            },
            ("GET", "/slo") => json_response(server.obs().slo_json()),
            ("GET", "/heat") => json_response(server.obs().heat_json()),
            ("GET", "/events") => json_response(server.obs().events_json()),
            ("GET", "/incidents") => json_response(server.obs().incidents_json()),
            ("GET", "/dashboard") => dashboard_route(server, conn),
            ("POST", "/render") => render_route(server, self.recorder.as_deref(), req, conn),
            ("POST", "/render_layer") => render_layer_route(server, req),
            ("POST", path) if path.strip_prefix("/scenes/").is_some() => {
                let id = path.strip_prefix("/scenes/").unwrap_or_default();
                load_scene_route(server, id, &req.body)
            }
            ("DELETE", path) if path.strip_prefix("/scenes/").is_some() => {
                let id = path
                    .strip_prefix("/scenes/")
                    .unwrap_or_default()
                    .to_string();
                if server.unload_scene(&id) {
                    HttpResponse::text(200, format!("unloaded scene {id}\n"))
                } else {
                    HttpResponse::text(404, format!("scene {id:?} is not loaded\n"))
                }
            }
            (
                _,
                "/stats" | "/stats/wire" | "/scenes" | "/healthz" | "/metrics" | "/trace" | "/slo"
                | "/heat" | "/events" | "/incidents" | "/dashboard" | "/render" | "/render_layer",
            ) => HttpResponse::text(405, "method not allowed on this path\n"),
            (_, path) if path.starts_with("/scenes/") => {
                HttpResponse::text(405, "method not allowed on this path\n")
            }
            _ => HttpResponse::text(404, "unknown path\n"),
        }
    }
}

/// `POST /scenes/<id>`: register a scene. Two body forms are accepted:
///
/// * A binary [`wire::encode_scene`] upload — exact trained parameters, the
///   form a cluster coordinator uses to place scenes and shards. Loads (or
///   **replaces**) the id unsharded; the uploader owns the shard layout.
/// * A text [`SceneSpec`] — a synthetic scene built server-side, sharded
///   when it exceeds the size threshold (or as the spec's explicit `shards`
///   count). Refuses to replace an existing id.
///
/// `201` on success, `400` for a malformed body, `409` when a spec's id is
/// taken, `413` when the scene is too large to build or to admit.
fn load_scene_route(server: &RenderServer, id: &str, body: &[u8]) -> HttpResponse {
    if !wire::valid_scene_id(id) {
        return HttpResponse::text(400, "bad request: invalid scene id\n");
    }
    if wire::is_scene_upload(body) {
        let (params, background) = match wire::decode_scene(body) {
            Ok(decoded) => decoded,
            Err(e) => return HttpResponse::text(400, format!("{e}\n")),
        };
        let gaussians = params.len();
        return match server.load_scene(id, Arc::new(params), background) {
            Ok(()) => {
                HttpResponse::text(201, format!("loaded scene {id}: {gaussians} gaussians\n"))
            }
            Err(e @ ServeError::Admission(_)) => HttpResponse::text(413, format!("{e}\n")),
            Err(e) => HttpResponse::text(status_for_error(&e), format!("{e}\n")),
        };
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return HttpResponse::text(400, "bad request: body is not UTF-8\n"),
    };
    let spec = match SceneSpec::parse(text) {
        Ok(s) => s,
        Err(e) => return HttpResponse::text(400, format!("{e}\n")),
    };
    if spec.gaussians > wire::MAX_SPEC_GAUSSIANS {
        return HttpResponse::text(
            413,
            format!(
                "scene spec asks for {} gaussians, limit is {}\n",
                spec.gaussians,
                wire::MAX_SPEC_GAUSSIANS
            ),
        );
    }
    // Advisory duplicate check before the expensive scene build; the
    // authoritative check runs under the registry lock in load_scene_auto,
    // so a racing POST for the same id still gets exactly one 201.
    if server.contains_scene(&id.to_string()) {
        let e = ServeError::SceneExists(id.to_string());
        return HttpResponse::text(409, format!("{e}\n"));
    }
    let params = Arc::new(spec.build());
    let result = server.load_scene_auto(id, Arc::clone(&params), spec.background, spec.shards);
    match result {
        Ok(shards) => HttpResponse::text(
            201,
            format!(
                "loaded scene {id}: {} gaussians in {shards} shard(s)\n",
                params.len()
            ),
        ),
        Err(e @ ServeError::SceneExists(_)) => HttpResponse::text(409, format!("{e}\n")),
        // An admission rejection means the scene (or a shard of it) exceeds
        // the memory budget: the payload, not the service, is the problem.
        Err(e @ ServeError::Admission(_)) => HttpResponse::text(413, format!("{e}\n")),
        Err(e) => HttpResponse::text(status_for_error(&e), format!("{e}\n")),
    }
}

/// The [`Outcome`] a [`ServeError`] records as.
pub fn outcome_for_error(err: &ServeError) -> Outcome {
    match err {
        ServeError::DeadlineExceeded => Outcome::Expired,
        ServeError::Cancelled => Outcome::Cancelled,
        ServeError::ShuttingDown | ServeError::Admission(_) => Outcome::Rejected,
        ServeError::UnknownScene(_)
        | ServeError::UnknownShard(_, _)
        | ServeError::SceneExists(_) => Outcome::Error,
    }
}

/// Resolves the client/session id workload capture attributes a request
/// to: the body's `client` key wins, then the `X-Client-Id` header, then
/// the peer address.
fn resolve_client(wire_req: &WireRequest, req: &HttpRequest, conn: &mut Conn<'_>) -> String {
    wire_req
        .client
        .clone()
        .or_else(|| req.headers.get("x-client-id").cloned())
        .or_else(|| conn.peer_addr())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The route's view of a request's trace: the trace handle, the span id
/// server-side spans parent under, the route-owned root span (for traces
/// this node is responsible for finishing), and whether the trace belongs
/// to a remote caller (spans go back in `X-Trace-Spans`, not the ring).
///
/// Public so front-ends layered on the same listener machinery (the
/// cluster coordinator's) share the exact ingress semantics.
pub struct RouteTrace {
    /// The shared span collector for this request.
    pub trace: RequestTrace,
    /// Span id route-side work parents under (the root span, or the remote
    /// caller's hop span).
    pub parent: u32,
    /// The route-owned root span; `None` for remote hops.
    pub root: Option<Span>,
    /// Whether a remote caller owns the trace (spans are returned via
    /// `X-Trace-Spans` instead of landing in the local ring).
    pub remote: bool,
}

/// Resolves the trace a `POST /render` participates in: the `X-Trace-Id` /
/// `X-Trace-Parent` headers name an existing trace (a parent marks it as a
/// remote hop), and with no header ingress sampling may mint a fresh one.
pub fn route_trace(obs: &ServeObs, req: &HttpRequest) -> Option<RouteTrace> {
    let header_id = req
        .headers
        .get("x-trace-id")
        .and_then(|v| TraceId::parse(v));
    let header_parent = req
        .headers
        .get("x-trace-parent")
        .and_then(|v| v.parse::<u32>().ok());
    let trace = match header_id {
        // A hop on someone else's trace allocates from the remote id range
        // so the caller's graft can tell our internal parent links from
        // links back to its own span.
        Some(id) if header_parent.is_some() => RequestTrace::remote(id, obs.node()),
        Some(id) => RequestTrace::new(id, obs.node()),
        None if obs.should_trace() => obs.mint(),
        None => return None,
    };
    if let Some(parent) = header_parent {
        return Some(RouteTrace {
            trace,
            parent,
            root: None,
            remote: true,
        });
    }
    let root = trace.start(0, "request");
    let parent = root.id();
    Some(RouteTrace {
        trace,
        parent,
        root: Some(root),
        remote: false,
    })
}

impl RouteTrace {
    /// Ends the trace's route-owned root span and settles ownership: a
    /// remote hop returns its spans to the caller via `X-Trace-Spans`, a
    /// locally owned trace lands in the span ring. Either way the response
    /// echoes `X-Trace-Id`.
    pub fn finish(self, obs: &ServeObs) -> Vec<(&'static str, String)> {
        let mut headers = vec![("X-Trace-Id", self.trace.id().to_string())];
        if let Some(root) = self.root {
            root.finish();
        }
        if self.remote {
            headers.push(("X-Trace-Spans", gs_obs::encode_spans(&self.trace.spans())));
        } else {
            obs.finish(&self.trace);
        }
        headers
    }
}

fn render_route(
    server: &RenderServer,
    recorder: Option<&TraceRecorder>,
    req: &HttpRequest,
    conn: &mut Conn<'_>,
) -> HttpResponse {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return HttpResponse::text(400, "bad request: body is not UTF-8\n"),
    };
    let wire_req = match WireRequest::parse(text) {
        Ok(r) => r,
        Err(e) => return HttpResponse::text(400, format!("{e}\n")),
    };
    let route_trace = route_trace(server.obs(), req);
    // Capture support: the arrival timestamp is stamped before the request
    // queues, the event is recorded (with its outcome and latency) on every
    // answer path below.
    let arrival_us = recorder.map_or(0, TraceRecorder::now_us);
    let started = Instant::now();
    // Resolved unconditionally (not just under capture): the per-client
    // heat table keys on it for every request that enters the server.
    let client = resolve_client(&wire_req, req, conn);
    let record = |outcome: Outcome| {
        if let Some(recorder) = recorder {
            recorder.record(wire_req.to_trace_event(
                &client,
                arrival_us,
                outcome,
                started.elapsed().as_micros() as u64,
            ));
        }
    };
    // Submit with a cancel token, then wait while watching the client
    // socket: if the client disconnects while the job is queued, the token
    // tells the workers to sweep it (counted as `cancelled`) instead of
    // rendering a frame nobody will read. The handler returns immediately —
    // the doomed write then closes the connection and frees its slot.
    let cancel = CancelToken::new();
    let mut render_req = wire_req.to_render_request().with_cancel(cancel.clone());
    if render_req.client.is_none() {
        render_req.client = Some(client.clone());
    }
    if let Some(rt) = &route_trace {
        render_req = render_req.with_trace(TraceContext {
            trace: rt.trace.clone(),
            parent: rt.parent,
        });
    }
    // Every return below settles the trace (closing the root span, pushing
    // the tree to the ring or into `X-Trace-Spans`) so no path leaks an
    // unfinished trace.
    let finish_trace =
        |rt: Option<RouteTrace>| rt.map_or_else(Vec::new, |rt| rt.finish(server.obs()));
    let mut ticket = match server.submit(render_req) {
        Ok(ticket) => ticket,
        Err(e) => {
            record(outcome_for_error(&e));
            let mut response = HttpResponse::text(status_for_error(&e), format!("{e}\n"));
            response.headers = finish_trace(route_trace);
            return response;
        }
    };
    let result = loop {
        match ticket.wait_timeout(POLL_INTERVAL) {
            Ok(result) => break result,
            Err(pending) => {
                ticket = pending;
                if conn.client_disconnected() || conn.stopping() {
                    cancel.cancel();
                    record(Outcome::Cancelled);
                    let mut response = HttpResponse::text(503, "client disconnected\n");
                    response.headers = finish_trace(route_trace);
                    return response;
                }
            }
        }
    };
    let frame = match result {
        Ok(frame) => frame,
        Err(e) => {
            record(outcome_for_error(&e));
            let mut response = HttpResponse::text(status_for_error(&e), format!("{e}\n"));
            response.headers = finish_trace(route_trace);
            return response;
        }
    };
    record(if frame.cache_hit {
        Outcome::CacheHit
    } else {
        Outcome::Completed
    });
    let body = match wire_req.format {
        WireFormat::RawF32 => wire::encode_raw_f32(&frame.image),
        WireFormat::Ppm => wire::encode_ppm(&frame.image),
    };
    let mut headers = vec![
        ("X-Image-Width", frame.image.width().to_string()),
        ("X-Image-Height", frame.image.height().to_string()),
        ("X-Cache-Hit", u8::from(frame.cache_hit).to_string()),
        ("X-Batch-Size", frame.batch_size.to_string()),
        ("X-Shards", frame.shards.to_string()),
        ("X-Worker", frame.worker.to_string()),
        ("X-Latency-Us", frame.latency.as_micros().to_string()),
    ];
    headers.extend(finish_trace(route_trace));
    HttpResponse {
        status: 200,
        content_type: wire_req.format.content_type(),
        headers,
        body,
    }
}

/// `POST /render_layer`: render one shard (or a whole scene) as a
/// partial-frame layer, continuing an attached incoming layer if present.
/// Body and response use the binary layer encodings of [`crate::wire`].
///
/// A layer render is always sub-work of some caller's request, so its trace
/// context — the envelope's trace block, or the `X-Trace-Id` /
/// `X-Trace-Parent` headers — is treated as a remote hop: the spans this
/// node records come back in the response's `X-Trace-Spans` header for the
/// caller to graft, and never land in the local ring.
fn render_layer_route(server: &RenderServer, req: &HttpRequest) -> HttpResponse {
    let (wire_req, block_trace, into) = match wire::decode_layer_request_traced(&req.body) {
        Ok(decoded) => decoded,
        Err(e) => return HttpResponse::text(400, format!("{e}\n")),
    };
    let trace = block_trace
        .or_else(|| {
            let id = req
                .headers
                .get("x-trace-id")
                .and_then(|v| TraceId::parse(v))?;
            let parent = req
                .headers
                .get("x-trace-parent")
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(0);
            Some((id, parent))
        })
        .map(|(id, parent)| (RequestTrace::remote(id, server.obs().node()), parent));
    let shard = wire_req.shard;
    let mut request = wire_req.to_render_request();
    if let Some((trace, parent)) = &trace {
        request = request.with_trace(TraceContext {
            trace: trace.clone(),
            parent: *parent,
        });
    }
    match server.render_layer_blocking(&request, shard, into) {
        Ok(layer) => {
            let mut headers = vec![
                ("X-Image-Width", layer.width().to_string()),
                ("X-Image-Height", layer.height().to_string()),
            ];
            if let Some((trace, _)) = &trace {
                headers.push(("X-Trace-Id", trace.id().to_string()));
                headers.push(("X-Trace-Spans", gs_obs::encode_spans(&trace.spans())));
            }
            HttpResponse {
                status: 200,
                content_type: "application/octet-stream",
                headers,
                body: wire::encode_layer(&layer),
            }
        }
        Err(e) => HttpResponse::text(status_for_error(&e), format!("{e}\n")),
    }
}

/// A minimal blocking HTTP/1.1 client, just enough to drive [`HttpServer`]
/// from load generators, benches and tests over a keep-alive connection.
pub mod client {
    use std::io::{self, Read, Write};
    use std::net::TcpStream;

    /// A response read off the wire.
    #[derive(Debug, Clone)]
    pub struct ClientResponse {
        /// Status code from the status line.
        pub status: u16,
        /// Header `(name, value)` pairs, names lowercased.
        pub headers: Vec<(String, String)>,
        /// Response body (exactly `Content-Length` bytes).
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// The value of `name` (case-insensitive), if present.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str())
        }
    }

    /// Sends one request and reads its response; the connection stays usable
    /// for the next request (keep-alive).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn request(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        send_request(stream, method, path, body)?;
        read_response(stream)
    }

    /// Like [`request`], with extra request headers (e.g. `X-Trace-Id`).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn request_with_headers(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: gs-serve\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        stream.write_all(&message)?;
        stream.flush()?;
        read_response(stream)
    }

    /// Writes one request with a `Content-Length` body.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_request(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: gs-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        // One write for head + body: two small writes would trip the
        // Nagle/delayed-ACK interaction and stall small requests by ~40ms.
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        stream.write_all(&message)?;
        stream.flush()
    }

    fn bad(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
    }

    /// Reads one `Content-Length`-framed response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = super::find_head_end(&buf) {
                break pos;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response"));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head =
            std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| bad("missing Content-Length"))?;
        let total = head_end + 4 + content_length;
        while buf.len() < total {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-body"));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let body = buf[head_end + 4..total].to_vec();
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
