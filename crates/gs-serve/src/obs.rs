//! Live observability of the render server: trace sampling, the span
//! sink, and kernel-phase roofline aggregates.
//!
//! [`ServeObs`] is the one handle the serving hot path consults. It owns
//! three things:
//!
//! * the **trace sampler** — every Nth ingress request gets a
//!   [`gs_obs::RequestTrace`] minted ([`ServeObs::should_trace`]); the
//!   finished tree lands in a bounded [`SpanSink`] ring and, when it was
//!   slower than the configured threshold, is also logged as a text
//!   waterfall;
//! * the **phase profiler** — every Nth production render contributes its
//!   measured `project` / `bin` / `raster` timings plus analytic work
//!   estimates to per-phase accumulators, which `GET /metrics` exposes as
//!   roofline gauges (achieved FLOP/s, bandwidth, operational intensity)
//!   without ever re-measuring a kernel;
//! * the shared [`Registry`] the request counters already live in.
//!
//! All hot-path operations are a handful of relaxed atomics; the mutexes
//! (sink ring, span storage) are touched once per *request*, not per span.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gs_obs::{
    chrome_trace_json, default_slos, events_json, heat_json, incidents_json, slo_json, waterfall,
    FinishedTrace, FlightRecorder, Gauge, HeatTable, Registry, RequestTrace, SloEngine, SloStatus,
    SpanClock, SpanSink, TraceId,
};
use gs_platform::roofline::{RooflinePoint, Work};
use gs_render::cost::{self, WorkEstimate};
use gs_render::pipeline::{RenderStats, RenderTimings};

/// Request header carrying the trace id across nodes.
pub const TRACE_ID_HEADER: &str = "X-Trace-Id";
/// Request header carrying the parent span id of a relayed render.
pub const TRACE_PARENT_HEADER: &str = "X-Trace-Parent";
/// Response header returning a remote node's finished spans
/// ([`gs_obs::encode_spans`] form) to the caller that owns the trace.
pub const TRACE_SPANS_HEADER: &str = "X-Trace-Spans";

/// A kernel phase of the forward render pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// EWA projection of Gaussians to screen-space splats.
    Project,
    /// Tile binning and per-tile depth sort.
    Bin,
    /// Front-to-back alpha blending.
    Raster,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 3] = [Phase::Project, Phase::Bin, Phase::Raster];

    /// The phase's metric label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Project => "project",
            Phase::Bin => "bin",
            Phase::Raster => "raster",
        }
    }
}

/// Lock-free per-phase accumulator: seconds (as nanos), work estimate and
/// sample count.
#[derive(Debug, Default)]
struct PhaseAccum {
    nanos: AtomicU64,
    flops: AtomicU64,
    bytes: AtomicU64,
    samples: AtomicU64,
}

/// Scrape-time gauges of one phase's roofline aggregate.
#[derive(Debug, Clone)]
struct PhaseGauges {
    seconds: Gauge,
    samples: Gauge,
    flops_per_second: Gauge,
    bytes_per_second: Gauge,
    intensity: Gauge,
}

/// Knobs of the interpretation layer (SLO engine, heat tables, flight
/// recorder, watcher) that [`ServeObs::with_tuning`] builds from. The
/// defaults suit production; tests shrink the windows to drive breach /
/// recovery cycles in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsTuning {
    /// Bounded event-ring capacity of the flight recorder.
    pub event_ring: usize,
    /// SLO fast (detection) window, seconds.
    pub slo_fast_window_s: u64,
    /// SLO slow (confirmation) window, seconds.
    pub slo_slow_window_s: u64,
    /// Latency-SLO bound in milliseconds.
    pub slo_p99_ms: f64,
    /// Latency-SLO target good fraction.
    pub slo_latency_target: f64,
    /// Availability-SLO target good fraction.
    pub slo_availability_target: f64,
    /// Burn-rate threshold both windows must reach to breach.
    pub slo_burn_threshold: f64,
    /// Heat-table sliding window, seconds.
    pub heat_window_s: u64,
    /// Hottest keys each heat table tracks exactly.
    pub heat_top_k: usize,
    /// Watcher tick interval in milliseconds (`0` = no watcher thread;
    /// `watch_tick` can still be driven manually).
    pub watcher_interval_ms: u64,
}

impl Default for ObsTuning {
    fn default() -> Self {
        Self {
            event_ring: 256,
            slo_fast_window_s: 10,
            slo_slow_window_s: 120,
            slo_p99_ms: 250.0,
            slo_latency_target: 0.99,
            slo_availability_target: 0.999,
            slo_burn_threshold: 2.0,
            heat_window_s: 60,
            heat_top_k: 16,
            watcher_interval_ms: 250,
        }
    }
}

/// The server's observability state (see module docs).
#[derive(Debug)]
pub struct ServeObs {
    registry: Arc<Registry>,
    sink: SpanSink,
    clock: SpanClock,
    node: String,
    trace_sample_every: u32,
    phase_sample_every: u32,
    slow_trace_us: u64,
    trace_tick: AtomicU64,
    phase_tick: AtomicU64,
    phases: [PhaseAccum; 3],
    phase_gauges: Vec<PhaseGauges>,
    traces_finished: Gauge,
    traces_dropped: Gauge,
    trace_ring_held: Gauge,
    tuning: ObsTuning,
    slo: SloEngine,
    heat_scenes: HeatTable,
    heat_clients: HeatTable,
    recorder: FlightRecorder,
    uptime_gauge: Gauge,
    events_recorded: Gauge,
    events_dropped: Gauge,
    event_ring_held: Gauge,
    incidents_total: Gauge,
}

impl ServeObs {
    /// [`ServeObs::with_tuning`] with the default [`ObsTuning`].
    ///
    /// `trace_sample_every` = 0 disables tracing entirely, 1 traces every
    /// request, N traces every Nth; `phase_sample_every` works the same
    /// way for kernel-phase profiling. `slow_trace_us` = 0 disables the
    /// slow-request waterfall log. `span_ring` bounds the sink.
    pub fn new(
        registry: Arc<Registry>,
        node: impl Into<String>,
        trace_sample_every: u32,
        phase_sample_every: u32,
        slow_trace_us: u64,
        span_ring: usize,
    ) -> Self {
        Self::with_tuning(
            registry,
            node,
            trace_sample_every,
            phase_sample_every,
            slow_trace_us,
            span_ring,
            &ObsTuning::default(),
        )
    }

    /// Builds the observability state, including the interpretation
    /// layer (SLO engine, heat tables, flight recorder) sized by
    /// `tuning`. The watcher thread is **not** spawned here — the owner
    /// wires [`ServeObs::watch_tick`] into a [`gs_obs::Watcher`] so the
    /// tick closure can fold in owner-side probes (queue stalls).
    #[allow(clippy::too_many_arguments)]
    pub fn with_tuning(
        registry: Arc<Registry>,
        node: impl Into<String>,
        trace_sample_every: u32,
        phase_sample_every: u32,
        slow_trace_us: u64,
        span_ring: usize,
        tuning: &ObsTuning,
    ) -> Self {
        let phase_gauges = Phase::ALL
            .iter()
            .map(|p| {
                let labels = [("phase", p.name())];
                PhaseGauges {
                    seconds: registry.gauge(
                        "gs_phase_seconds",
                        &labels,
                        "Seconds spent in this kernel phase across sampled renders",
                    ),
                    samples: registry.gauge(
                        "gs_phase_samples",
                        &labels,
                        "Sampled renders contributing to this phase aggregate",
                    ),
                    flops_per_second: registry.gauge(
                        "gs_phase_flops_per_second",
                        &labels,
                        "Achieved FLOP/s of this phase (roofline)",
                    ),
                    bytes_per_second: registry.gauge(
                        "gs_phase_bytes_per_second",
                        &labels,
                        "Achieved memory bandwidth of this phase (roofline)",
                    ),
                    intensity: registry.gauge(
                        "gs_phase_intensity",
                        &labels,
                        "Operational intensity of this phase in FLOP/byte",
                    ),
                }
            })
            .collect();
        let traces_finished = registry.gauge(
            "gs_traces_finished",
            &[],
            "Request traces finished (kept + dropped)",
        );
        let traces_dropped = registry.gauge(
            "gs_traces_dropped",
            &[],
            "Request traces evicted or refused by the bounded span ring",
        );
        let trace_ring_held =
            registry.gauge("gs_trace_ring_held", &[], "Traces currently in the ring");
        let node = node.into();
        registry
            .gauge(
                "gs_build_info",
                &[("version", env!("CARGO_PKG_VERSION")), ("node", &node)],
                "Constant 1; the labels carry the build version and node",
            )
            .set(1.0);
        let uptime_gauge =
            registry.gauge("gs_uptime_seconds", &[], "Seconds since this tier started");
        let events_recorded = registry.gauge(
            "gs_events_recorded",
            &[],
            "Flight-recorder events recorded (kept + dropped)",
        );
        let events_dropped = registry.gauge(
            "gs_events_dropped",
            &[],
            "Flight-recorder events evicted by the bounded event ring",
        );
        let event_ring_held =
            registry.gauge("gs_event_ring_held", &[], "Events currently in the ring");
        let incidents_total = registry.gauge("gs_incidents_total", &[], "Incidents ever opened");
        let slo = SloEngine::new(
            &registry,
            default_slos(
                tuning.slo_p99_ms,
                tuning.slo_latency_target,
                tuning.slo_availability_target,
            )
            .into_iter()
            .map(|mut spec| {
                spec.fast_window_s = tuning.slo_fast_window_s;
                spec.slow_window_s = tuning.slo_slow_window_s;
                spec.burn_threshold = tuning.slo_burn_threshold;
                spec
            })
            .collect(),
        );
        Self {
            slo,
            heat_scenes: HeatTable::new(tuning.heat_window_s, tuning.heat_top_k),
            heat_clients: HeatTable::new(tuning.heat_window_s, tuning.heat_top_k),
            recorder: FlightRecorder::new(tuning.event_ring),
            tuning: tuning.clone(),
            registry,
            sink: SpanSink::new(span_ring),
            clock: SpanClock::new(),
            node,
            trace_sample_every,
            phase_sample_every,
            slow_trace_us,
            trace_tick: AtomicU64::new(0),
            phase_tick: AtomicU64::new(0),
            phases: Default::default(),
            phase_gauges,
            traces_finished,
            traces_dropped,
            trace_ring_held,
            uptime_gauge,
            events_recorded,
            events_dropped,
            event_ring_held,
            incidents_total,
        }
    }

    /// The registry shared with the stats collector.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The bounded ring finished traces land in.
    pub fn sink(&self) -> &SpanSink {
        &self.sink
    }

    /// The clock locally-minted traces are stamped with.
    pub fn clock(&self) -> &SpanClock {
        &self.clock
    }

    /// The node label spans recorded here carry.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Whether the next ingress request should get a trace minted
    /// (advances the sampling tick).
    pub fn should_trace(&self) -> bool {
        match self.trace_sample_every {
            0 => false,
            n => self
                .trace_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n as u64),
        }
    }

    /// Mints a fresh trace rooted at this node.
    pub fn mint(&self) -> RequestTrace {
        RequestTrace::new(TraceId::generate(), &self.node)
    }

    /// Whether the next render should contribute kernel-phase samples
    /// (advances the sampling tick).
    pub fn should_sample_phases(&self) -> bool {
        match self.phase_sample_every {
            0 => false,
            n => self
                .phase_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n as u64),
        }
    }

    /// Adds one measured interval of `phase` plus its analytic work
    /// estimate to the aggregate.
    pub fn record_phase(&self, phase: Phase, seconds: f64, work: &WorkEstimate) {
        let accum = &self.phases[phase as usize];
        accum
            .nanos
            .fetch_add((seconds.max(0.0) * 1e9).round() as u64, Ordering::Relaxed);
        accum
            .flops
            .fetch_add(work.flops.max(0.0).round() as u64, Ordering::Relaxed);
        accum.bytes.fetch_add(
            work.total_bytes().max(0.0).round() as u64,
            Ordering::Relaxed,
        );
        accum.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds one render's measured phase timings (and the work estimates
    /// its stats imply) into the aggregates — the production counterpart
    /// of the offline roofline benches. Returns whether the render was
    /// sampled.
    pub fn sample_render(&self, stats: &RenderStats, timings: &RenderTimings) -> bool {
        if !self.should_sample_phases() {
            return false;
        }
        self.record_phase(
            Phase::Project,
            timings.project_s,
            &cost::projection_cost(stats.num_input),
        );
        self.record_phase(Phase::Bin, timings.bin_s, &bin_cost(stats));
        self.record_phase(
            Phase::Raster,
            timings.raster_s,
            &cost::raster_forward_cost(stats.num_pairs, stats.num_pixels),
        );
        true
    }

    /// The aggregated [`RooflinePoint`] of a phase, if it has samples.
    pub fn phase_roofline(&self, phase: Phase) -> Option<RooflinePoint> {
        let accum = &self.phases[phase as usize];
        if accum.samples.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let seconds = accum.nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let work = Work::new(
            accum.flops.load(Ordering::Relaxed) as f64,
            accum.bytes.load(Ordering::Relaxed) as f64,
        );
        Some(RooflinePoint::new(&work, seconds.max(1e-12)))
    }

    /// Refreshes the scrape-time gauges (phase rooflines, sink counters);
    /// called right before rendering `GET /metrics`.
    pub fn refresh_gauges(&self) {
        for (phase, gauges) in Phase::ALL.iter().zip(&self.phase_gauges) {
            let accum = &self.phases[*phase as usize];
            let samples = accum.samples.load(Ordering::Relaxed);
            gauges.samples.set(samples as f64);
            gauges
                .seconds
                .set(accum.nanos.load(Ordering::Relaxed) as f64 / 1e9);
            if let Some(point) = self.phase_roofline(*phase) {
                gauges.flops_per_second.set(point.achieved_flops());
                gauges.bytes_per_second.set(point.achieved_bandwidth());
                gauges.intensity.set(point.operational_intensity());
            }
        }
        self.traces_finished.set(self.sink.finished() as f64);
        self.traces_dropped.set(self.sink.dropped() as f64);
        self.trace_ring_held.set(self.sink.len() as f64);
        self.uptime_gauge.set(self.uptime_s());
        self.events_recorded.set(self.recorder.recorded() as f64);
        self.events_dropped.set(self.recorder.dropped() as f64);
        self.event_ring_held.set(self.recorder.held() as f64);
        self.incidents_total
            .set(self.recorder.incidents_opened() as f64);
        self.slo.report();
    }

    /// Files a finished trace into the ring and, when it exceeded the
    /// slow-trace threshold, logs its waterfall to stderr.
    pub fn finish(&self, trace: &RequestTrace) {
        let finished = FinishedTrace {
            trace: trace.id(),
            spans: trace.spans(),
        };
        if self.slow_trace_us > 0 {
            let t0 = finished.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
            let total = finished
                .spans
                .iter()
                .map(|s| (s.start_us - t0) + s.dur_us)
                .max()
                .unwrap_or(0);
            if total >= self.slow_trace_us {
                let rendered = waterfall(&finished);
                eprintln!(
                    "[{}] slow request {} ({} us):\n{}",
                    self.node, finished.trace, total, rendered
                );
                self.recorder
                    .note_slow_trace(format!("{} ({} us)\n{}", finished.trace, total, rendered));
            }
        }
        self.sink.push_finished(finished);
    }

    /// Prometheus text exposition of the registry, gauges refreshed.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        self.registry.render()
    }

    /// Chrome trace-event JSON of every trace currently in the ring.
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(&self.sink.snapshot())
    }

    /// Chrome trace-event JSON of just the ring's trace with this id
    /// (16-hex-digit form), or `None` when the ring no longer holds it.
    pub fn chrome_json_for(&self, id: &str) -> Option<String> {
        let id = TraceId::parse(id)?;
        let matched: Vec<FinishedTrace> = self
            .sink
            .snapshot()
            .into_iter()
            .filter(|t| t.trace == id)
            .collect();
        if matched.is_empty() {
            None
        } else {
            Some(chrome_trace_json(&matched))
        }
    }

    /// The interpretation-layer tuning this state was built with.
    pub fn tuning(&self) -> &ObsTuning {
        &self.tuning
    }

    /// The SLO engine.
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The scene-keyed heat table.
    pub fn heat_scenes(&self) -> &HeatTable {
        &self.heat_scenes
    }

    /// The client-keyed heat table.
    pub fn heat_clients(&self) -> &HeatTable {
        &self.heat_clients
    }

    /// The anomaly flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Seconds since this observability state (≈ the tier) started.
    pub fn uptime_s(&self) -> f64 {
        (self.clock.now_us().saturating_sub(self.clock.anchor_us())) as f64 / 1e6
    }

    /// Feeds one finished request into the SLO engine and heat tables.
    /// `scene`/`client` may be absent (rejected before routing); they
    /// then fall out of the heat tables but still count against SLOs.
    pub fn record_outcome(
        &self,
        scene: Option<&str>,
        client: Option<&str>,
        ok: bool,
        cache_hit: bool,
        latency_s: f64,
    ) {
        self.slo.record(ok, latency_s);
        if let Some(scene) = scene {
            self.heat_scenes.record(scene, ok, cache_hit, latency_s);
        }
        if let Some(client) = client {
            self.heat_clients.record(client, ok, cache_hit, latency_s);
        }
    }

    /// One watcher tick: evaluates the SLOs and lets the flight recorder
    /// open/extend/resolve an incident (freezing `/metrics` when one
    /// opens). Returns the statuses so owner-side ticks can act on them.
    pub fn watch_tick(&self) -> Vec<SloStatus> {
        let statuses = self.slo.report();
        let breaches: Vec<String> = statuses
            .iter()
            .filter(|s| s.breached)
            .map(|s| s.name.clone())
            .collect();
        self.recorder.tick(&breaches, || self.metrics_text());
        statuses
    }

    /// The `/slo` endpoint's JSON document.
    pub fn slo_json(&self) -> String {
        slo_json(&self.slo.report())
    }

    /// The `/heat` endpoint's JSON document.
    pub fn heat_json(&self) -> String {
        heat_json(
            self.heat_scenes.window_s(),
            &self.heat_scenes.snapshot(),
            &self.heat_clients.snapshot(),
        )
    }

    /// The `/events` endpoint's JSON document.
    pub fn events_json(&self) -> String {
        events_json(
            &self.recorder.events(),
            self.recorder.recorded(),
            self.recorder.dropped(),
        )
    }

    /// The `/incidents` endpoint's JSON document.
    pub fn incidents_json(&self) -> String {
        incidents_json(&self.recorder.incidents())
    }
}

/// Analytic work estimate of the tile-binning phase. The cost model in
/// `gs_render::cost` has no binning entry (binning is memory-bound
/// bookkeeping, not arithmetic), so this synthesizes one from the same
/// counters: each splat computes its tile range, each (splat, tile) pair
/// is appended and then moved once by the per-tile depth sort.
fn bin_cost(stats: &RenderStats) -> WorkEstimate {
    let splats = stats.num_splats as f64;
    let pairs = stats.num_pairs as f64;
    WorkEstimate::new(
        10.0 * splats + 4.0 * pairs,
        32.0 * splats + 8.0 * pairs,
        8.0 * pairs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(trace_every: u32, phase_every: u32) -> ServeObs {
        ServeObs::new(
            Arc::new(Registry::new()),
            "test-node",
            trace_every,
            phase_every,
            0,
            8,
        )
    }

    #[test]
    fn sampling_gates_follow_their_period() {
        let o = obs(0, 0);
        assert!(!o.should_trace() && !o.should_sample_phases());

        let o = obs(1, 1);
        assert!((0..10).all(|_| o.should_trace()));

        let o = obs(4, 4);
        let hits = (0..16).filter(|_| o.should_trace()).count();
        assert_eq!(hits, 4, "every 4th request is traced");
    }

    #[test]
    fn phase_aggregates_feed_rooflines_and_gauges() {
        let o = obs(0, 1);
        let stats = RenderStats {
            num_input: 1000,
            num_splats: 800,
            num_pairs: 3200,
            num_pixels: 64 * 64,
        };
        let timings = RenderTimings {
            project_s: 1e-3,
            bin_s: 5e-4,
            raster_s: 2e-3,
        };
        assert!(o.sample_render(&stats, &timings));
        for phase in Phase::ALL {
            let point = o.phase_roofline(phase).expect("sampled phase has a point");
            assert!(point.achieved_flops() > 0.0);
            assert!(point.operational_intensity() > 0.0);
        }
        let text = o.metrics_text();
        assert!(text.contains("gs_phase_flops_per_second{phase=\"raster\"}"));
        assert!(text.contains("gs_phase_samples{phase=\"project\"} 1"));
        gs_obs::lint_prometheus(&text).expect("exposition must lint clean");
    }

    #[test]
    fn unsampled_phases_have_no_roofline() {
        let o = obs(0, 0);
        assert!(o.phase_roofline(Phase::Raster).is_none());
        let stats = RenderStats {
            num_input: 10,
            num_splats: 10,
            num_pairs: 10,
            num_pixels: 10,
        };
        let timings = RenderTimings {
            project_s: 1e-6,
            bin_s: 1e-6,
            raster_s: 1e-6,
        };
        assert!(!o.sample_render(&stats, &timings), "sampling disabled");
        assert!(o.phase_roofline(Phase::Project).is_none());
    }

    #[test]
    fn finished_traces_land_in_the_ring() {
        let o = obs(1, 0);
        let trace = o.mint();
        trace.record(0, "request", o.clock().now_us(), 42);
        o.finish(&trace);
        assert_eq!(o.sink().len(), 1);
        let json = o.chrome_json();
        assert!(json.contains("\"request\""));
        let text = o.metrics_text();
        assert!(text.contains("gs_traces_finished 1"));
    }
}
