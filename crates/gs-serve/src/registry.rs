//! The scene registry: loaded scenes plus memory-aware admission control.
//!
//! Scenes are admitted against a [`MemoryPool`] sized from a [`PlatformSpec`]
//! (or an explicit byte budget). A load that does not fit evicts
//! least-recently-used *idle* residents until it does; a load larger than the
//! whole budget is rejected outright. This mirrors how a production renderer
//! must treat accelerator memory as the scarce resource when multiplexing
//! many trained scenes onto one device.
//!
//! Two kinds of entries coexist:
//!
//! * **Single** scenes — one parameter container, charged to the pool in
//!   full while loaded (the original behavior).
//! * **Sharded** scenes — a scene partitioned by [`crate::shard`] into
//!   shards that are admitted *independently*: the shard stores live in the
//!   registry's host-side map (the serving analogue of GS-Scale's
//!   host-offloaded parameters), and each shard is charged to the pool only
//!   while **resident**. [`SceneRegistry::ensure_shard_resident`] admits a
//!   shard on demand, evicting least-recently-used residents — whole single
//!   scenes or individual shards, whichever is stalest — so a scene larger
//!   than the entire budget still serves, one shard's worth of device
//!   memory at a time.
//!
//! Shard eviction is pure accounting: in-flight renders hold `Arc`s and
//! cached frames stay valid (the parameters never changed), so unlike a
//! scene replacement it invalidates nothing.

use std::collections::HashMap;
use std::sync::Arc;

use gs_core::gaussian::GaussianParams;
use gs_platform::{MemoryCategory, MemoryPool, PlatformSpec};

use crate::request::{SceneId, ServeError};
use crate::shard::{Aabb, ShardSource};

/// A view of a single (unsharded) scene resident in the registry.
#[derive(Debug, Clone)]
pub struct LoadedScene {
    /// Trained Gaussian parameters (shared with in-flight renders).
    pub params: Arc<GaussianParams>,
    /// Background color composited behind the splats.
    pub background: [f32; 3],
    /// Bytes charged against the registry's memory pool.
    pub bytes: u64,
    /// Load epoch: changes whenever the id is (re)loaded, so stale frames
    /// of a replaced scene are never cached as current.
    pub epoch: u64,
}

/// A view of one shard of a sharded scene.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// The shard's gathered parameters.
    pub params: Arc<GaussianParams>,
    /// Bounding box of the shard's Gaussian centers (drives depth order).
    pub aabb: Aabb,
    /// Largest per-Gaussian scale in the shard (drives view-adaptive shard
    /// culling, see [`crate::shard::shard_visible`]).
    pub max_scale: f32,
    /// Bytes the shard charges to the pool while resident.
    pub bytes: u64,
}

/// A view of a sharded scene: consistent `Arc` snapshots of every shard.
#[derive(Debug, Clone)]
pub struct ShardedSceneView {
    /// Background color composited behind the splats.
    pub background: [f32; 3],
    /// Load epoch (see [`LoadedScene::epoch`]).
    pub epoch: u64,
    /// The shards, in partition order.
    pub shards: Vec<ShardView>,
}

/// What [`SceneRegistry::get`] hands a renderer.
#[derive(Debug, Clone)]
pub enum SceneView {
    /// An unsharded scene.
    Single(LoadedScene),
    /// A sharded scene rendered via the fan-out path.
    Sharded(ShardedSceneView),
}

impl SceneView {
    /// The load epoch of the underlying entry.
    pub fn epoch(&self) -> u64 {
        match self {
            SceneView::Single(s) => s.epoch,
            SceneView::Sharded(s) => s.epoch,
        }
    }
}

/// One row of [`SceneRegistry::layouts`]: how a scene is laid out across
/// shards and how much of it is currently resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SceneLayout {
    /// Scene id.
    pub id: SceneId,
    /// Number of shards (1 for a single scene).
    pub shards: usize,
    /// Shards currently charged to the pool (equals `shards` for a loaded
    /// single scene).
    pub resident_shards: usize,
    /// Total Gaussians across all shards.
    pub gaussians: usize,
    /// Total bytes across all shards (resident or not).
    pub bytes: u64,
}

/// Counters describing the registry's admission-control activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Scenes admitted (single or sharded).
    pub loads: u64,
    /// Loads rejected because the scene (or one of its shards) exceeds the
    /// whole budget.
    pub rejections: u64,
    /// Whole scenes evicted since creation.
    pub eviction_count: u64,
    /// Individual shards evicted (accounting only — the scene stays loaded
    /// and its cached frames stay valid).
    pub shard_evictions: u64,
    /// The most recent evictions in order, bounded to [`EVICTION_LOG`]
    /// entries. Whole scenes log their id, shards log `id#k`.
    pub evictions: Vec<SceneId>,
}

/// How many recent evictions [`RegistryStats::evictions`] retains.
pub const EVICTION_LOG: usize = 64;

/// Default host-budget multiple used by [`SceneRegistry::with_budget`]: the
/// host-side stores of sharded scenes may grow to this many times the
/// device budget before sharded loads are rejected. Mirrors the paper's
/// host-offloading premise (host DRAM is plentiful relative to device
/// memory) while still bounding what `POST /scenes/<id>` can allocate.
pub const HOST_BUDGET_FACTOR: u64 = 8;

struct ShardSlot {
    params: Arc<GaussianParams>,
    aabb: Aabb,
    max_scale: f32,
    bytes: u64,
    resident: bool,
    tick: u64,
}

enum EntryKind {
    Single {
        params: Arc<GaussianParams>,
        bytes: u64,
    },
    Sharded {
        shards: Vec<ShardSlot>,
    },
}

struct SceneEntry {
    background: [f32; 3],
    epoch: u64,
    tick: u64,
    kind: EntryKind,
}

/// Outcome of [`SceneRegistry::ensure_shard_resident`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardResidency {
    /// Whether the shard is now charged as resident (false when the scene
    /// vanished or was replaced since the caller's [`SceneView`]).
    pub charged: bool,
    /// Whole scenes unloaded to make room; the caller must drop their
    /// cached frames (shard evictions invalidate nothing and are not
    /// listed).
    pub evicted_scenes: Vec<SceneId>,
}

/// An LRU eviction candidate: a whole single scene or one resident shard.
enum Victim {
    Scene(SceneId),
    Shard(SceneId, usize),
}

/// Registry of loaded scenes with LRU eviction under a memory budget.
pub struct SceneRegistry {
    scenes: HashMap<SceneId, SceneEntry>,
    pool: MemoryPool,
    /// Bound on the host-side shard stores of sharded scenes (which charge
    /// the device pool only while resident, so they need their own cap —
    /// otherwise `POST /scenes/<id>` could grow host memory without limit).
    host_budget: u64,
    host_used: u64,
    tick: u64,
    epoch: u64,
    stats: RegistryStats,
}

impl SceneRegistry {
    /// Creates a registry with an explicit device byte budget and a host
    /// budget of [`HOST_BUDGET_FACTOR`] times that.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self::with_budgets(
            budget_bytes,
            budget_bytes.saturating_mul(HOST_BUDGET_FACTOR),
        )
    }

    /// Creates a registry with explicit device and host byte budgets. The
    /// device budget bounds resident parameters (whole single scenes plus
    /// resident shards); the host budget bounds the total size of sharded
    /// scenes' host-side stores.
    pub fn with_budgets(budget_bytes: u64, host_budget_bytes: u64) -> Self {
        Self {
            scenes: HashMap::new(),
            pool: MemoryPool::new("scene-registry", budget_bytes),
            host_budget: host_budget_bytes,
            host_used: 0,
            tick: 0,
            epoch: 0,
            stats: RegistryStats::default(),
        }
    }

    /// Creates a registry budgeted to the platform's GPU memory (device)
    /// and host DRAM (shard stores), the split a production service of
    /// trained scenes would run with.
    pub fn for_platform(platform: &PlatformSpec) -> Self {
        Self::with_budgets(platform.gpu.mem_capacity, platform.cpu.mem_capacity)
    }

    /// Loads a single (unsharded) scene, evicting least-recently-used
    /// residents if needed, and returns the ids of *whole scenes* it evicted
    /// (in eviction order; shard evictions are accounting-only and not
    /// reported here because they invalidate nothing).
    ///
    /// Reloading an existing id replaces it (the old allocation is released
    /// first).
    ///
    /// # Errors
    ///
    /// [`ServeError::Admission`] if the scene alone exceeds the budget.
    pub fn load(
        &mut self,
        id: impl Into<SceneId>,
        params: Arc<GaussianParams>,
        background: [f32; 3],
    ) -> Result<Vec<SceneId>, ServeError> {
        let id = id.into();
        let bytes = params.total_bytes() as u64;
        // Reject a hopeless load before evicting anyone for it.
        if bytes > self.pool.capacity() {
            self.stats.rejections += 1;
            return Err(self.oom(bytes));
        }
        self.remove_entry(&id);
        let victims = self.evict_until(bytes, None);
        if let Err(e) = self.pool.alloc(MemoryCategory::Parameters, bytes) {
            // Unreachable with the registry's private single-category pool:
            // the capacity pre-check passed and evict_until drains every
            // resident before giving up, so the drained pool always fits
            // `bytes`. Kept as an error (not a panic) for robustness if the
            // pool ever becomes shared.
            debug_assert!(false, "a capacity-checked load must fit a drained pool");
            self.stats.rejections += 1;
            return Err(ServeError::Admission(e));
        }
        self.tick += 1;
        self.epoch += 1;
        self.scenes.insert(
            id,
            SceneEntry {
                background,
                epoch: self.epoch,
                tick: self.tick,
                kind: EntryKind::Single { params, bytes },
            },
        );
        self.stats.loads += 1;
        Ok(victims)
    }

    /// Loads a sharded scene. The shard stores are kept host-side (bounded
    /// by the host budget); nothing is charged to the device pool until a
    /// render calls [`SceneRegistry::ensure_shard_resident`], so a scene
    /// whose *total* exceeds the whole device budget is admissible as long
    /// as every individual shard fits.
    ///
    /// Reloading an existing id replaces it (the replacement is counted
    /// against the host budget net of the old entry).
    ///
    /// # Errors
    ///
    /// [`ServeError::Admission`] if any single shard exceeds the device
    /// budget (it could never be made resident), or if the scene would push
    /// the host-side shard stores past the host budget. A rejected load
    /// leaves the registry untouched.
    pub fn load_sharded(
        &mut self,
        id: impl Into<SceneId>,
        shards: Vec<ShardSource>,
        background: [f32; 3],
    ) -> Result<(), ServeError> {
        let id = id.into();
        if let Some(worst) = shards.iter().map(|s| s.bytes).max() {
            if worst > self.pool.capacity() {
                self.stats.rejections += 1;
                return Err(self.oom(worst));
            }
        }
        // Host-side admission, computed before the old entry is touched so
        // a rejected reload leaves the resident scene alone. Replacing a
        // sharded entry frees its own host bytes first.
        let total: u64 = shards.iter().map(|s| s.bytes).sum();
        let replaced = match self.scenes.get(&id).map(|e| &e.kind) {
            Some(EntryKind::Sharded { shards }) => shards.iter().map(|s| s.bytes).sum(),
            _ => 0,
        };
        let host_after = self.host_used - replaced + total;
        if host_after > self.host_budget {
            self.stats.rejections += 1;
            return Err(ServeError::Admission(gs_core::Error::OutOfMemory {
                device: "scene-registry-host".to_string(),
                requested_bytes: total as usize,
                available_bytes: (self.host_budget - (self.host_used - replaced)) as usize,
                capacity_bytes: self.host_budget as usize,
            }));
        }
        self.remove_entry(&id);
        self.host_used += total;
        self.tick += 1;
        self.epoch += 1;
        let slots = shards
            .into_iter()
            .map(|s| ShardSlot {
                params: s.params,
                aabb: s.aabb,
                max_scale: s.max_scale,
                bytes: s.bytes,
                resident: false,
                tick: 0,
            })
            .collect();
        self.scenes.insert(
            id,
            SceneEntry {
                background,
                epoch: self.epoch,
                tick: self.tick,
                kind: EntryKind::Sharded { shards: slots },
            },
        );
        self.stats.loads += 1;
        Ok(())
    }

    /// Fetches a scene for rendering, refreshing its LRU recency.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] if the id is not loaded.
    pub fn get(&mut self, id: &SceneId) -> Result<SceneView, ServeError> {
        self.tick += 1;
        let tick = self.tick;
        let Some(entry) = self.scenes.get_mut(id) else {
            return Err(ServeError::UnknownScene(id.clone()));
        };
        entry.tick = tick;
        Ok(match &entry.kind {
            EntryKind::Single { params, bytes } => SceneView::Single(LoadedScene {
                params: Arc::clone(params),
                background: entry.background,
                bytes: *bytes,
                epoch: entry.epoch,
            }),
            EntryKind::Sharded { shards } => SceneView::Sharded(ShardedSceneView {
                background: entry.background,
                epoch: entry.epoch,
                shards: shards
                    .iter()
                    .map(|s| ShardView {
                        params: Arc::clone(&s.params),
                        aabb: s.aabb,
                        max_scale: s.max_scale,
                        bytes: s.bytes,
                    })
                    .collect(),
            }),
        })
    }

    /// Charges shard `k` of scene `id` to the pool if it is not already
    /// resident, evicting least-recently-used residents to make room, and
    /// refreshes the shard's recency.
    ///
    /// `epoch` must be the epoch of the [`SceneView`] the caller rendered
    /// from; if the scene was unloaded or replaced in the meantime the call
    /// is a no-op (`charged` is false and nothing is billed — the caller's
    /// render proceeds from its `Arc` snapshot, exactly like a single scene
    /// replaced mid-render).
    ///
    /// The caller must invalidate cached frames of every id in
    /// `evicted_scenes`, like the victims of [`SceneRegistry::load`] — on
    /// every return, including `charged: false` (evictions may have
    /// happened before a failed charge).
    ///
    /// Never fails: a shard that cannot be charged (possible only if the
    /// pool were shared with another allocation category, which today it is
    /// not — load-time validation guarantees every shard fits an otherwise
    /// empty pool) simply reports `charged: false`, and the caller's render
    /// proceeds uncharged from its snapshot.
    pub fn ensure_shard_resident(&mut self, id: &SceneId, k: usize, epoch: u64) -> ShardResidency {
        let noop = ShardResidency {
            charged: false,
            evicted_scenes: Vec::new(),
        };
        let (bytes, already_resident) = {
            let Some(entry) = self.scenes.get(id) else {
                return noop;
            };
            if entry.epoch != epoch {
                return noop;
            }
            let EntryKind::Sharded { shards } = &entry.kind else {
                return noop;
            };
            let Some(slot) = shards.get(k) else {
                return noop;
            };
            (slot.bytes, slot.resident)
        };
        if already_resident {
            self.tick += 1;
            let tick = self.tick;
            self.slot_mut(id, k).tick = tick;
            return ShardResidency {
                charged: true,
                evicted_scenes: Vec::new(),
            };
        }
        let evicted_scenes = self.evict_until(bytes, Some((id, k)));
        let charged = self.pool.alloc(MemoryCategory::Parameters, bytes).is_ok();
        debug_assert!(charged, "a validated shard must fit a drained pool");
        if charged {
            self.tick += 1;
            let tick = self.tick;
            let slot = self.slot_mut(id, k);
            slot.resident = true;
            slot.tick = tick;
        }
        ShardResidency {
            charged,
            evicted_scenes,
        }
    }

    /// Removes a scene, releasing its memory. Returns whether it was loaded.
    pub fn unload(&mut self, id: &SceneId) -> bool {
        self.remove_entry(id)
    }

    /// Whether `id` is currently loaded.
    pub fn contains(&self, id: &SceneId) -> bool {
        self.scenes.contains_key(id)
    }

    /// The load epoch of `id`, if loaded.
    pub fn epoch(&self, id: &SceneId) -> Option<u64> {
        self.scenes.get(id).map(|e| e.epoch)
    }

    /// Ids of the loaded scenes, sorted for stable output.
    pub fn loaded(&self) -> Vec<SceneId> {
        let mut ids: Vec<SceneId> = self.scenes.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Shard layout and residency of every loaded scene, sorted by id.
    pub fn layouts(&self) -> Vec<SceneLayout> {
        let mut rows: Vec<SceneLayout> = self
            .scenes
            .iter()
            .map(|(id, entry)| match &entry.kind {
                EntryKind::Single { params, bytes } => SceneLayout {
                    id: id.clone(),
                    shards: 1,
                    resident_shards: 1,
                    gaussians: params.len(),
                    bytes: *bytes,
                },
                EntryKind::Sharded { shards } => SceneLayout {
                    id: id.clone(),
                    shards: shards.len(),
                    resident_shards: shards.iter().filter(|s| s.resident).count(),
                    gaussians: shards.iter().map(|s| s.params.len()).sum(),
                    bytes: shards.iter().map(|s| s.bytes).sum(),
                },
            })
            .collect();
        rows.sort_by(|a, b| a.id.cmp(&b.id));
        rows
    }

    /// Bytes currently charged to residents (whole single scenes plus
    /// resident shards).
    pub fn used_bytes(&self) -> u64 {
        self.pool.used_total()
    }

    /// Total device admission budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.pool.capacity()
    }

    /// Bytes held by sharded scenes' host-side stores.
    pub fn host_used_bytes(&self) -> u64 {
        self.host_used
    }

    /// Bound on the host-side shard stores in bytes.
    pub fn host_budget_bytes(&self) -> u64 {
        self.host_budget
    }

    /// Admission-control counters (loads, rejections, eviction order).
    pub fn stats(&self) -> &RegistryStats {
        &self.stats
    }

    fn oom(&self, requested: u64) -> ServeError {
        ServeError::Admission(gs_core::Error::OutOfMemory {
            device: self.pool.name().to_string(),
            requested_bytes: requested as usize,
            available_bytes: self.pool.available() as usize,
            capacity_bytes: self.pool.capacity() as usize,
        })
    }

    fn slot_mut(&mut self, id: &SceneId, k: usize) -> &mut ShardSlot {
        match &mut self.scenes.get_mut(id).expect("scene just seen").kind {
            EntryKind::Sharded { shards } => &mut shards[k],
            EntryKind::Single { .. } => unreachable!("slot_mut on a single scene"),
        }
    }

    /// Removes an entry outright, freeing everything it had charged.
    fn remove_entry(&mut self, id: &SceneId) -> bool {
        match self.scenes.remove(id) {
            Some(entry) => {
                match entry.kind {
                    EntryKind::Single { bytes, .. } => {
                        self.pool.free(MemoryCategory::Parameters, bytes);
                    }
                    EntryKind::Sharded { shards } => {
                        for slot in shards.iter().filter(|s| s.resident) {
                            self.pool.free(MemoryCategory::Parameters, slot.bytes);
                        }
                        let total: u64 = shards.iter().map(|s| s.bytes).sum();
                        self.host_used -= total;
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Evicts least-recently-used residents until `bytes` fit (or nothing is
    /// left to evict). Returns the whole scenes that were unloaded.
    /// `keep` protects one shard slot from eviction (the slot being
    /// admitted — it is non-resident, listed only for clarity).
    fn evict_until(&mut self, bytes: u64, keep: Option<(&SceneId, usize)>) -> Vec<SceneId> {
        let mut unloaded = Vec::new();
        while self.pool.available() < bytes {
            let Some(victim) = self.lru_victim(keep) else {
                break;
            };
            match victim {
                Victim::Scene(id) => {
                    self.remove_entry(&id);
                    self.stats.eviction_count += 1;
                    self.log_eviction(id.clone());
                    unloaded.push(id);
                }
                Victim::Shard(id, k) => {
                    let bytes = {
                        let slot = self.slot_mut(&id, k);
                        slot.resident = false;
                        slot.bytes
                    };
                    self.pool.free(MemoryCategory::Parameters, bytes);
                    self.stats.shard_evictions += 1;
                    self.log_eviction(format!("{id}#{k}"));
                }
            }
        }
        unloaded
    }

    fn log_eviction(&mut self, label: String) {
        self.stats.evictions.push(label);
        if self.stats.evictions.len() > EVICTION_LOG {
            self.stats.evictions.remove(0);
        }
    }

    /// The least-recently-used eviction candidate: the stalest of all whole
    /// single scenes and resident shard slots.
    fn lru_victim(&self, keep: Option<(&SceneId, usize)>) -> Option<Victim> {
        let mut best: Option<(u64, Victim)> = None;
        let mut consider = |tick: u64, victim: Victim| {
            if best.as_ref().is_none_or(|(t, _)| tick < *t) {
                best = Some((tick, victim));
            }
        };
        for (id, entry) in &self.scenes {
            match &entry.kind {
                EntryKind::Single { .. } => {
                    consider(entry.tick, Victim::Scene(id.clone()));
                }
                EntryKind::Sharded { shards } => {
                    for (k, slot) in shards.iter().enumerate() {
                        if !slot.resident {
                            continue;
                        }
                        if keep == Some((id, k)) {
                            continue;
                        }
                        consider(slot.tick, Victim::Shard(id.clone(), k));
                    }
                }
            }
        }
        best.map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::shard_scene;
    use gs_core::math::Vec3;

    fn scene_of(n: usize) -> Arc<GaussianParams> {
        let mut p = GaussianParams::with_capacity(n);
        for i in 0..n {
            p.push_isotropic(Vec3::new(i as f32, 0.0, 1.0), 0.1, [0.5; 3], 0.8);
        }
        Arc::new(p)
    }

    fn single(view: SceneView) -> LoadedScene {
        match view {
            SceneView::Single(s) => s,
            SceneView::Sharded(_) => panic!("expected a single scene"),
        }
    }

    const PER_GAUSSIAN: u64 = 59 * 4;

    #[test]
    fn load_get_unload_roundtrip() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        assert!(reg.contains(&"a".to_string()));
        assert_eq!(reg.used_bytes(), 10 * PER_GAUSSIAN);
        let got = single(reg.get(&"a".to_string()).unwrap());
        assert_eq!(got.params.len(), 10);
        assert!(reg.unload(&"a".to_string()));
        assert_eq!(reg.used_bytes(), 0);
        assert!(!reg.unload(&"a".to_string()));
    }

    #[test]
    fn oversized_scene_is_rejected() {
        let mut reg = SceneRegistry::with_budget(5 * PER_GAUSSIAN);
        let err = reg.load("big", scene_of(10), [0.0; 3]).unwrap_err();
        assert!(matches!(err, ServeError::Admission(e) if e.is_oom()));
        assert_eq!(reg.stats().rejections, 1);
        assert!(reg.loaded().is_empty());
    }

    #[test]
    fn rejected_load_does_not_evict_residents() {
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("b", scene_of(10), [0.0; 3]).unwrap();
        let err = reg.load("big", scene_of(30), [0.0; 3]).unwrap_err();
        assert!(matches!(err, ServeError::Admission(e) if e.is_oom()));
        assert_eq!(
            reg.loaded(),
            vec!["a".to_string(), "b".to_string()],
            "a hopeless load must not push residents out first"
        );
        assert!(reg.stats().evictions.is_empty());
    }

    #[test]
    fn lru_scene_is_evicted_first() {
        // Budget fits two 10-Gaussian scenes.
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("b", scene_of(10), [0.0; 3]).unwrap();
        // Touch "a" so "b" becomes least recently used.
        reg.get(&"a".to_string()).unwrap();
        reg.load("c", scene_of(10), [0.0; 3]).unwrap();
        assert_eq!(reg.loaded(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(reg.stats().evictions, vec!["b".to_string()]);
    }

    #[test]
    fn eviction_cascades_until_the_load_fits() {
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("b", scene_of(10), [0.0; 3]).unwrap();
        // 20 Gaussians need both residents gone.
        let victims = reg.load("c", scene_of(20), [0.0; 3]).unwrap();
        assert_eq!(reg.loaded(), vec!["c".to_string()]);
        assert_eq!(
            victims,
            vec!["a".to_string(), "b".to_string()],
            "eviction must proceed in LRU order"
        );
        assert_eq!(reg.stats().evictions, victims);
        assert_eq!(reg.stats().eviction_count, 2);
    }

    #[test]
    fn reload_replaces_without_double_charging() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("a", scene_of(20), [0.0; 3]).unwrap();
        assert_eq!(reg.used_bytes(), 20 * PER_GAUSSIAN);
        assert_eq!(reg.loaded().len(), 1);
    }

    #[test]
    fn reload_bumps_the_epoch() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        let first = reg.epoch(&"a".to_string()).unwrap();
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        let second = reg.epoch(&"a".to_string()).unwrap();
        assert_ne!(first, second, "replacing a scene must change its epoch");
        assert_eq!(reg.get(&"a".to_string()).unwrap().epoch(), second);
    }

    #[test]
    fn platform_budget_uses_gpu_capacity() {
        let platform = PlatformSpec::laptop_rtx4070m();
        let reg = SceneRegistry::for_platform(&platform);
        assert_eq!(reg.budget_bytes(), platform.gpu.mem_capacity);
    }

    #[test]
    fn unknown_scene_errors() {
        let mut reg = SceneRegistry::with_budget(1000);
        let err = reg.get(&"missing".to_string()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownScene(_)));
    }

    // ---- sharded entries ----

    #[test]
    fn sharded_load_charges_nothing_until_shards_become_resident() {
        // 40 Gaussians in 4 shards of 10 against a budget of 25: the whole
        // scene could never fit, but shard-at-a-time it serves.
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        let shards = shard_scene(&scene_of(40), 4);
        reg.load_sharded("big", shards, [0.0; 3]).unwrap();
        assert!(reg.contains(&"big".to_string()));
        assert_eq!(reg.used_bytes(), 0, "lazy residency: nothing charged yet");

        let view = reg.get(&"big".to_string()).unwrap();
        let epoch = view.epoch();
        assert!(
            reg.ensure_shard_resident(&"big".to_string(), 0, epoch)
                .charged
        );
        assert!(
            reg.ensure_shard_resident(&"big".to_string(), 1, epoch)
                .charged
        );
        assert_eq!(reg.used_bytes(), 20 * PER_GAUSSIAN);

        // The third shard needs an eviction: shard 0 is the LRU resident.
        let residency = reg.ensure_shard_resident(&"big".to_string(), 2, epoch);
        assert!(residency.charged);
        assert!(
            residency.evicted_scenes.is_empty(),
            "shard-for-shard eviction unloads no whole scene"
        );
        assert_eq!(reg.used_bytes(), 20 * PER_GAUSSIAN);
        assert_eq!(reg.stats().shard_evictions, 1);
        assert_eq!(reg.stats().evictions, vec!["big#0".to_string()]);
        assert_eq!(
            reg.stats().eviction_count,
            0,
            "shard evictions must not count as scene evictions"
        );

        let layout = &reg.layouts()[0];
        assert_eq!((layout.shards, layout.resident_shards), (4, 2));
        assert_eq!(layout.gaussians, 40);
    }

    #[test]
    fn host_budget_bounds_total_sharded_bytes() {
        // Device budget 10, host budget 25: the host-side stores — which
        // charge the device pool nothing while non-resident — are still
        // bounded, so sharded loads cannot grow host memory without limit.
        let mut reg = SceneRegistry::with_budgets(10 * PER_GAUSSIAN, 25 * PER_GAUSSIAN);
        reg.load_sharded("a", shard_scene(&scene_of(20), 4), [0.0; 3])
            .unwrap();
        assert_eq!(reg.host_used_bytes(), 20 * PER_GAUSSIAN);
        let err = reg
            .load_sharded("b", shard_scene(&scene_of(10), 2), [0.0; 3])
            .unwrap_err();
        assert!(matches!(err, ServeError::Admission(e) if e.is_oom()));
        assert!(!reg.contains(&"b".to_string()));
        assert_eq!(reg.stats().rejections, 1);

        // Replacing "a" with a smaller scene nets against its old bytes...
        reg.load_sharded("a", shard_scene(&scene_of(12), 3), [0.0; 3])
            .unwrap();
        assert_eq!(reg.host_used_bytes(), 12 * PER_GAUSSIAN);
        // ...an oversized replacement is rejected with "a" left intact...
        let err = reg
            .load_sharded("a", shard_scene(&scene_of(40), 8), [0.0; 3])
            .unwrap_err();
        assert!(matches!(err, ServeError::Admission(_)));
        assert_eq!(reg.host_used_bytes(), 12 * PER_GAUSSIAN);
        assert!(reg.contains(&"a".to_string()));
        // ...and unloading releases the host bytes.
        assert!(reg.unload(&"a".to_string()));
        assert_eq!(reg.host_used_bytes(), 0);
    }

    #[test]
    fn sharded_scene_with_an_oversized_shard_is_rejected() {
        let mut reg = SceneRegistry::with_budget(5 * PER_GAUSSIAN);
        let shards = shard_scene(&scene_of(40), 4); // 10 Gaussians per shard
        let err = reg.load_sharded("big", shards, [0.0; 3]).unwrap_err();
        assert!(matches!(err, ServeError::Admission(e) if e.is_oom()));
        assert!(!reg.contains(&"big".to_string()));
        assert_eq!(reg.stats().rejections, 1);
    }

    #[test]
    fn shard_admission_evicts_idle_single_scenes() {
        // Budget 30 fits the 20-Gaussian idle scene plus one 10-Gaussian
        // shard; admitting the second shard must push the idle scene out.
        let mut reg = SceneRegistry::with_budget(30 * PER_GAUSSIAN);
        reg.load("idle", scene_of(20), [0.0; 3]).unwrap();
        let shards = shard_scene(&scene_of(20), 2);
        reg.load_sharded("big", shards, [0.0; 3]).unwrap();
        let epoch = reg.epoch(&"big".to_string()).unwrap();
        reg.ensure_shard_resident(&"big".to_string(), 0, epoch);
        assert!(
            reg.contains(&"idle".to_string()),
            "first shard fits beside it"
        );
        let residency = reg.ensure_shard_resident(&"big".to_string(), 1, epoch);
        assert!(!reg.contains(&"idle".to_string()), "second shard evicts it");
        assert_eq!(
            residency.evicted_scenes,
            vec!["idle".to_string()],
            "the unloaded scene must be surfaced for cache invalidation"
        );
        assert_eq!(reg.stats().eviction_count, 1);
        assert_eq!(reg.used_bytes(), 20 * PER_GAUSSIAN);
    }

    #[test]
    fn stale_epoch_ensures_are_no_ops() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        let shards = shard_scene(&scene_of(20), 2);
        reg.load_sharded("s", shards, [0.0; 3]).unwrap();
        let old_epoch = reg.epoch(&"s".to_string()).unwrap();
        // Replace the scene: the old epoch must no longer charge anything.
        let shards = shard_scene(&scene_of(20), 2);
        reg.load_sharded("s", shards, [0.0; 3]).unwrap();
        assert!(
            !reg.ensure_shard_resident(&"s".to_string(), 0, old_epoch)
                .charged
        );
        assert_eq!(reg.used_bytes(), 0);
        // And a vanished scene is equally inert.
        assert!(
            !reg.ensure_shard_resident(&"gone".to_string(), 0, old_epoch)
                .charged
        );
    }

    #[test]
    fn unloading_a_sharded_scene_frees_only_resident_bytes() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        let shards = shard_scene(&scene_of(30), 3);
        reg.load_sharded("s", shards, [0.0; 3]).unwrap();
        let epoch = reg.epoch(&"s".to_string()).unwrap();
        reg.ensure_shard_resident(&"s".to_string(), 1, epoch);
        assert_eq!(reg.used_bytes(), 10 * PER_GAUSSIAN);
        assert!(reg.unload(&"s".to_string()));
        assert_eq!(reg.used_bytes(), 0, "unload must balance the pool");
    }

    #[test]
    fn resident_shard_reuse_refreshes_recency_without_recharging() {
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        let shards = shard_scene(&scene_of(20), 2);
        reg.load_sharded("s", shards, [0.0; 3]).unwrap();
        let epoch = reg.epoch(&"s".to_string()).unwrap();
        reg.ensure_shard_resident(&"s".to_string(), 0, epoch);
        reg.ensure_shard_resident(&"s".to_string(), 1, epoch);
        // Touch shard 0 so shard 1 is LRU, then squeeze in a single scene
        // that only fits once one shard is evicted.
        reg.ensure_shard_resident(&"s".to_string(), 0, epoch);
        assert_eq!(reg.used_bytes(), 20 * PER_GAUSSIAN);
        reg.load("new", scene_of(10), [0.0; 3]).unwrap();
        assert_eq!(reg.stats().evictions, vec!["s#1".to_string()]);
    }
}
