//! The scene registry: loaded scenes plus memory-aware admission control.
//!
//! Scenes are admitted against a [`MemoryPool`] sized from a [`PlatformSpec`]
//! (or an explicit byte budget). A load that does not fit evicts
//! least-recently-used *idle* scenes until it does; a load larger than the
//! whole budget is rejected outright. This mirrors how a production renderer
//! must treat accelerator memory as the scarce resource when multiplexing
//! many trained scenes onto one device.

use std::collections::HashMap;
use std::sync::Arc;

use gs_core::gaussian::GaussianParams;
use gs_platform::{MemoryCategory, MemoryPool, PlatformSpec};

use crate::request::{SceneId, ServeError};

/// A scene resident in the registry.
#[derive(Debug, Clone)]
pub struct LoadedScene {
    /// Trained Gaussian parameters (shared with in-flight renders).
    pub params: Arc<GaussianParams>,
    /// Background color composited behind the splats.
    pub background: [f32; 3],
    /// Bytes charged against the registry's memory pool.
    pub bytes: u64,
    tick: u64,
}

/// Counters describing the registry's admission-control activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Scenes admitted.
    pub loads: u64,
    /// Loads rejected because the scene exceeds the whole budget.
    pub rejections: u64,
    /// Total scenes evicted since creation.
    pub eviction_count: u64,
    /// The most recent evictions in order (bounded to [`EVICTION_LOG`]
    /// entries so a long-running service's stats stay small).
    pub evictions: Vec<SceneId>,
}

/// How many recent evictions [`RegistryStats::evictions`] retains.
pub const EVICTION_LOG: usize = 64;

/// Registry of loaded scenes with LRU eviction under a memory budget.
pub struct SceneRegistry {
    scenes: HashMap<SceneId, LoadedScene>,
    pool: MemoryPool,
    tick: u64,
    stats: RegistryStats,
}

impl SceneRegistry {
    /// Creates a registry with an explicit byte budget.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            scenes: HashMap::new(),
            pool: MemoryPool::new("scene-registry", budget_bytes),
            tick: 0,
            stats: RegistryStats::default(),
        }
    }

    /// Creates a registry budgeted to the platform's GPU memory, the device a
    /// production service would hold resident scenes on.
    pub fn for_platform(platform: &PlatformSpec) -> Self {
        Self::with_budget(platform.gpu.mem_capacity)
    }

    /// Loads a scene, evicting least-recently-used scenes if needed, and
    /// returns the ids it evicted (in eviction order).
    ///
    /// Reloading an existing id replaces it (the old allocation is released
    /// first).
    ///
    /// # Errors
    ///
    /// [`ServeError::Admission`] if the scene alone exceeds the budget.
    pub fn load(
        &mut self,
        id: impl Into<SceneId>,
        params: Arc<GaussianParams>,
        background: [f32; 3],
    ) -> Result<Vec<SceneId>, ServeError> {
        let id = id.into();
        let bytes = params.total_bytes() as u64;
        // Reject a hopeless load before evicting anyone for it.
        if bytes > self.pool.capacity() {
            self.stats.rejections += 1;
            return Err(ServeError::Admission(gs_core::Error::OutOfMemory {
                device: self.pool.name().to_string(),
                requested_bytes: bytes as usize,
                available_bytes: self.pool.available() as usize,
                capacity_bytes: self.pool.capacity() as usize,
            }));
        }
        if let Some(old) = self.scenes.remove(&id) {
            self.pool.free(MemoryCategory::Parameters, old.bytes);
        }
        let mut victims = Vec::new();
        while self.pool.available() < bytes {
            let Some(victim) = self.lru_scene() else {
                break;
            };
            self.evict(&victim);
            victims.push(victim);
        }
        if let Err(e) = self.pool.alloc(MemoryCategory::Parameters, bytes) {
            self.stats.rejections += 1;
            return Err(ServeError::Admission(e));
        }
        self.tick += 1;
        self.scenes.insert(
            id,
            LoadedScene {
                params,
                background,
                bytes,
                tick: self.tick,
            },
        );
        self.stats.loads += 1;
        Ok(victims)
    }

    /// Fetches a scene for rendering, refreshing its LRU recency.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] if the id is not loaded.
    pub fn get(&mut self, id: &SceneId) -> Result<LoadedScene, ServeError> {
        self.tick += 1;
        let tick = self.tick;
        match self.scenes.get_mut(id) {
            Some(scene) => {
                scene.tick = tick;
                Ok(scene.clone())
            }
            None => Err(ServeError::UnknownScene(id.clone())),
        }
    }

    /// Looks a scene up *without* refreshing its LRU recency (used for
    /// consistency re-checks that must not count as traffic).
    pub fn peek(&self, id: &SceneId) -> Option<&LoadedScene> {
        self.scenes.get(id)
    }

    /// Removes a scene, releasing its memory. Returns whether it was loaded.
    pub fn unload(&mut self, id: &SceneId) -> bool {
        match self.scenes.remove(id) {
            Some(scene) => {
                self.pool.free(MemoryCategory::Parameters, scene.bytes);
                true
            }
            None => false,
        }
    }

    /// Whether `id` is currently loaded.
    pub fn contains(&self, id: &SceneId) -> bool {
        self.scenes.contains_key(id)
    }

    /// Ids of the loaded scenes, sorted for stable output.
    pub fn loaded(&self) -> Vec<SceneId> {
        let mut ids: Vec<SceneId> = self.scenes.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Bytes currently charged to loaded scenes.
    pub fn used_bytes(&self) -> u64 {
        self.pool.used_total()
    }

    /// Total admission budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.pool.capacity()
    }

    /// Admission-control counters (loads, rejections, eviction order).
    pub fn stats(&self) -> &RegistryStats {
        &self.stats
    }

    fn lru_scene(&self) -> Option<SceneId> {
        self.scenes
            .iter()
            .min_by_key(|(_, s)| s.tick)
            .map(|(id, _)| id.clone())
    }

    fn evict(&mut self, id: &SceneId) {
        if let Some(scene) = self.scenes.remove(id) {
            self.pool.free(MemoryCategory::Parameters, scene.bytes);
            self.stats.eviction_count += 1;
            self.stats.evictions.push(id.clone());
            if self.stats.evictions.len() > EVICTION_LOG {
                self.stats.evictions.remove(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::math::Vec3;

    fn scene_of(n: usize) -> Arc<GaussianParams> {
        let mut p = GaussianParams::with_capacity(n);
        for i in 0..n {
            p.push_isotropic(Vec3::new(i as f32, 0.0, 1.0), 0.1, [0.5; 3], 0.8);
        }
        Arc::new(p)
    }

    const PER_GAUSSIAN: u64 = 59 * 4;

    #[test]
    fn load_get_unload_roundtrip() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        assert!(reg.contains(&"a".to_string()));
        assert_eq!(reg.used_bytes(), 10 * PER_GAUSSIAN);
        let got = reg.get(&"a".to_string()).unwrap();
        assert_eq!(got.params.len(), 10);
        assert!(reg.unload(&"a".to_string()));
        assert_eq!(reg.used_bytes(), 0);
        assert!(!reg.unload(&"a".to_string()));
    }

    #[test]
    fn oversized_scene_is_rejected() {
        let mut reg = SceneRegistry::with_budget(5 * PER_GAUSSIAN);
        let err = reg.load("big", scene_of(10), [0.0; 3]).unwrap_err();
        assert!(matches!(err, ServeError::Admission(e) if e.is_oom()));
        assert_eq!(reg.stats().rejections, 1);
        assert!(reg.loaded().is_empty());
    }

    #[test]
    fn rejected_load_does_not_evict_residents() {
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("b", scene_of(10), [0.0; 3]).unwrap();
        let err = reg.load("big", scene_of(30), [0.0; 3]).unwrap_err();
        assert!(matches!(err, ServeError::Admission(e) if e.is_oom()));
        assert_eq!(
            reg.loaded(),
            vec!["a".to_string(), "b".to_string()],
            "a hopeless load must not push residents out first"
        );
        assert!(reg.stats().evictions.is_empty());
    }

    #[test]
    fn lru_scene_is_evicted_first() {
        // Budget fits two 10-Gaussian scenes.
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("b", scene_of(10), [0.0; 3]).unwrap();
        // Touch "a" so "b" becomes least recently used.
        reg.get(&"a".to_string()).unwrap();
        reg.load("c", scene_of(10), [0.0; 3]).unwrap();
        assert_eq!(reg.loaded(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(reg.stats().evictions, vec!["b".to_string()]);
    }

    #[test]
    fn eviction_cascades_until_the_load_fits() {
        let mut reg = SceneRegistry::with_budget(25 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("b", scene_of(10), [0.0; 3]).unwrap();
        // 20 Gaussians need both residents gone.
        let victims = reg.load("c", scene_of(20), [0.0; 3]).unwrap();
        assert_eq!(reg.loaded(), vec!["c".to_string()]);
        assert_eq!(
            victims,
            vec!["a".to_string(), "b".to_string()],
            "eviction must proceed in LRU order"
        );
        assert_eq!(reg.stats().evictions, victims);
        assert_eq!(reg.stats().eviction_count, 2);
    }

    #[test]
    fn reload_replaces_without_double_charging() {
        let mut reg = SceneRegistry::with_budget(100 * PER_GAUSSIAN);
        reg.load("a", scene_of(10), [0.0; 3]).unwrap();
        reg.load("a", scene_of(20), [0.0; 3]).unwrap();
        assert_eq!(reg.used_bytes(), 20 * PER_GAUSSIAN);
        assert_eq!(reg.loaded().len(), 1);
    }

    #[test]
    fn platform_budget_uses_gpu_capacity() {
        let platform = PlatformSpec::laptop_rtx4070m();
        let reg = SceneRegistry::for_platform(&platform);
        assert_eq!(reg.budget_bytes(), platform.gpu.mem_capacity);
    }

    #[test]
    fn unknown_scene_errors() {
        let mut reg = SceneRegistry::with_budget(1000);
        let err = reg.get(&"missing".to_string()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownScene(_)));
    }
}
