//! Optimizer hyper-parameters: per-group learning rates and schedules.

use gs_core::gaussian::ParamGroup;

/// Per-parameter-group learning rates, following the reference 3DGS recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupLrs {
    /// Learning rate for world-space means (before the decay schedule).
    pub means: f32,
    /// Learning rate for log-scales.
    pub log_scales: f32,
    /// Learning rate for quaternions.
    pub quats: f32,
    /// Learning rate for opacity logits.
    pub opacities: f32,
    /// Learning rate for SH color coefficients.
    pub sh: f32,
}

impl GroupLrs {
    /// The reference 3DGS learning rates (mean lr given for a unit scene
    /// extent; multiply by the scene extent for large scenes).
    pub fn reference() -> Self {
        Self {
            means: 1.6e-4,
            log_scales: 5.0e-3,
            quats: 1.0e-3,
            opacities: 5.0e-2,
            sh: 2.5e-3,
        }
    }

    /// Uniform learning rate for every group (useful in tests).
    pub fn uniform(lr: f32) -> Self {
        Self {
            means: lr,
            log_scales: lr,
            quats: lr,
            opacities: lr,
            sh: lr,
        }
    }

    /// The learning rate for one parameter group.
    pub fn for_group(&self, g: ParamGroup) -> f32 {
        match g {
            ParamGroup::Means => self.means,
            ParamGroup::LogScales => self.log_scales,
            ParamGroup::Quats => self.quats,
            ParamGroup::Opacities => self.opacities,
            ParamGroup::Sh => self.sh,
        }
    }

    /// Returns a copy with the mean learning rate scaled by `extent`
    /// (3DGS scales the position learning rate by the scene extent).
    pub fn with_scene_extent(mut self, extent: f32) -> Self {
        self.means *= extent;
        self
    }
}

impl Default for GroupLrs {
    fn default() -> Self {
        Self::reference()
    }
}

/// Exponential learning-rate decay schedule (log-linear interpolation), as
/// applied to the mean learning rate by 3DGS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialLr {
    /// Initial multiplier (applied at step 0).
    pub init: f32,
    /// Final multiplier (applied at `max_steps`).
    pub final_: f32,
    /// Number of steps over which to interpolate.
    pub max_steps: u64,
}

impl ExponentialLr {
    /// Creates a schedule decaying from `init` to `final_` over `max_steps`.
    pub fn new(init: f32, final_: f32, max_steps: u64) -> Self {
        Self {
            init,
            final_,
            max_steps,
        }
    }

    /// The 3DGS default: decay the mean learning rate by 100x over training.
    pub fn reference(max_steps: u64) -> Self {
        Self::new(1.0, 0.01, max_steps)
    }

    /// Multiplier at `step` (clamped to the schedule's range).
    pub fn multiplier(&self, step: u64) -> f32 {
        if self.max_steps == 0 {
            return self.final_;
        }
        let t = (step as f32 / self.max_steps as f32).clamp(0.0, 1.0);
        (self.init.max(1e-12).ln() * (1.0 - t) + self.final_.max(1e-12).ln() * t).exp()
    }
}

/// Full Adam configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// First-moment decay rate.
    pub beta1: f32,
    /// Second-moment decay rate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Per-group learning rates.
    pub lrs: GroupLrs,
    /// Optional decay schedule applied (multiplicatively) to the mean
    /// learning rate.
    pub mean_lr_decay: Option<ExponentialLr>,
}

impl AdamConfig {
    /// Adam defaults with the reference 3DGS learning rates and no decay.
    pub fn reference() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1.0e-15,
            lrs: GroupLrs::reference(),
            mean_lr_decay: None,
        }
    }

    /// Uniform learning rate, no decay (useful in tests).
    pub fn uniform(lr: f32) -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1.0e-15,
            lrs: GroupLrs::uniform(lr),
            mean_lr_decay: None,
        }
    }

    /// Effective learning rate for a group at a given step (applies the mean
    /// learning-rate decay schedule when configured).
    pub fn lr_at(&self, g: ParamGroup, step: u64) -> f32 {
        let base = self.lrs.for_group(g);
        if g == ParamGroup::Means {
            if let Some(decay) = &self.mean_lr_decay {
                return base * decay.multiplier(step);
            }
        }
        base
    }
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_lrs_differ_per_group() {
        let lrs = GroupLrs::reference();
        assert!(lrs.opacities > lrs.means);
        assert_eq!(lrs.for_group(ParamGroup::Sh), lrs.sh);
    }

    #[test]
    fn scene_extent_scales_only_means() {
        let lrs = GroupLrs::reference().with_scene_extent(10.0);
        assert!((lrs.means - 1.6e-3).abs() < 1e-9);
        assert!((lrs.sh - 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn exponential_decay_interpolates_log_linearly() {
        let sched = ExponentialLr::new(1.0, 0.01, 100);
        assert!((sched.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((sched.multiplier(100) - 0.01).abs() < 1e-6);
        assert!((sched.multiplier(50) - 0.1).abs() < 1e-3);
        // Past the end it stays at the final value.
        assert!((sched.multiplier(500) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn zero_step_schedule_uses_final() {
        let sched = ExponentialLr::new(1.0, 0.5, 0);
        assert_eq!(sched.multiplier(10), 0.5);
    }

    #[test]
    fn lr_at_applies_decay_only_to_means() {
        let mut cfg = AdamConfig::reference();
        cfg.mean_lr_decay = Some(ExponentialLr::new(1.0, 0.01, 10));
        let lr0 = cfg.lr_at(ParamGroup::Means, 0);
        let lr10 = cfg.lr_at(ParamGroup::Means, 10);
        assert!(lr10 < lr0);
        assert_eq!(cfg.lr_at(ParamGroup::Sh, 0), cfg.lr_at(ParamGroup::Sh, 10));
    }

    #[test]
    fn uniform_config_has_equal_lrs() {
        let cfg = AdamConfig::uniform(0.01);
        for g in ParamGroup::ALL {
            assert_eq!(cfg.lr_at(g, 3), 0.01);
        }
    }
}
