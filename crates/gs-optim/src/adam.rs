//! Dense (exact) and sparse Adam optimizers.
//!
//! [`DenseAdam`] is the mathematical reference: every Gaussian's momentum,
//! variance and parameters are updated every step, exactly as PyTorch's Adam
//! does. This is what the GPU-only baseline and the CPU optimizer of the
//! naive offloading baseline run, and it is the ground truth the deferred
//! optimizer is validated against.
//!
//! [`SparseAdam`] only updates Gaussians with non-zero gradients and lets the
//! momentum of the others silently stall. It is *not* equivalent to Adam; it
//! exists as an ablation point showing why the paper needed the deferred
//! formulation instead of simply skipping untouched Gaussians.

use gs_core::gaussian::{GaussianGrads, GaussianParams, ParamGroup, SparseGrads};

use crate::config::AdamConfig;
use crate::stats::StepStats;

/// First and second moment state with the same layout as the parameters.
#[derive(Debug, Clone, Default)]
pub struct MomentState {
    /// First moments (momentum).
    pub m: GaussianGrads,
    /// Second moments (variance).
    pub v: GaussianGrads,
}

impl MomentState {
    /// Zero-initialized state for `n` Gaussians.
    pub fn zeros(n: usize) -> Self {
        Self {
            m: GaussianGrads::zeros(n),
            v: GaussianGrads::zeros(n),
        }
    }

    /// Number of Gaussians covered.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.m.len() == 0
    }

    /// Bytes occupied by the state (two f32 copies of every parameter).
    pub fn total_bytes(&self) -> usize {
        self.m.total_bytes() + self.v.total_bytes()
    }

    /// Appends zero state for `additional` new Gaussians (used after
    /// densification clones/splits).
    pub fn append_zeros(&mut self, additional: usize) {
        let grown = MomentState::zeros(self.len() + additional);
        let mut new_m = grown.m;
        let mut new_v = grown.v;
        for g in ParamGroup::ALL {
            let dim = g.dim();
            let old_len = self.len() * dim;
            new_m.group_mut(g)[..old_len].copy_from_slice(self.m.group(g));
            new_v.group_mut(g)[..old_len].copy_from_slice(self.v.group(g));
        }
        self.m = new_m;
        self.v = new_v;
    }

    /// Keeps state only for Gaussians where `mask` is `true` (used after
    /// pruning).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` does not match the state length.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.len());
        let keep: Vec<usize> = (0..self.len()).filter(|&i| mask[i]).collect();
        let mut out = MomentState::zeros(keep.len());
        for g in ParamGroup::ALL {
            let dim = g.dim();
            for (new_i, &old_i) in keep.iter().enumerate() {
                for k in 0..dim {
                    out.m.group_mut(g)[new_i * dim + k] = self.m.group(g)[old_i * dim + k];
                    out.v.group_mut(g)[new_i * dim + k] = self.v.group(g)[old_i * dim + k];
                }
            }
        }
        *self = out;
    }
}

/// Exact Adam: updates every parameter and optimizer state each step.
#[derive(Debug, Clone)]
pub struct DenseAdam {
    config: AdamConfig,
    state: MomentState,
    step: u64,
}

impl DenseAdam {
    /// Creates an optimizer for `n` Gaussians.
    pub fn new(config: AdamConfig, n: usize) -> Self {
        Self {
            config,
            state: MomentState::zeros(n),
            step: 0,
        }
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of optimizer steps taken so far.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// The moment state (for inspection and memory accounting).
    pub fn state(&self) -> &MomentState {
        &self.state
    }

    /// Grows the state for newly added Gaussians.
    pub fn append_zeros(&mut self, additional: usize) {
        self.state.append_zeros(additional);
    }

    /// Drops state for pruned Gaussians.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        self.state.retain_mask(mask);
    }

    /// Advances the step counter and returns the new (1-based) step number.
    pub fn advance(&mut self) -> u64 {
        self.step += 1;
        self.step
    }

    /// Performs a full Adam step over all groups with dense gradients.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` cover different numbers of Gaussians or
    /// do not match the optimizer state size.
    pub fn step(&mut self, params: &mut GaussianParams, grads: &GaussianGrads) -> StepStats {
        let t = self.advance();
        self.apply_groups(params, grads, &ParamGroup::ALL, t)
    }

    /// Performs an Adam update at explicit step `t` restricted to the listed
    /// parameter groups (all Gaussians).
    ///
    /// GS-Scale uses this to update the GPU-resident geometric groups and the
    /// host-resident non-geometric groups as two separate phases of the same
    /// training step.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches between `params`, `grads` and the state.
    pub fn apply_groups(
        &mut self,
        params: &mut GaussianParams,
        grads: &GaussianGrads,
        groups: &[ParamGroup],
        t: u64,
    ) -> StepStats {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(
            params.len(),
            self.state.len(),
            "optimizer state length mismatch"
        );
        let n = params.len();
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.eps;
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);

        let mut dims = 0usize;
        for &g in groups {
            dims += g.dim();
            let lr = self.config.lr_at(g, t);
            let p = params.group_mut(g);
            let gr = grads.group(g);
            let m = self.state.m.group_mut(g);
            let v = self.state.v.group_mut(g);
            for i in 0..p.len() {
                let grad = gr[i];
                let m_new = b1 * m[i] + (1.0 - b1) * grad;
                let v_new = b2 * v[i] + (1.0 - b2) * grad * grad;
                m[i] = m_new;
                v[i] = v_new;
                let m_hat = m_new / bc1;
                let v_hat = v_new / bc2;
                p[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }

        StepStats {
            updated_gaussians: n,
            total_gaussians: n,
            bytes_read: n as f64 * 4.0 * dims as f64 * 4.0,
            bytes_written: n as f64 * 3.0 * dims as f64 * 4.0,
            flops: n as f64 * dims as f64 * 12.0,
        }
    }
}

/// Adam restricted to Gaussians with non-zero gradients (ablation baseline;
/// *not* equivalent to Adam because skipped momentum does not decay).
#[derive(Debug, Clone)]
pub struct SparseAdam {
    inner: DenseAdam,
}

impl SparseAdam {
    /// Creates an optimizer for `n` Gaussians.
    pub fn new(config: AdamConfig, n: usize) -> Self {
        Self {
            inner: DenseAdam::new(config, n),
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn current_step(&self) -> u64 {
        self.inner.step
    }

    /// Grows the state for newly added Gaussians.
    pub fn append_zeros(&mut self, additional: usize) {
        self.inner.append_zeros(additional);
    }

    /// Drops state for pruned Gaussians.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        self.inner.retain_mask(mask);
    }

    /// Updates only the Gaussians listed in `sparse.ids`.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range or sizes mismatch.
    pub fn step(&mut self, params: &mut GaussianParams, sparse: &SparseGrads) -> StepStats {
        self.inner.step += 1;
        let t = self.inner.step;
        let n_total = params.len();
        assert_eq!(n_total, self.inner.state.len(), "state length mismatch");
        let b1 = self.inner.config.beta1;
        let b2 = self.inner.config.beta2;
        let eps = self.inner.config.eps;
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);

        for (k, &id) in sparse.ids.iter().enumerate() {
            let i = id as usize;
            assert!(i < n_total, "gaussian id out of range");
            for g in ParamGroup::ALL {
                let dim = g.dim();
                let lr = self.inner.config.lr_at(g, t);
                let p = params.group_mut(g);
                let gr = sparse.grads.group(g);
                let m = self.inner.state.m.group_mut(g);
                let v = self.inner.state.v.group_mut(g);
                for d in 0..dim {
                    let grad = gr[k * dim + d];
                    let idx = i * dim + d;
                    let m_new = b1 * m[idx] + (1.0 - b1) * grad;
                    let v_new = b2 * v[idx] + (1.0 - b2) * grad * grad;
                    m[idx] = m_new;
                    v[idx] = v_new;
                    p[idx] -= lr * (m_new / bc1) / ((v_new / bc2).sqrt() + eps);
                }
            }
        }
        StepStats::sparse(sparse.len(), n_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::math::Vec3;

    fn params(n: usize) -> GaussianParams {
        let mut p = GaussianParams::new();
        for i in 0..n {
            p.push_isotropic(Vec3::new(i as f32, 0.0, 1.0), 0.1, [0.4, 0.5, 0.6], 0.6);
        }
        p
    }

    fn grads_with(n: usize, ids: &[usize], value: f32) -> GaussianGrads {
        let mut g = GaussianGrads::zeros(n);
        for &i in ids {
            g.means[3 * i] = value;
            g.opacities[i] = value * 0.5;
            g.sh[48 * i] = value * 0.25;
        }
        g
    }

    #[test]
    fn single_adam_step_matches_manual_computation() {
        let cfg = AdamConfig::uniform(0.1);
        let mut p = params(1);
        let before = p.means[0];
        let mut opt = DenseAdam::new(cfg, 1);
        let mut g = GaussianGrads::zeros(1);
        g.means[0] = 2.0;
        opt.step(&mut p, &g);
        // t=1: m=0.2, v=0.004, mhat=2.0, vhat=4.0; step = 0.1*2/(2+eps)=0.1.
        assert!((before - p.means[0] - 0.1).abs() < 1e-5);
    }

    #[test]
    fn adam_moves_parameters_against_gradient_sign() {
        let cfg = AdamConfig::uniform(0.01);
        let mut p = params(2);
        let before0 = p.means[0];
        let mut opt = DenseAdam::new(cfg, 2);
        let g = grads_with(2, &[0], 1.0);
        opt.step(&mut p, &g);
        assert!(p.means[0] < before0);
    }

    #[test]
    fn zero_gradient_first_step_leaves_parameters_unchanged() {
        let cfg = AdamConfig::uniform(0.01);
        let mut p = params(3);
        let snapshot = p.clone();
        let mut opt = DenseAdam::new(cfg, 3);
        opt.step(&mut p, &GaussianGrads::zeros(3));
        assert_eq!(p, snapshot);
    }

    #[test]
    fn momentum_keeps_moving_parameters_after_gradient_stops() {
        // This is the property that forces the baseline to update everything:
        // after one non-zero gradient, subsequent zero-gradient steps still
        // change the parameter because the momentum is non-zero.
        let cfg = AdamConfig::uniform(0.01);
        let mut p = params(1);
        let mut opt = DenseAdam::new(cfg, 1);
        let mut g = GaussianGrads::zeros(1);
        g.means[0] = 1.0;
        opt.step(&mut p, &g);
        let after_first = p.means[0];
        opt.step(&mut p, &GaussianGrads::zeros(1));
        assert!(
            p.means[0] < after_first,
            "momentum should keep decreasing the mean"
        );
    }

    #[test]
    fn group_restriction_updates_only_those_groups() {
        let cfg = AdamConfig::uniform(0.05);
        let mut p = params(2);
        let snapshot = p.clone();
        let mut opt = DenseAdam::new(cfg, 2);
        let g = grads_with(2, &[0, 1], 1.0);
        let t = opt.advance();
        opt.apply_groups(&mut p, &g, &ParamGroup::GEOMETRIC, t);
        assert_ne!(p.means, snapshot.means);
        assert_eq!(p.opacities, snapshot.opacities);
        assert_eq!(p.sh, snapshot.sh);
    }

    #[test]
    fn step_stats_reflect_group_dims() {
        let cfg = AdamConfig::uniform(0.05);
        let mut p = params(4);
        let g = grads_with(4, &[0], 1.0);
        let mut opt = DenseAdam::new(cfg, 4);
        let t = opt.advance();
        let stats = opt.apply_groups(&mut p, &g, &ParamGroup::GEOMETRIC, t);
        // 10 of 59 parameters touched.
        assert!((stats.total_bytes() - 4.0 * 7.0 * 10.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn append_and_retain_state() {
        let cfg = AdamConfig::uniform(0.05);
        let mut p = params(2);
        let mut opt = DenseAdam::new(cfg, 2);
        let g = grads_with(2, &[0, 1], 1.0);
        opt.step(&mut p, &g);
        let m_before = opt.state().m.means[0];
        assert!(m_before != 0.0);
        opt.append_zeros(2);
        assert_eq!(opt.state().len(), 4);
        assert_eq!(opt.state().m.means[0], m_before);
        assert_eq!(opt.state().m.means[3 * 3], 0.0);
        opt.retain_mask(&[false, true, true, false]);
        assert_eq!(opt.state().len(), 2);
        assert_eq!(opt.state().m.means[0], opt.state().m.means[0]);
    }

    #[test]
    fn sparse_adam_only_touches_listed_ids() {
        let cfg = AdamConfig::uniform(0.05);
        let mut p = params(3);
        let untouched_mean = p.means[3 * 2];
        let mut opt = SparseAdam::new(cfg, 3);
        let mut packed = GaussianGrads::zeros(1);
        packed.means[0] = 1.0;
        let sparse = SparseGrads {
            ids: vec![1],
            grads: packed,
        };
        let stats = opt.step(&mut p, &sparse);
        assert_eq!(stats.updated_gaussians, 1);
        assert_eq!(p.means[3 * 2], untouched_mean);
        assert_ne!(p.means[3], 1.0);
    }

    #[test]
    fn sparse_adam_differs_from_dense_adam_over_time() {
        // After a gradient stops, dense Adam keeps applying momentum while
        // sparse Adam freezes the Gaussian: the two diverge. This is why the
        // paper needed the deferred formulation.
        let cfg = AdamConfig::uniform(0.01);
        let mut p_dense = params(1);
        let mut p_sparse = p_dense.clone();
        let mut dense = DenseAdam::new(cfg, 1);
        let mut sparse_opt = SparseAdam::new(cfg, 1);

        let mut dense_g = GaussianGrads::zeros(1);
        dense_g.means[0] = 1.0;
        let mut packed = GaussianGrads::zeros(1);
        packed.means[0] = 1.0;
        let sparse_g = SparseGrads {
            ids: vec![0],
            grads: packed,
        };
        dense.step(&mut p_dense, &dense_g);
        sparse_opt.step(&mut p_sparse, &sparse_g);
        assert!((p_dense.means[0] - p_sparse.means[0]).abs() < 1e-7);

        // Now three steps with no gradient.
        for _ in 0..3 {
            dense.step(&mut p_dense, &GaussianGrads::zeros(1));
            sparse_opt.step(
                &mut p_sparse,
                &SparseGrads {
                    ids: vec![],
                    grads: GaussianGrads::zeros(0),
                },
            );
        }
        assert!((p_dense.means[0] - p_sparse.means[0]).abs() > 1e-5);
    }
}
