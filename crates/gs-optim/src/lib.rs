//! Optimizers for 3D Gaussian Splatting training, including the paper's
//! *deferred optimizer update*.
//!
//! * [`config`] — per-parameter-group learning rates (the 3DGS recipe uses a
//!   different learning rate for means, scales, rotations, opacities and SH
//!   coefficients) and the exponential decay schedule applied to the mean
//!   learning rate.
//! * [`adam`] — the exact dense Adam reference (updates every Gaussian every
//!   step, as PyTorch does), plus a *sparse* Adam variant that only touches
//!   Gaussians with non-zero gradients (not mathematically equivalent; kept
//!   as an ablation baseline).
//! * [`sgd`] — SGD with momentum, demonstrating that the deferred-update
//!   idea applies to any momentum-based optimizer.
//! * [`deferred`] — the paper's deferred Adam (Section 4.3): zero-gradient
//!   Gaussians are skipped and a 4-bit counter plus precomputed scaling
//!   lookup tables reconstructs their momentum, variance and weights exactly
//!   (up to an ε-factoring approximation) when they next receive a gradient
//!   or when the counter saturates.
//! * [`stats`] — per-step memory-traffic accounting consumed by the platform
//!   timing model (the deferred update's benefit is precisely this traffic
//!   reduction).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adam;
pub mod config;
pub mod deferred;
pub mod sgd;
pub mod stats;

pub use adam::{DenseAdam, SparseAdam};
pub use config::{AdamConfig, ExponentialLr, GroupLrs};
pub use deferred::DeferredAdam;
pub use sgd::SgdMomentum;
pub use stats::StepStats;
