//! SGD with momentum, included to show the deferred-update idea generalizes
//! beyond Adam (the paper notes it applies to "most momentum-based
//! optimizers, such as SGD with momentum and AdamW").

use gs_core::gaussian::{GaussianGrads, GaussianParams, ParamGroup};

use crate::config::GroupLrs;
use crate::stats::StepStats;

/// SGD with (heavy-ball) momentum over all Gaussian parameter groups.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lrs: GroupLrs,
    momentum: f32,
    velocity: GaussianGrads,
    step: u64,
}

impl SgdMomentum {
    /// Creates an optimizer for `n` Gaussians.
    pub fn new(lrs: GroupLrs, momentum: f32, n: usize) -> Self {
        Self {
            lrs,
            momentum,
            velocity: GaussianGrads::zeros(n),
            step: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Grows the velocity state for newly added Gaussians.
    pub fn append_zeros(&mut self, additional: usize) {
        let old = std::mem::take(&mut self.velocity);
        let mut grown = GaussianGrads::zeros(old.len() + additional);
        for g in ParamGroup::ALL {
            let dim = g.dim();
            grown.group_mut(g)[..old.len() * dim].copy_from_slice(old.group(g));
        }
        self.velocity = grown;
    }

    /// Performs one SGD-with-momentum step: `v = μ v + g`, `w -= lr v`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` cover different numbers of Gaussians or
    /// do not match the state size.
    pub fn step(&mut self, params: &mut GaussianParams, grads: &GaussianGrads) -> StepStats {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "state length mismatch");
        self.step += 1;
        let n = params.len();
        for g in ParamGroup::ALL {
            let lr = self.lrs.for_group(g);
            let p = params.group_mut(g);
            let gr = grads.group(g);
            let v = self.velocity.group_mut(g);
            for i in 0..p.len() {
                v[i] = self.momentum * v[i] + gr[i];
                p[i] -= lr * v[i];
            }
        }
        let d = GaussianParams::PARAMS_PER_GAUSSIAN as f64;
        StepStats {
            updated_gaussians: n,
            total_gaussians: n,
            bytes_read: n as f64 * 3.0 * d * 4.0,
            bytes_written: n as f64 * 2.0 * d * 4.0,
            flops: n as f64 * d * 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::math::Vec3;

    fn params(n: usize) -> GaussianParams {
        let mut p = GaussianParams::new();
        for i in 0..n {
            p.push_isotropic(Vec3::new(i as f32, 0.0, 1.0), 0.1, [0.5; 3], 0.5);
        }
        p
    }

    #[test]
    fn sgd_step_matches_manual() {
        let mut p = params(1);
        let before = p.means[0];
        let mut opt = SgdMomentum::new(GroupLrs::uniform(0.1), 0.9, 1);
        let mut g = GaussianGrads::zeros(1);
        g.means[0] = 2.0;
        opt.step(&mut p, &g);
        assert!((before - p.means[0] - 0.2).abs() < 1e-6);
        // Second step with zero grad still moves due to momentum.
        let after_first = p.means[0];
        opt.step(&mut p, &GaussianGrads::zeros(1));
        assert!((after_first - p.means[0] - 0.18).abs() < 1e-6);
    }

    #[test]
    fn momentum_zero_is_plain_sgd() {
        let mut p = params(1);
        let mut opt = SgdMomentum::new(GroupLrs::uniform(0.5), 0.0, 1);
        let mut g = GaussianGrads::zeros(1);
        g.opacities[0] = 1.0;
        let o_before = p.opacities[0];
        opt.step(&mut p, &g);
        assert!((o_before - p.opacities[0] - 0.5).abs() < 1e-6);
        let o_after = p.opacities[0];
        opt.step(&mut p, &GaussianGrads::zeros(1));
        assert_eq!(p.opacities[0], o_after);
    }

    #[test]
    fn append_zeros_grows_state() {
        let mut opt = SgdMomentum::new(GroupLrs::uniform(0.1), 0.9, 2);
        let mut p = params(2);
        let mut g = GaussianGrads::zeros(2);
        g.means[0] = 1.0;
        opt.step(&mut p, &g);
        opt.append_zeros(3);
        let mut p5 = params(5);
        // Stepping with the grown state must not panic and must keep moving
        // the first Gaussian by its momentum.
        let before = p5.means[0];
        opt.step(&mut p5, &GaussianGrads::zeros(5));
        assert!(p5.means[0] < before);
        assert_eq!(opt.current_step(), 2);
    }
}
