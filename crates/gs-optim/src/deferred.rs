//! The paper's *deferred optimizer update* (Section 4.3, Figure 10).
//!
//! Adam keeps updating parameters whose gradients are zero because the
//! momentum terms decay geometrically rather than vanishing. The deferred
//! update exploits that this decay is *deterministic*: for a Gaussian whose
//! gradient has been zero for `d` consecutive steps,
//!
//! ```text
//! m_t = β₁^(d+1) · m_(t-d-1) + (1-β₁) · g_t
//! v_t = β₂^(d+1) · v_(t-d-1) + (1-β₂) · g_t²
//! w_t ≈ w_(t-d) − m_(t-d-1)/(√v_(t-d-1) + ε) · w_scale(d)
//! ```
//!
//! where `w_scale(d)` is a precomputable per-delay constant (the ε term is
//! factored out of the skipped steps — the only approximation in GS-Scale,
//! validated in Table 3 of the paper and in this module's equivalence tests).
//!
//! Each Gaussian carries a 4-bit defer counter (stored in a `u8`): updates
//! are skipped while the gradient stays zero, and the state is restored
//! either when the gradient becomes non-zero or when the counter saturates
//! at [`DeferredAdam::MAX_DEFER`] (so at most 1/15 ≈ 6.7 % of updates are
//! "wasted" on saturation).

use gs_core::gaussian::{GaussianParams, ParamGroup, SparseGrads};

use crate::adam::MomentState;
use crate::config::AdamConfig;
use crate::stats::StepStats;

/// Deferred Adam optimizer (see module docs).
#[derive(Debug, Clone)]
pub struct DeferredAdam {
    config: AdamConfig,
    state: MomentState,
    /// Per-Gaussian defer counter: number of consecutive steps skipped.
    counters: Vec<u8>,
    step: u64,
}

impl DeferredAdam {
    /// Maximum number of consecutive deferred steps before a forced update
    /// (the counter is conceptually 4 bits wide).
    pub const MAX_DEFER: u8 = 15;

    /// Creates an optimizer for `n` Gaussians.
    pub fn new(config: AdamConfig, n: usize) -> Self {
        Self {
            config,
            state: MomentState::zeros(n),
            counters: vec![0; n],
            step: 0,
        }
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of optimizer steps taken so far.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// The defer counters (for inspection in tests and reports).
    pub fn counters(&self) -> &[u8] {
        &self.counters
    }

    /// The moment state (for memory accounting).
    pub fn state(&self) -> &MomentState {
        &self.state
    }

    /// Grows the state for newly added Gaussians (densification).
    pub fn append_zeros(&mut self, additional: usize) {
        self.state.append_zeros(additional);
        self.counters.extend(std::iter::repeat_n(0, additional));
    }

    /// Drops state for pruned Gaussians.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` does not match the number of Gaussians.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.counters.len());
        self.state.retain_mask(mask);
        let mut kept = Vec::with_capacity(self.counters.len());
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                kept.push(self.counters[i]);
            }
        }
        self.counters = kept;
    }

    /// Per-delay weight-restoration scale factors for one group at step `t`.
    ///
    /// `w_scale[d]` is the factor such that a parameter whose gradient was
    /// zero for the `d` steps `t-d .. t-1` satisfies
    /// `w_t ≈ w_(t-d) − w_scale[d] · m_(t-d-1) / (√v_(t-d-1) + ε)`.
    fn weight_scale_lut(&self, group: ParamGroup, t: u64) -> [f32; Self::MAX_DEFER as usize + 1] {
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let mut lut = [0.0f32; Self::MAX_DEFER as usize + 1];
        for (d, slot) in lut.iter_mut().enumerate().skip(1) {
            let mut acc = 0.0f64;
            for l in 0..d {
                // The skipped step index: s = t - d + l  (1-based like `t`).
                let s = t as i64 - d as i64 + l as i64;
                if s < 1 {
                    continue;
                }
                let lr = self.config.lr_at(group, s as u64) as f64;
                let bc1 = 1.0 - (b1 as f64).powi(s as i32);
                let bc2 = 1.0 - (b2 as f64).powi(s as i32);
                let m_factor = (b1 as f64).powi(l as i32 + 1) / bc1;
                let v_factor = ((b2 as f64).powi(l as i32 + 1) / bc2).sqrt();
                acc += lr * m_factor / v_factor;
            }
            *slot = acc as f32;
        }
        lut
    }

    /// Performs a deferred Adam step for the listed groups using sparse
    /// gradients.
    ///
    /// Gaussians in `sparse.ids` and Gaussians whose counter has saturated
    /// are restored and updated; everything else only has its counter
    /// incremented.
    ///
    /// # Panics
    ///
    /// Panics if sizes mismatch or ids are out of range.
    pub fn step_groups(
        &mut self,
        params: &mut GaussianParams,
        sparse: &SparseGrads,
        groups: &[ParamGroup],
    ) -> StepStats {
        self.step += 1;
        let t = self.step;
        let n = params.len();
        assert_eq!(n, self.state.len(), "optimizer state length mismatch");
        assert_eq!(n, self.counters.len(), "counter length mismatch");

        // Which Gaussians need an actual update this step.
        let mut packed_index: Vec<Option<usize>> = vec![None; n];
        for (k, &id) in sparse.ids.iter().enumerate() {
            assert!((id as usize) < n, "gaussian id out of range");
            packed_index[id as usize] = Some(k);
        }
        let update_ids: Vec<usize> = (0..n)
            .filter(|&i| packed_index[i].is_some() || self.counters[i] >= Self::MAX_DEFER)
            .collect();

        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.eps;
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);

        let mut dims = 0usize;
        for &g in groups {
            dims += g.dim();
            let lut = self.weight_scale_lut(g, t);
            let dim = g.dim();
            let lr = self.config.lr_at(g, t);
            let p = params.group_mut(g);
            let gr = sparse.grads.group(g);
            let m = self.state.m.group_mut(g);
            let v = self.state.v.group_mut(g);
            for &i in &update_ids {
                let delay = self.counters[i] as usize;
                let w_scale = lut[delay.min(Self::MAX_DEFER as usize)];
                let m_scale = b1.powi(delay as i32 + 1);
                let v_scale = b2.powi(delay as i32 + 1);
                let packed = packed_index[i];
                for k in 0..dim {
                    let idx = i * dim + k;
                    let grad = packed.map_or(0.0, |pk| gr[pk * dim + k]);
                    let m_old = m[idx];
                    let v_old = v[idx];
                    // 1. Restore the weight across the skipped steps.
                    let mut w = p[idx];
                    if delay > 0 {
                        w -= w_scale * m_old / (v_old.sqrt() + eps);
                    }
                    // 2. Restore moments and fold in the current gradient.
                    let m_new = m_scale * m_old + (1.0 - b1) * grad;
                    let v_new = v_scale * v_old + (1.0 - b2) * grad * grad;
                    // 3. Standard Adam update at step t.
                    let m_hat = m_new / bc1;
                    let v_hat = v_new / bc2;
                    w -= lr * m_hat / (v_hat.sqrt() + eps);
                    p[idx] = w;
                    m[idx] = m_new;
                    v[idx] = v_new;
                }
            }
        }

        // Counter maintenance: increment everyone, reset the updated ones.
        for c in &mut self.counters {
            *c = c.saturating_add(1).min(Self::MAX_DEFER);
        }
        for &i in &update_ids {
            self.counters[i] = 0;
        }

        let updated = update_ids.len();
        StepStats {
            updated_gaussians: updated,
            total_gaussians: n,
            bytes_read: updated as f64 * 4.0 * dims as f64 * 4.0 + n as f64,
            bytes_written: updated as f64 * 3.0 * dims as f64 * 4.0 + n as f64,
            flops: updated as f64 * dims as f64 * 16.0,
        }
    }

    /// Performs a deferred Adam step over all parameter groups.
    pub fn step(&mut self, params: &mut GaussianParams, sparse: &SparseGrads) -> StepStats {
        self.step_groups(params, sparse, &ParamGroup::ALL)
    }

    /// Restores every still-deferred Gaussian to its exact value as of the
    /// last completed optimizer step and resets all defer counters.
    ///
    /// Training must flush before any consumer reads the full parameter set
    /// directly from host memory — densification, quality evaluation, and
    /// checkpointing — because the stored values of deferred Gaussians are
    /// intentionally stale in between. Flushing touches only Gaussians with a
    /// non-zero counter, so its cost is bounded by one deferred update.
    pub fn flush(&mut self, params: &mut GaussianParams) -> StepStats {
        self.flush_groups(params, &ParamGroup::ALL)
    }

    /// Like [`DeferredAdam::flush`] but restricted to the listed groups.
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the optimizer state size.
    pub fn flush_groups(
        &mut self,
        params: &mut GaussianParams,
        groups: &[ParamGroup],
    ) -> StepStats {
        let n = params.len();
        assert_eq!(n, self.state.len(), "optimizer state length mismatch");
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.eps;
        // Skipped steps for a counter of `d` at current step `T` are
        // T-d+1 ..= T, which is exactly the window the step-(T+1) LUT covers.
        let t_lut = self.step + 1;

        let pending: Vec<usize> = (0..n).filter(|&i| self.counters[i] > 0).collect();
        let mut dims = 0usize;
        for &g in groups {
            dims += g.dim();
            let lut = self.weight_scale_lut(g, t_lut);
            let dim = g.dim();
            let p = params.group_mut(g);
            let m = self.state.m.group_mut(g);
            let v = self.state.v.group_mut(g);
            for &i in &pending {
                let delay = self.counters[i] as usize;
                let w_scale = lut[delay.min(Self::MAX_DEFER as usize)];
                let m_scale = b1.powi(delay as i32);
                let v_scale = b2.powi(delay as i32);
                for k in 0..dim {
                    let idx = i * dim + k;
                    p[idx] -= w_scale * m[idx] / (v[idx].sqrt() + eps);
                    m[idx] *= m_scale;
                    v[idx] *= v_scale;
                }
            }
        }
        for &i in &pending {
            self.counters[i] = 0;
        }
        let updated = pending.len();
        StepStats {
            updated_gaussians: updated,
            total_gaussians: n,
            bytes_read: updated as f64 * 3.0 * dims as f64 * 4.0 + n as f64,
            bytes_written: updated as f64 * 3.0 * dims as f64 * 4.0 + n as f64,
            flops: updated as f64 * dims as f64 * 8.0,
        }
    }

    /// Computes, without mutating anything, the *current* (fully restored)
    /// values of the Gaussians listed in `ids`, packed in `ids` order.
    ///
    /// Groups not listed in `groups` are copied from the stored parameters
    /// unchanged. This is what the GS-Scale trainer uses to stage accurate
    /// parameter values for the GPU forward pass while the host copies of
    /// deferred Gaussians remain stale.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn peek_restored(
        &self,
        params: &GaussianParams,
        ids: &[u32],
        groups: &[ParamGroup],
    ) -> GaussianParams {
        let n = params.len();
        let eps = self.config.eps;
        // The skipped window of a counter value `d` at current step `T` is
        // T-d+1 ..= T, exactly what the step-(T+1) LUT covers.
        let t_lut = self.step + 1;
        let mut out = params.gather(ids);
        for &g in groups {
            let lut = self.weight_scale_lut(g, t_lut);
            let dim = g.dim();
            let m_all = self.state.m.group(g);
            let v_all = self.state.v.group(g);
            let p_out = out.group_mut(g);
            for (slot, &id) in ids.iter().enumerate() {
                let i = id as usize;
                assert!(i < n, "gaussian id out of range");
                let delay = self.counters[i] as usize;
                if delay == 0 {
                    continue;
                }
                let w_scale = lut[delay.min(Self::MAX_DEFER as usize)];
                for k in 0..dim {
                    let idx = i * dim + k;
                    p_out[slot * dim + k] -= w_scale * m_all[idx] / (v_all[idx].sqrt() + eps);
                }
            }
        }
        out
    }

    /// Computes, without mutating any optimizer state or stored parameters,
    /// the values the Gaussians listed in `ids` would have *after* the next
    /// optimizer step (step `current_step + 1`) is applied with the pending
    /// sparse gradients.
    ///
    /// This implements *parameter forwarding*: GS-Scale pre-computes the
    /// post-update values of exactly the Gaussians the next iteration's
    /// forward pass needs (restoring any deferred state on the fly), ships
    /// them to the GPU, and lets the actual CPU update happen lazily. For
    /// Gaussians the lazy step commits, the forwarded and committed values
    /// are identical; for Gaussians that stay deferred, the forwarded value
    /// is the exact dense-Adam value they will eventually be restored to.
    ///
    /// The returned container is packed in `ids` order.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn peek_forwarded(
        &self,
        params: &GaussianParams,
        sparse: &SparseGrads,
        ids: &[u32],
        groups: &[ParamGroup],
    ) -> GaussianParams {
        let n = params.len();
        let t = self.step + 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.eps;
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);

        let mut packed_index = std::collections::HashMap::new();
        for (k, &id) in sparse.ids.iter().enumerate() {
            packed_index.insert(id, k);
        }

        let mut out = params.gather(ids);
        for &g in groups {
            let lut = self.weight_scale_lut(g, t);
            let dim = g.dim();
            let lr = self.config.lr_at(g, t);
            let gr = sparse.grads.group(g);
            let m_all = self.state.m.group(g);
            let v_all = self.state.v.group(g);
            let p_out = out.group_mut(g);
            for (slot, &id) in ids.iter().enumerate() {
                let i = id as usize;
                assert!(i < n, "gaussian id out of range");
                let delay = self.counters[i] as usize;
                let w_scale = lut[delay.min(Self::MAX_DEFER as usize)];
                let m_scale = b1.powi(delay as i32 + 1);
                let v_scale = b2.powi(delay as i32 + 1);
                let packed = packed_index.get(&id).copied();
                for k in 0..dim {
                    let idx = i * dim + k;
                    let grad = packed.map_or(0.0, |pk| gr[pk * dim + k]);
                    let m_old = m_all[idx];
                    let v_old = v_all[idx];
                    let mut w = p_out[slot * dim + k];
                    if delay > 0 {
                        w -= w_scale * m_old / (v_old.sqrt() + eps);
                    }
                    let m_new = m_scale * m_old + (1.0 - b1) * grad;
                    let v_new = v_scale * v_old + (1.0 - b2) * grad * grad;
                    w -= lr * (m_new / bc1) / ((v_new / bc2).sqrt() + eps);
                    p_out[slot * dim + k] = w;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::DenseAdam;
    use gs_core::gaussian::GaussianGrads;
    use gs_core::math::Vec3;

    fn params(n: usize) -> GaussianParams {
        let mut p = GaussianParams::new();
        for i in 0..n {
            p.push_isotropic(
                Vec3::new(i as f32 * 0.5, -(i as f32), 1.0 + i as f32 * 0.1),
                0.1 + 0.02 * i as f32,
                [0.3, 0.6, 0.8],
                0.5 + 0.04 * (i % 5) as f32,
            );
        }
        p
    }

    /// Builds sparse gradients for the listed ids with deterministic values.
    fn sparse_for(ids: &[u32], n_total: usize, seed: f32) -> SparseGrads {
        let _ = n_total;
        let mut packed = GaussianGrads::zeros(ids.len());
        for (k, &id) in ids.iter().enumerate() {
            let base = seed + id as f32 * 0.13;
            packed.means[3 * k] = base.sin() * 0.4;
            packed.means[3 * k + 1] = base.cos() * 0.2;
            packed.log_scales[3 * k + 2] = (base * 1.7).sin() * 0.1;
            packed.quats[4 * k + 1] = (base * 0.9).cos() * 0.05;
            packed.opacities[k] = (base * 2.3).sin() * 0.3;
            packed.sh[48 * k] = (base * 0.7).cos() * 0.2;
            packed.sh[48 * k + 17] = (base * 1.1).sin() * 0.1;
        }
        SparseGrads {
            ids: ids.to_vec(),
            grads: packed,
        }
    }

    fn max_abs_diff(a: &GaussianParams, b: &GaussianParams) -> f32 {
        let mut worst = 0.0f32;
        for g in ParamGroup::ALL {
            for (x, y) in a.group(g).iter().zip(b.group(g)) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }

    /// The core correctness property from the paper: training with the
    /// deferred optimizer produces the same parameters as exact dense Adam.
    #[test]
    fn deferred_matches_dense_adam_over_sparse_schedule() {
        let cfg = AdamConfig::reference();
        let n = 12;
        let mut p_dense = params(n);
        let mut p_deferred = p_dense.clone();
        let mut dense = DenseAdam::new(cfg, n);
        let mut deferred = DeferredAdam::new(cfg, n);

        // A schedule where different subsets are "visible" each step and some
        // Gaussians stay invisible for long stretches.
        let schedule: Vec<Vec<u32>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 3, 4],
            vec![0, 5],
            vec![5, 6, 7],
            vec![2, 3],
            vec![8],
            vec![0, 1, 2, 3, 4, 5],
            vec![9, 10],
            vec![1],
            vec![0, 11],
            vec![4, 7, 9],
            vec![2],
        ];

        for (step, ids) in schedule.iter().enumerate() {
            let sparse = sparse_for(ids, n, step as f32 * 0.31);
            let dense_grads = sparse.to_dense(n);
            dense.step(&mut p_dense, &dense_grads);
            deferred.step(&mut p_deferred, &sparse);
        }
        // While Gaussians are deferred their stored values are intentionally
        // stale; flushing restores them to the exact dense-Adam values.
        deferred.flush(&mut p_deferred);
        let diff = max_abs_diff(&p_dense, &p_deferred);
        assert!(diff < 1e-4, "max parameter divergence {diff}");
    }

    #[test]
    fn stale_values_exist_before_flush_and_vanish_after() {
        // Documents the deferred-state contract: between commits the host
        // copy of an untouched Gaussian lags dense Adam, and flush closes the
        // gap exactly.
        let cfg = AdamConfig::reference();
        let n = 2;
        let mut p_dense = params(n);
        let mut p_deferred = p_dense.clone();
        let mut dense = DenseAdam::new(cfg, n);
        let mut deferred = DeferredAdam::new(cfg, n);
        // Step 1 touches both; steps 2-3 touch only Gaussian 0.
        for (step, ids) in [vec![0u32, 1], vec![0], vec![0]].iter().enumerate() {
            let sparse = sparse_for(ids, n, step as f32);
            dense.step(&mut p_dense, &sparse.to_dense(n));
            deferred.step(&mut p_deferred, &sparse);
        }
        let stale = (p_dense.opacities[1] - p_deferred.opacities[1]).abs();
        assert!(
            stale > 1e-6,
            "expected a stale deferred value, diff {stale}"
        );
        deferred.flush(&mut p_deferred);
        let diff = max_abs_diff(&p_dense, &p_deferred);
        assert!(diff < 1e-5, "flush should close the gap, diff {diff}");
    }

    #[test]
    fn counter_saturation_forces_update() {
        let cfg = AdamConfig::uniform(0.01);
        let n = 2;
        let mut p = params(n);
        let mut opt = DeferredAdam::new(cfg, n);
        // Give Gaussian 0 one gradient so it has momentum, then starve it.
        let s = sparse_for(&[0], n, 0.0);
        opt.step(&mut p, &s);
        assert_eq!(opt.counters()[0], 0);
        let empty = SparseGrads::default();
        for _ in 0..DeferredAdam::MAX_DEFER as usize {
            opt.step(&mut p, &empty);
        }
        // After MAX_DEFER skipped steps the counter has saturated...
        assert_eq!(opt.counters()[0], DeferredAdam::MAX_DEFER);
        // ...and the very next step forces a restoration + reset. Gaussian 0
        // has non-zero momentum on the mean's y component (the seed-0
        // gradient there is cos(0) * 0.2), so the committed restoration must
        // move it.
        let before = p.means[1];
        let stats = opt.step(&mut p, &empty);
        assert_eq!(stats.updated_gaussians, 1);
        assert_eq!(opt.counters()[0], 0);
        assert_ne!(
            p.means[1], before,
            "forced update should commit the deferred motion"
        );
    }

    #[test]
    fn deferred_matches_dense_through_long_starvation() {
        // Long enough that the 4-bit counter saturates at least once.
        let cfg = AdamConfig::reference();
        let n = 3;
        let mut p_dense = params(n);
        let mut p_deferred = p_dense.clone();
        let mut dense = DenseAdam::new(cfg, n);
        let mut deferred = DeferredAdam::new(cfg, n);

        // One initial step touches everything, then only Gaussian 0 gets
        // gradients for 40 steps, then Gaussian 2 reappears.
        let mut schedule: Vec<Vec<u32>> = vec![vec![0, 1, 2]];
        for _ in 0..40 {
            schedule.push(vec![0]);
        }
        schedule.push(vec![2]);

        for (step, ids) in schedule.iter().enumerate() {
            let sparse = sparse_for(ids, n, 0.7 + step as f32 * 0.11);
            dense.step(&mut p_dense, &sparse.to_dense(n));
            deferred.step(&mut p_deferred, &sparse);
        }
        deferred.flush(&mut p_deferred);
        let diff = max_abs_diff(&p_dense, &p_deferred);
        assert!(diff < 5e-4, "max parameter divergence {diff}");
    }

    #[test]
    fn deferred_touches_far_fewer_gaussians() {
        let cfg = AdamConfig::reference();
        let n = 1000;
        let mut p = params(n);
        let mut opt = DeferredAdam::new(cfg, n);
        // Warm up so counters are spread out.
        let warm = sparse_for(&(0..n as u32).collect::<Vec<_>>(), n, 0.1);
        opt.step(&mut p, &warm);
        // Now only 5% receive gradients.
        let ids: Vec<u32> = (0..50).collect();
        let sparse = sparse_for(&ids, n, 0.9);
        let stats = opt.step(&mut p, &sparse);
        assert_eq!(stats.updated_gaussians, 50);
        let dense_traffic = StepStats::dense(n).total_bytes();
        assert!(stats.total_bytes() < dense_traffic * 0.1);
    }

    #[test]
    fn peek_forwarded_matches_dense_adam_next_step() {
        // Parameter forwarding must hand the GPU exactly the values dense
        // Adam would produce after the pending optimizer step — for every
        // forwarded Gaussian, whether or not the lazy CPU step will commit it
        // this iteration.
        let cfg = AdamConfig::reference();
        let n = 8;
        let mut p_deferred = params(n);
        let mut p_dense = p_deferred.clone();
        let mut deferred = DeferredAdam::new(cfg, n);
        let mut dense = DenseAdam::new(cfg, n);

        // A few steps of history so momenta and counters are non-trivial.
        for (step, ids) in [vec![0u32, 1, 2, 3], vec![2, 3, 4], vec![0, 5]]
            .iter()
            .enumerate()
        {
            let sparse = sparse_for(ids, n, step as f32);
            deferred.step(&mut p_deferred, &sparse);
            dense.step(&mut p_dense, &sparse.to_dense(n));
        }

        // Pending gradients from the "previous" iteration.
        let pending = sparse_for(&[1, 2, 6], n, 3.3);
        // The next iteration needs Gaussians {1, 2, 5, 7}.
        let needed: Vec<u32> = vec![1, 2, 5, 7];
        let forwarded = deferred.peek_forwarded(&p_deferred, &pending, &needed, &ParamGroup::ALL);

        // Reference: dense Adam applies the same pending step, then gather.
        dense.step(&mut p_dense, &pending.to_dense(n));
        let reference = p_dense.gather(&needed);

        let mut worst = 0.0f32;
        for g in ParamGroup::ALL {
            for (a, b) in forwarded.group(g).iter().zip(reference.group(g)) {
                worst = worst.max((a - b).abs());
            }
        }
        assert!(worst < 1e-4, "forwarded/dense divergence {worst}");

        // The committed lazy update must agree with the forwarded values for
        // the Gaussians it actually updates.
        deferred.step(&mut p_deferred, &pending);
        let committed = p_deferred.gather(&needed);
        for g in ParamGroup::ALL {
            let dim = g.dim();
            for (slot, id) in needed.iter().enumerate() {
                if *id == 1 || *id == 2 {
                    for k in 0..dim {
                        let a = forwarded.group(g)[slot * dim + k];
                        let b = committed.group(g)[slot * dim + k];
                        assert!((a - b).abs() < 1e-6, "id {id} group {g:?} slot {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn append_and_retain_keep_counters_aligned() {
        let cfg = AdamConfig::uniform(0.01);
        let n = 4;
        let mut p = params(n);
        let mut opt = DeferredAdam::new(cfg, n);
        opt.step(&mut p, &sparse_for(&[0, 2], n, 0.5));
        assert_eq!(opt.counters()[1], 1);
        assert_eq!(opt.counters()[0], 0);
        opt.append_zeros(2);
        assert_eq!(opt.counters().len(), 6);
        assert_eq!(opt.counters()[4], 0);
        opt.retain_mask(&[false, true, true, false, true, true]);
        assert_eq!(opt.counters().len(), 4);
        assert_eq!(opt.counters()[0], 1);
    }

    #[test]
    #[should_panic(expected = "gaussian id out of range")]
    fn out_of_range_id_panics() {
        let cfg = AdamConfig::uniform(0.01);
        let mut p = params(2);
        let mut opt = DeferredAdam::new(cfg, 2);
        let bad = sparse_for(&[5], 2, 0.0);
        opt.step(&mut p, &bad);
    }
}
