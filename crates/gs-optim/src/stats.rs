//! Per-step accounting of the memory traffic an optimizer update generates.
//!
//! The paper's deferred optimizer update exists to reduce exactly this
//! traffic: a full Adam step touches `7 * D` 32-bit values per Gaussian
//! (reads of parameter, gradient, momentum and variance; writes of parameter,
//! momentum and variance), while a deferred step touches only the Gaussians
//! being updated plus one byte of counter per Gaussian. Trainers feed these
//! numbers to the platform timing model to turn them into CPU time.

use gs_core::gaussian::GaussianParams;

/// Memory traffic and arithmetic performed by one optimizer step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepStats {
    /// Number of Gaussians whose parameters and states were actually updated.
    pub updated_gaussians: usize,
    /// Total number of Gaussians managed by the optimizer.
    pub total_gaussians: usize,
    /// Bytes read from memory during the step.
    pub bytes_read: f64,
    /// Bytes written to memory during the step.
    pub bytes_written: f64,
    /// Floating-point operations performed.
    pub flops: f64,
}

impl StepStats {
    /// Traffic of a full (dense) momentum-optimizer update over `n`
    /// Gaussians: 4 reads + 3 writes of all 59 parameters each.
    pub fn dense(n: usize) -> Self {
        let d = GaussianParams::PARAMS_PER_GAUSSIAN as f64;
        Self {
            updated_gaussians: n,
            total_gaussians: n,
            bytes_read: n as f64 * 4.0 * d * 4.0,
            bytes_written: n as f64 * 3.0 * d * 4.0,
            flops: n as f64 * d * 12.0,
        }
    }

    /// Traffic of a deferred update that touched `updated` of `total`
    /// Gaussians plus one counter byte per Gaussian (read and write).
    pub fn deferred(updated: usize, total: usize) -> Self {
        let d = GaussianParams::PARAMS_PER_GAUSSIAN as f64;
        Self {
            updated_gaussians: updated,
            total_gaussians: total,
            bytes_read: updated as f64 * 4.0 * d * 4.0 + total as f64,
            bytes_written: updated as f64 * 3.0 * d * 4.0 + total as f64,
            // Restoration adds a handful of extra multiplies per value.
            flops: updated as f64 * d * 16.0,
        }
    }

    /// Traffic of a sparse update over `updated` Gaussians (no counters).
    pub fn sparse(updated: usize, total: usize) -> Self {
        let mut s = Self::dense(updated);
        s.total_gaussians = total;
        s
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Combines the stats of two sequential phases.
    pub fn combine(&self, other: &StepStats) -> StepStats {
        StepStats {
            updated_gaussians: self.updated_gaussians + other.updated_gaussians,
            total_gaussians: self.total_gaussians.max(other.total_gaussians),
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            flops: self.flops + other.flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_traffic_is_7d_words_per_gaussian() {
        let s = StepStats::dense(100);
        let expected = 100.0 * 7.0 * 59.0 * 4.0;
        assert!((s.total_bytes() - expected).abs() < 1e-6);
    }

    #[test]
    fn deferred_traffic_scales_with_active_ratio() {
        let dense = StepStats::dense(10_000);
        let deferred = StepStats::deferred(1_000, 10_000);
        // Roughly 10x less traffic (counters add a small constant).
        let ratio = dense.total_bytes() / deferred.total_bytes();
        assert!(ratio > 8.0 && ratio < 11.0, "ratio {ratio}");
    }

    #[test]
    fn combine_adds_traffic() {
        let a = StepStats::dense(10);
        let b = StepStats::dense(20);
        let c = a.combine(&b);
        assert_eq!(c.updated_gaussians, 30);
        assert!((c.total_bytes() - (a.total_bytes() + b.total_bytes())).abs() < 1e-9);
    }
}
