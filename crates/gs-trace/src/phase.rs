//! SimPoint-style phase clustering: reduce a long trace to a few weighted
//! representative windows.
//!
//! SPEC CPU2026-style representativeness methodology applied to serving
//! workloads: slice the trace into fixed-length time windows, summarize
//! each window as a feature vector (arrival rate, scene mix, pose
//! locality), cluster the vectors with seeded k-means, and pick each
//! cluster's *medoid* window as its representative. Replaying only the
//! representatives — each weighted by its cluster's share of all requests —
//! predicts full-trace metrics (hit rate, latency percentiles) at a
//! fraction of the replay cost. The prediction error is measurable (replay
//! both, compare), and the whole pipeline is deterministic in the seed.

use std::ops::Range;

use gs_core::kmeans::kmeans;

use crate::format::{Trace, TraceEvent};

/// Configuration of a phase-clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseConfig {
    /// Window length in microseconds.
    pub window_us: u64,
    /// Number of clusters (phases) to find; clamped to the number of
    /// non-empty windows.
    pub clusters: usize,
    /// Scene-mix histogram buckets (scene ids are hashed into these).
    pub scene_buckets: usize,
    /// k-means seed.
    pub seed: u64,
    /// k-means iteration cap.
    pub max_iters: usize,
}

impl PhaseConfig {
    /// A config with the given window length and cluster count and the
    /// standard feature/clustering settings.
    pub fn new(window_us: u64, clusters: usize) -> Self {
        Self {
            window_us: window_us.max(1),
            clusters: clusters.max(1),
            scene_buckets: 8,
            seed: 0,
            max_iters: 64,
        }
    }
}

/// One time window of a trace, summarized as a feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseWindow {
    /// Window start, microseconds from trace start.
    pub start_us: u64,
    /// Index range of the window's events in the trace.
    pub range: Range<usize>,
    /// Raw (unnormalized) feature vector:
    /// `[arrival rate, scene-mix fractions..., pose locality]`.
    pub features: Vec<f64>,
}

impl PhaseWindow {
    /// Number of events in the window.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the window holds no events.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// One cluster's representative window.
#[derive(Debug, Clone, PartialEq)]
pub struct Representative {
    /// Index into [`Phases::windows`].
    pub window: usize,
    /// Cluster the window represents.
    pub cluster: usize,
    /// The cluster's share of all trace events (weights sum to 1).
    pub weight: f64,
}

/// The result of phase clustering a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Phases {
    /// The non-empty windows, in time order.
    pub windows: Vec<PhaseWindow>,
    /// Cluster assigned to each window.
    pub assignments: Vec<usize>,
    /// One medoid window per non-empty cluster, weighted by event share.
    pub representatives: Vec<Representative>,
}

impl Phases {
    /// The events of a representative window.
    pub fn events<'a>(&self, trace: &'a Trace, rep: &Representative) -> &'a [TraceEvent] {
        &trace.events[self.windows[rep.window].range.clone()]
    }

    /// Fraction of all trace events inside representative windows — the
    /// replay-cost reduction factor.
    pub fn replay_fraction(&self, trace: &Trace) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        let replayed: usize = self
            .representatives
            .iter()
            .map(|r| self.windows[r.window].len())
            .sum();
        replayed as f64 / trace.len() as f64
    }
}

/// FNV-1a hash of a scene id, for bucketing the scene-mix histogram.
fn scene_bucket(scene: &str, buckets: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scene.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % buckets as u64) as usize
}

/// Slices `trace` into fixed windows and computes each non-empty window's
/// raw feature vector.
pub fn windows(trace: &Trace, window_us: u64, scene_buckets: usize) -> Vec<PhaseWindow> {
    let window_us = window_us.max(1);
    let scene_buckets = scene_buckets.max(1);
    let mut out = Vec::new();
    let mut start_idx = 0usize;
    while start_idx < trace.events.len() {
        let window_index = trace.events[start_idx].at_us / window_us;
        let start_us = window_index * window_us;
        let end_us = start_us + window_us;
        let mut end_idx = start_idx;
        while end_idx < trace.events.len() && trace.events[end_idx].at_us < end_us {
            end_idx += 1;
        }
        let events = &trace.events[start_idx..end_idx];

        let rate = events.len() as f64 / (window_us as f64 / 1e6);
        let mut mix = vec![0.0f64; scene_buckets];
        for e in events {
            mix[scene_bucket(&e.scene, scene_buckets)] += 1.0;
        }
        for m in &mut mix {
            *m /= events.len() as f64;
        }
        // Pose locality: mean distance between consecutive camera centers.
        // A window of dwelling clients scores near 0, a window of fast
        // tours or scattered clients scores high.
        let locality = if events.len() > 1 {
            let mut acc = 0.0f64;
            for pair in events.windows(2) {
                let (a, b) = (&pair[0].position, &pair[1].position);
                acc += (0..3)
                    .map(|i| (a[i] as f64 - b[i] as f64).powi(2))
                    .sum::<f64>()
                    .sqrt();
            }
            acc / (events.len() - 1) as f64
        } else {
            0.0
        };

        let mut features = Vec::with_capacity(scene_buckets + 2);
        features.push(rate);
        features.extend_from_slice(&mix);
        features.push(locality);
        out.push(PhaseWindow {
            start_us,
            range: start_idx..end_idx,
            features,
        });
        start_idx = end_idx;
    }
    out
}

/// Min-max normalizes each feature dimension to `[0, 1]` across windows
/// (constant dimensions collapse to 0), so rate (requests/s) cannot drown
/// out scene-mix fractions in the k-means distance.
fn normalize(windows: &[PhaseWindow]) -> Vec<Vec<f64>> {
    if windows.is_empty() {
        return Vec::new();
    }
    let dim = windows[0].features.len();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for w in windows {
        for (d, &v) in w.features.iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    windows
        .iter()
        .map(|w| {
            w.features
                .iter()
                .enumerate()
                .map(|(d, &v)| {
                    if hi[d] > lo[d] {
                        (v - lo[d]) / (hi[d] - lo[d])
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Clusters a trace's windows into phases and picks weighted medoid
/// representatives. Deterministic in `config.seed`.
pub fn cluster(trace: &Trace, config: &PhaseConfig) -> Phases {
    let windows = windows(trace, config.window_us, config.scene_buckets);
    if windows.is_empty() {
        return Phases {
            windows,
            assignments: Vec::new(),
            representatives: Vec::new(),
        };
    }
    let points = normalize(&windows);
    let k = config.clusters.min(points.len());
    let result = kmeans(&points, k, config.seed, config.max_iters);

    let total_events: usize = windows.iter().map(PhaseWindow::len).sum();
    let mut representatives = Vec::new();
    for c in 0..result.centroids.len() {
        let Some(medoid) = result.medoid(&points, c) else {
            continue;
        };
        let cluster_events: usize = windows
            .iter()
            .zip(&result.assignments)
            .filter(|&(_, &a)| a == c)
            .map(|(w, _)| w.len())
            .sum();
        representatives.push(Representative {
            window: medoid,
            cluster: c,
            weight: cluster_events as f64 / total_events as f64,
        });
    }
    Phases {
        windows,
        assignments: result.assignments,
        representatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceEvent;

    /// A trace with two obvious phases: a dense scene-A phase then a sparse
    /// scene-B phase with scattered poses.
    fn two_phase_trace() -> Trace {
        let mut events = Vec::new();
        // Phase 1: 0..500ms, 10 events per 100ms window, tight poses.
        for i in 0..50u64 {
            let mut e = TraceEvent::new(i * 10_000, "alpha", "c0");
            e.position = [5.0, 1.0, -5.0];
            events.push(e);
        }
        // Phase 2: 500..1000ms, 2 events per 100ms window, scattered poses.
        for i in 0..10u64 {
            let mut e = TraceEvent::new(500_000 + i * 50_000, "beta", "c1");
            e.position = [i as f32 * 3.0, 1.0, -(i as f32) * 2.0];
            events.push(e);
        }
        Trace::new(events)
    }

    #[test]
    fn windows_partition_the_trace() {
        let trace = two_phase_trace();
        let ws = windows(&trace, 100_000, 4);
        let covered: usize = ws.iter().map(PhaseWindow::len).sum();
        assert_eq!(covered, trace.len(), "every event in exactly one window");
        for w in &ws {
            assert!(!w.is_empty(), "only non-empty windows are emitted");
            for e in &trace.events[w.range.clone()] {
                assert!(e.at_us >= w.start_us && e.at_us < w.start_us + 100_000);
            }
        }
        // Rate feature: phase-1 windows see 100 req/s, phase-2 windows 20.
        assert!(ws[0].features[0] > ws.last().unwrap().features[0]);
    }

    #[test]
    fn clustering_separates_the_phases() {
        let trace = two_phase_trace();
        let phases = cluster(&trace, &PhaseConfig::new(100_000, 2));
        assert_eq!(phases.representatives.len(), 2);
        // All phase-1 windows share a cluster, all phase-2 windows the
        // other.
        let split = phases
            .windows
            .iter()
            .position(|w| w.start_us >= 500_000)
            .unwrap();
        let first = phases.assignments[0];
        assert!(phases.assignments[..split].iter().all(|&a| a == first));
        assert!(phases.assignments[split..].iter().all(|&a| a != first));
        // Weights are event shares: 50/60 and 10/60.
        let total: f64 = phases.representatives.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let heavy = phases
            .representatives
            .iter()
            .map(|r| r.weight)
            .fold(0.0f64, f64::max);
        assert!((heavy - 50.0 / 60.0).abs() < 1e-9);
        // Representatives lie in their own cluster, and replaying them
        // costs a fraction of the full trace.
        for rep in &phases.representatives {
            assert_eq!(phases.assignments[rep.window], rep.cluster);
            assert!(!phases.events(&trace, rep).is_empty());
        }
        assert!(phases.replay_fraction(&trace) < 0.5);
    }

    #[test]
    fn clustering_is_deterministic() {
        let trace = two_phase_trace();
        let config = PhaseConfig::new(100_000, 3);
        assert_eq!(cluster(&trace, &config), cluster(&trace, &config));
    }

    #[test]
    fn degenerate_traces_cluster_cleanly() {
        let empty = cluster(&Trace::default(), &PhaseConfig::new(1000, 4));
        assert!(empty.representatives.is_empty());
        let single = Trace::new(vec![TraceEvent::new(0, "s", "c")]);
        let phases = cluster(&single, &PhaseConfig::new(1000, 4));
        assert_eq!(phases.representatives.len(), 1);
        assert!((phases.representatives[0].weight - 1.0).abs() < 1e-12);
    }
}
