//! `gs-trace`: workload capture, synthetic trace generation and
//! SimPoint-style phase clustering for the 3DGS serving tier.
//!
//! The serving stack (scheduler, frame cache, sharding, cluster tier) makes
//! performance claims that must be tested against *production-shaped*
//! traffic, and compared across changes. This crate supplies the workload
//! layer those claims stand on:
//!
//! * [`format`] — the `GSTR` binary trace format: a versioned,
//!   length-prefixed, lossless encoding of a request stream
//!   ([`TraceEvent`]: scene id, pose, deadline, arrival timestamp,
//!   client/session id, outcome, latency).
//! * [`recorder`] — the capture side: a [`TraceRecorder`] the `gs-serve`
//!   HTTP front-end and the `gs-cluster` coordinator push one event into
//!   per answered request.
//! * [`synth`] — seeded synthetic generators (Zipf scene popularity,
//!   diurnal curves, flash crowds, per-client camera tours): the standard
//!   scenario suite, deterministic in the seed.
//! * [`phase`] — SimPoint-style phase clustering: window a trace into
//!   feature vectors, k-means them, and replay only weighted medoid
//!   windows, with a measurable predicted-vs-full error.
//!
//! The deterministic *replayer* that drives a `RenderServer` or cluster
//! `Coordinator` from a trace lives in `gs-bench` (it needs the serving
//! crates; this crate deliberately depends only on `gs-core` so every
//! serving layer can depend on it).
//!
//! # Example
//!
//! ```
//! use gs_trace::{generate, PhaseConfig, SynthConfig, Trace};
//!
//! let trace = generate(&SynthConfig::zipf(200));
//! let blob = trace.encode();
//! assert_eq!(Trace::decode(&blob).unwrap(), trace);
//!
//! let phases = gs_trace::cluster(&trace, &PhaseConfig::new(500_000, 3));
//! let total: f64 = phases.representatives.iter().map(|r| r.weight).sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod format;
pub mod phase;
pub mod recorder;
pub mod synth;

pub use format::{Outcome, Trace, TraceError, TraceEvent, TRACE_MAGIC, TRACE_VERSION};
pub use phase::{cluster, windows, PhaseConfig, PhaseWindow, Phases, Representative};
pub use recorder::TraceRecorder;
pub use synth::{generate, scene_name, LoadShape, SynthConfig};
