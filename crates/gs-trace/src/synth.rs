//! Seeded synthetic workload generators: the standard scenario suite the
//! serving benches replay.
//!
//! Real serving traffic has structure that ad-hoc closed loops do not
//! reproduce: scene popularity is Zipfian (a few hot scenes, a long cold
//! tail), load follows diurnal curves and occasionally spikes into flash
//! crowds, and each client walks a *camera tour* — consecutive requests
//! from one session have nearby poses, which is exactly what pose-quantized
//! frame caches exploit. Every generator here is deterministic in
//! `(config, seed)`: the same config always produces the same [`Trace`],
//! byte for byte.

use gs_core::rng::{Rng64, Zipf};

use crate::format::{Trace, TraceEvent};

/// The arrival-intensity curve of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadShape {
    /// Flat arrival rate.
    Constant,
    /// Sinusoidal day/night load: `cycles` full periods over the trace.
    Diurnal {
        /// Number of full day/night periods across the trace duration.
        cycles: f64,
    },
    /// A burst on top of flat background load.
    FlashCrowd {
        /// Burst start as a fraction of the trace duration (`0..1`).
        at: f64,
        /// Burst width as a fraction of the trace duration.
        width: f64,
        /// Burst intensity as a multiple of the background rate.
        magnitude: f64,
        /// During the burst, requests concentrate on this many scenes.
        hot_scenes: usize,
    },
}

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of distinct scenes (`scene-00`, `scene-01`, ...).
    pub scenes: usize,
    /// Zipf exponent of scene popularity (`0` = uniform, `~1` = classic).
    pub zipf_exponent: f64,
    /// Number of client sessions, each walking its own camera tour.
    pub clients: usize,
    /// Total requests to generate.
    pub requests: usize,
    /// Trace duration in seconds (arrival timestamps span this).
    pub duration_s: f64,
    /// Probability a client *dwells* — repeats its previous pose exactly —
    /// instead of advancing its tour. Dwells on a popular scene are what
    /// give a pose-quantized frame cache its hits.
    pub dwell: f64,
    /// Image width of every request.
    pub width: u32,
    /// Image height of every request.
    pub height: u32,
    /// SH degree of every request.
    pub sh_degree: u8,
    /// Deadline in milliseconds stamped on every request (`0` = none).
    pub deadline_ms: u32,
    /// Generation seed.
    pub seed: u64,
    /// Arrival-intensity curve.
    pub shape: LoadShape,
}

impl SynthConfig {
    /// Zipf-popularity steady load: the baseline cache/scheduler scenario.
    pub fn zipf(requests: usize) -> Self {
        Self {
            scenes: 12,
            zipf_exponent: 1.0,
            clients: 16,
            requests,
            duration_s: 10.0,
            dwell: 0.35,
            width: 64,
            height: 48,
            sh_degree: 2,
            deadline_ms: 0,
            seed: 1,
            shape: LoadShape::Constant,
        }
    }

    /// Day/night sinusoidal load over Zipf popularity.
    pub fn diurnal(requests: usize) -> Self {
        Self {
            shape: LoadShape::Diurnal { cycles: 2.0 },
            seed: 2,
            ..Self::zipf(requests)
        }
    }

    /// A flash crowd: flat background load with a 4x burst over 15% of the
    /// trace, concentrated on two suddenly-hot scenes.
    pub fn flash_crowd(requests: usize) -> Self {
        Self {
            shape: LoadShape::FlashCrowd {
                at: 0.45,
                width: 0.15,
                magnitude: 4.0,
                hot_scenes: 2,
            },
            seed: 3,
            ..Self::zipf(requests)
        }
    }

    /// Smooth per-client camera tours over a few scenes, no dwells: the
    /// pose-locality scenario (every request a new nearby pose).
    pub fn camera_tour(requests: usize) -> Self {
        Self {
            scenes: 4,
            clients: 8,
            dwell: 0.0,
            seed: 4,
            ..Self::zipf(requests)
        }
    }

    /// The scenario's display name, used in reports and file names.
    pub fn scenario_name(&self) -> &'static str {
        match self.shape {
            LoadShape::Constant if self.dwell == 0.0 => "tour",
            LoadShape::Constant => "zipf",
            LoadShape::Diurnal { .. } => "diurnal",
            LoadShape::FlashCrowd { .. } => "flash",
        }
    }
}

/// Canonical name of the scene at popularity rank `rank`.
pub fn scene_name(rank: usize) -> String {
    format!("scene-{rank:02}")
}

impl LoadShape {
    /// Relative arrival intensity at trace fraction `u` in `[0, 1)`.
    fn rate(&self, u: f64) -> f64 {
        match *self {
            LoadShape::Constant => 1.0,
            LoadShape::Diurnal { cycles } => {
                (1.0 + 0.75 * (std::f64::consts::TAU * cycles * u).sin()).max(0.05)
            }
            LoadShape::FlashCrowd {
                at,
                width,
                magnitude,
                ..
            } => {
                if u >= at && u < at + width {
                    1.0 + magnitude
                } else {
                    1.0
                }
            }
        }
    }
}

/// Inverse-CDF arrival sampler over a [`LoadShape`]: precomputes the
/// cumulative intensity on a fine grid, then maps a uniform quantile to a
/// trace-fraction arrival time.
struct ArrivalCurve {
    cum: Vec<f64>,
}

impl ArrivalCurve {
    const GRID: usize = 2048;

    fn new(shape: &LoadShape) -> Self {
        let mut cum = Vec::with_capacity(Self::GRID);
        let mut acc = 0.0;
        for g in 0..Self::GRID {
            acc += shape.rate((g as f64 + 0.5) / Self::GRID as f64);
            cum.push(acc);
        }
        for c in &mut cum {
            *c /= acc;
        }
        Self { cum }
    }

    /// Trace fraction in `[0, 1)` at which quantile `u` of all arrivals has
    /// occurred.
    fn at(&self, u: f64) -> f64 {
        let cell = self.cum.partition_point(|&c| c < u);
        let cell = cell.min(Self::GRID - 1);
        let lo = if cell == 0 { 0.0 } else { self.cum[cell - 1] };
        let hi = self.cum[cell];
        let frac = if hi > lo { (u - lo) / (hi - lo) } else { 0.0 };
        ((cell as f64 + frac) / Self::GRID as f64).min(1.0 - 1e-9)
    }
}

/// One client session's camera-tour state.
struct ClientTour {
    angle: f32,
    step: f32,
    radius: f32,
    height: f32,
    last: Option<(String, [f32; 3])>,
}

impl ClientTour {
    fn new(c: usize) -> Self {
        Self {
            angle: (c as f32) * 0.7,
            step: 0.04 + 0.012 * ((c % 7) as f32),
            radius: 8.0 + ((c % 5) as f32),
            height: 1.0 + 0.4 * ((c % 3) as f32),
            last: None,
        }
    }

    /// The previous (scene, pose) pair, if the client has made a request.
    fn repeat(&self) -> Option<(String, [f32; 3])> {
        self.last.clone()
    }

    /// Advances the tour one step on `scene` and returns the new pose.
    fn advance(&mut self, scene: &str) -> [f32; 3] {
        self.angle += self.step;
        let pose = [
            self.radius * self.angle.sin(),
            self.height,
            -self.radius * self.angle.cos(),
        ];
        self.last = Some((scene.to_string(), pose));
        pose
    }
}

/// Generates the trace `config` describes. Deterministic: the same config
/// always yields the same events.
pub fn generate(config: &SynthConfig) -> Trace {
    assert!(config.scenes > 0 && config.clients > 0, "degenerate config");
    let mut rng = Rng64::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.scenes, config.zipf_exponent);
    let curve = ArrivalCurve::new(&config.shape);
    let mut tours: Vec<ClientTour> = (0..config.clients).map(ClientTour::new).collect();
    let duration_us = config.duration_s * 1e6;

    let mut events = Vec::with_capacity(config.requests);
    for i in 0..config.requests {
        // Strictly non-decreasing quantiles keep arrivals ordered while the
        // jitter keeps them off a perfect lattice.
        let u = (i as f64 + rng.gen_f64()) / config.requests as f64;
        let t = curve.at(u);
        let at_us = (t * duration_us) as u64;

        let in_flash = matches!(
            config.shape,
            LoadShape::FlashCrowd { at, width, .. } if t >= at && t < at + width
        );
        let client_idx = rng.gen_range(0..config.clients);
        let dwell = config.dwell > 0.0 && rng.gen_bool(config.dwell);
        // A dwell re-requests the client's previous view exactly — the raw
        // material of frame-cache hits. Inside a flash burst clients chase
        // the hot scenes instead of their own history.
        let (scene, position) = match tours[client_idx].repeat() {
            Some(last) if dwell && !in_flash => last,
            _ => {
                let rank = if in_flash {
                    let LoadShape::FlashCrowd { hot_scenes, .. } = config.shape else {
                        unreachable!()
                    };
                    rng.gen_range(0..hot_scenes.clamp(1, config.scenes))
                } else {
                    zipf.sample(&mut rng)
                };
                let scene = scene_name(rank);
                let position = tours[client_idx].advance(&scene);
                (scene, position)
            }
        };

        let mut event = TraceEvent::new(at_us, scene, format!("client-{client_idx:02}"));
        event.position = position;
        event.target = [0.0, 0.0, 0.0];
        event.up = [0.0, 1.0, 0.0];
        event.fov_x = 1.1;
        event.width = config.width;
        event.height = config.height;
        event.sh_degree = config.sh_degree;
        event.deadline_ms = config.deadline_ms;
        events.push(event);
    }
    Trace::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = SynthConfig::flash_crowd(500);
        assert_eq!(generate(&config), generate(&config));
        let mut other = config.clone();
        other.seed += 1;
        assert_ne!(generate(&other), generate(&config));
    }

    #[test]
    fn zipf_popularity_shapes_the_scene_mix() {
        let trace = generate(&SynthConfig::zipf(4000));
        let count = |s: &str| trace.events.iter().filter(|e| e.scene == s).count();
        let hot = count(&scene_name(0));
        let cold = count(&scene_name(11));
        assert!(
            hot > 4 * cold.max(1),
            "rank 0 ({hot}) must dominate rank 11 ({cold})"
        );
    }

    #[test]
    fn flash_crowd_concentrates_load_and_scenes() {
        let config = SynthConfig::flash_crowd(4000);
        let trace = generate(&config);
        let span = trace.duration_us() as f64;
        let in_window = |e: &TraceEvent| {
            let t = e.at_us as f64 / span;
            (0.45..0.60).contains(&t)
        };
        let burst: Vec<&TraceEvent> = trace.events.iter().filter(|e| in_window(e)).collect();
        // 15% of the time at 5x intensity vs 85% at 1x: the window holds
        // 0.75/1.6 ≈ 47% of all requests.
        assert!(
            burst.len() > trace.len() / 3,
            "burst holds {} of {}",
            burst.len(),
            trace.len()
        );
        // Strictly inside the burst (margin for the trace-span vs
        // configured-duration normalization difference) only the two hot
        // scenes appear.
        assert!(trace
            .events
            .iter()
            .filter(|e| {
                let t = e.at_us as f64 / span;
                (0.47..0.57).contains(&t)
            })
            .all(|e| e.scene == scene_name(0) || e.scene == scene_name(1)));
    }

    #[test]
    fn diurnal_load_varies_across_the_trace() {
        let trace = generate(&SynthConfig::diurnal(4000));
        let span = trace.duration_us() + 1;
        let mut quarters = [0usize; 4];
        for e in &trace.events {
            quarters[(e.at_us * 4 / span) as usize] += 1;
        }
        let max = *quarters.iter().max().unwrap();
        let min = *quarters.iter().min().unwrap();
        assert!(
            max > min + min / 2,
            "diurnal quarters should differ: {quarters:?}"
        );
    }

    #[test]
    fn events_are_ordered_and_cameras_are_valid() {
        let trace = generate(&SynthConfig::camera_tour(300));
        for pair in trace.events.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
        }
        for e in &trace.events {
            assert_ne!(e.position, e.target, "pos must differ from target");
            // The tour stays on a horizontal orbit, never parallel to up.
            assert!(e.position[0].abs() > 1e-3 || e.position[2].abs() > 1e-3);
            assert!(e.width > 0 && e.height > 0);
        }
    }

    #[test]
    fn dwells_repeat_poses_for_cache_hits() {
        let trace = generate(&SynthConfig::zipf(2000));
        // Count (scene, client, exact pose) repeats — the raw material of
        // frame-cache hits.
        let mut seen = std::collections::HashMap::new();
        let mut repeats = 0usize;
        for e in &trace.events {
            let key = (
                e.scene.clone(),
                e.client.clone(),
                e.position.map(f32::to_bits),
            );
            if *seen.entry(key).and_modify(|c| *c += 1).or_insert(1usize) > 1 {
                repeats += 1;
            }
        }
        assert!(
            repeats > trace.len() / 10,
            "dwell=0.35 should repeat poses often, got {repeats}/{}",
            trace.len()
        );
    }
}
