//! The `GSTR` binary trace format: a compact, versioned, length-prefixed
//! encoding of a request workload.
//!
//! A trace is the unit of exchange between the capture side (the
//! [`crate::TraceRecorder`] hooked into the serving front-ends), the
//! synthetic generators and the replayer: a flat sequence of
//! [`TraceEvent`]s ordered by arrival time. The encoding follows the same
//! rules as the other wire formats in the workspace (`GSL1`/`GSSC` in
//! `gs-serve::wire`): little-endian, magic-prefixed, versioned, and
//! **lossless** — `decode(encode(t))` reproduces every event bit for bit,
//! including pathological `f32` pose values, so a replayed camera is the
//! recorded camera.
//!
//! Layout:
//!
//! ```text
//! "GSTR" | u32 version | u32 event count | event*
//! event: u32 payload length | payload
//! payload:
//!   u64 at_us                       arrival, µs from trace start
//!   u16 len + bytes                 scene id (UTF-8)
//!   u16 len + bytes                 client/session id (UTF-8)
//!   f32 ×10                         pos[3] target[3] up[3] fov_x
//!   u32 width | u32 height          image size in pixels
//!   u8 sh_degree
//!   u32 deadline_ms                 0 = no deadline
//!   u8 outcome                      see [`Outcome`]
//!   u64 latency_us                  observed service latency (0 if unknown)
//! ```
//!
//! Every record carries its own length prefix so a reader can skip records
//! it does not understand *within* a version, and the decoder rejects
//! truncated, corrupt or wrong-version blobs instead of misparsing them.

use std::fmt;

/// Magic prefix of an encoded trace.
pub const TRACE_MAGIC: &[u8; 4] = b"GSTR";

/// Current format version. Decoders reject any other version.
pub const TRACE_VERSION: u32 = 1;

/// Largest event count a decoder will allocate for (a 1-billion-event blob
/// is corrupt or hostile, not a workload).
pub const MAX_TRACE_EVENTS: usize = 64 << 20;

/// Largest scene/client id length on the wire.
pub const MAX_TRACE_ID_LEN: usize = 256;

/// A malformed or invalid trace blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

fn err(msg: impl Into<String>) -> TraceError {
    TraceError(msg.into())
}

/// How the service answered a recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// Rendered and delivered.
    #[default]
    Completed = 0,
    /// Answered from a frame cache (server- or coordinator-side).
    CacheHit = 1,
    /// Answered with an error (unknown scene, internal failure).
    Error = 2,
    /// Deadline passed while queued; answered without rendering.
    Expired = 3,
    /// Cancelled while queued (client disconnected).
    Cancelled = 4,
    /// Rejected up front (admission control, shutdown, connection limit).
    Rejected = 5,
}

impl Outcome {
    /// All outcomes, in tag order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Completed,
        Outcome::CacheHit,
        Outcome::Error,
        Outcome::Expired,
        Outcome::Cancelled,
        Outcome::Rejected,
    ];

    /// The wire tag.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire tag.
    pub fn from_u8(tag: u8) -> Option<Self> {
        Outcome::ALL.get(tag as usize).copied()
    }

    /// Whether the request was answered with a frame.
    pub fn is_served(self) -> bool {
        matches!(self, Outcome::Completed | Outcome::CacheHit)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Completed => "completed",
            Outcome::CacheHit => "cache_hit",
            Outcome::Error => "error",
            Outcome::Expired => "expired",
            Outcome::Cancelled => "cancelled",
            Outcome::Rejected => "rejected",
        })
    }
}

/// One recorded (or synthesized) render request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in microseconds from the trace start.
    pub at_us: u64,
    /// Scene id.
    pub scene: String,
    /// Client/session id (peer address when the client did not name one).
    pub client: String,
    /// Camera center.
    pub position: [f32; 3],
    /// Look-at target.
    pub target: [f32; 3],
    /// Up direction.
    pub up: [f32; 3],
    /// Horizontal field of view in radians.
    pub fov_x: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// SH degree used for color.
    pub sh_degree: u8,
    /// Deadline in milliseconds (`0` = none).
    pub deadline_ms: u32,
    /// How the service answered.
    pub outcome: Outcome,
    /// Observed service latency in microseconds (`0` when unknown, e.g. in
    /// synthetic traces that were never replayed).
    pub latency_us: u64,
}

impl TraceEvent {
    /// An event with the given identity and a default camera/size; callers
    /// fill in the pose.
    pub fn new(at_us: u64, scene: impl Into<String>, client: impl Into<String>) -> Self {
        Self {
            at_us,
            scene: scene.into(),
            client: client.into(),
            position: [0.0, 0.0, -8.0],
            target: [0.0, 0.0, 0.0],
            up: [0.0, 1.0, 0.0],
            fov_x: 1.0,
            width: 64,
            height: 48,
            sh_degree: 3,
            deadline_ms: 0,
            outcome: Outcome::Completed,
            latency_us: 0,
        }
    }

    fn encoded_len(&self) -> usize {
        8 + 2 + self.scene.len() + 2 + self.client.len() + 40 + 4 + 4 + 1 + 4 + 1 + 8
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at_us.to_le_bytes());
        push_str(out, &self.scene);
        push_str(out, &self.client);
        for v in self
            .position
            .iter()
            .chain(&self.target)
            .chain(&self.up)
            .chain(std::iter::once(&self.fov_x))
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.push(self.sh_degree);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.push(self.outcome.as_u8());
        out.extend_from_slice(&self.latency_us.to_le_bytes());
    }

    fn decode(payload: &[u8], index: usize) -> Result<Self, TraceError> {
        let mut r = Reader {
            bytes: payload,
            at: 0,
            index,
        };
        let at_us = r.u64("at_us")?;
        let scene = r.string("scene")?;
        let client = r.string("client")?;
        let mut pose = [0.0f32; 10];
        for (i, slot) in pose.iter_mut().enumerate() {
            *slot = r.f32(&format!("pose[{i}]"))?;
        }
        let width = r.u32("width")?;
        let height = r.u32("height")?;
        let sh_degree = r.u8("sh_degree")?;
        let deadline_ms = r.u32("deadline_ms")?;
        let outcome_tag = r.u8("outcome")?;
        let outcome = Outcome::from_u8(outcome_tag)
            .ok_or_else(|| err(format!("event {index}: unknown outcome tag {outcome_tag}")))?;
        let latency_us = r.u64("latency_us")?;
        if r.at != payload.len() {
            return Err(err(format!(
                "event {index}: {} trailing bytes after the payload",
                payload.len() - r.at
            )));
        }
        Ok(Self {
            at_us,
            scene,
            client,
            position: [pose[0], pose[1], pose[2]],
            target: [pose[3], pose[4], pose[5]],
            up: [pose[6], pose[7], pose[8]],
            fov_x: pose[9],
            width,
            height,
            sh_degree,
            deadline_ms,
            outcome,
            latency_us,
        })
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_TRACE_ID_LEN);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over one event payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    index: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], TraceError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| err(format!("event {}: truncated before {what}", self.index)))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, TraceError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, TraceError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, TraceError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f32(&mut self, what: &str) -> Result<f32, TraceError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self, what: &str) -> Result<String, TraceError> {
        let len = {
            let b = self.take(2, what)?;
            u16::from_le_bytes([b[0], b[1]]) as usize
        };
        if len > MAX_TRACE_ID_LEN {
            return Err(err(format!(
                "event {}: {what} id is {len} bytes, limit is {MAX_TRACE_ID_LEN}",
                self.index
            )));
        }
        let index = self.index;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| err(format!("event {index}: {what} id is not UTF-8")))
    }
}

/// An ordered workload: the unit the recorder produces and the replayer and
/// phase clustering consume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Events in arrival order (`at_us` non-decreasing).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// A trace over the given events, sorted into arrival order.
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.at_us);
        Self { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges traces into one workload on a shared timeline.
    ///
    /// Events from every input are interleaved by arrival time; the sort is
    /// stable, so simultaneous events keep input order and the merge is
    /// deterministic. This is how mixed-tier workloads are composed for
    /// replay — e.g. steady Zipf traffic with a flash crowd arriving on
    /// top of it.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Self {
        Self::new(traces.into_iter().flat_map(|t| t.events).collect())
    }

    /// Arrival span in microseconds (last event's `at_us`).
    pub fn duration_us(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_us)
    }

    /// Sorted, deduplicated scene ids appearing in the trace.
    pub fn scene_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.events.iter().map(|e| e.scene.clone()).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Sorted, deduplicated client ids appearing in the trace.
    pub fn client_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.events.iter().map(|e| e.client.clone()).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Encodes the trace into a `GSTR` blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.events.len() * 96);
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for event in &self.events {
            out.extend_from_slice(&(event.encoded_len() as u32).to_le_bytes());
            event.encode_into(&mut out);
        }
        out
    }

    /// Decodes a `GSTR` blob.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on a bad magic, an unsupported version, or any
    /// truncated/corrupt record.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 12 || &bytes[..4] != TRACE_MAGIC {
            return Err(err("not a GSTR trace (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != TRACE_VERSION {
            return Err(err(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            )));
        }
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if count > MAX_TRACE_EVENTS {
            return Err(err(format!(
                "trace claims {count} events, limit is {MAX_TRACE_EVENTS}"
            )));
        }
        let mut events = Vec::with_capacity(count.min(1 << 16));
        let mut at = 12usize;
        for index in 0..count {
            let end = at
                .checked_add(4)
                .filter(|&end| end <= bytes.len())
                .ok_or_else(|| err(format!("truncated before event {index}'s length")))?;
            let len = u32::from_le_bytes(bytes[at..end].try_into().unwrap()) as usize;
            let payload_end = end
                .checked_add(len)
                .filter(|&pe| pe <= bytes.len())
                .ok_or_else(|| err(format!("truncated inside event {index}")))?;
            events.push(TraceEvent::decode(&bytes[end..payload_end], index)?);
            at = payload_end;
        }
        if at != bytes.len() {
            return Err(err(format!(
                "{} trailing bytes after the last event",
                bytes.len() - at
            )));
        }
        Ok(Self { events })
    }

    /// Writes the encoded trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads and decodes a trace from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; decode failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} events, {} scenes, {} clients, {:.2}s span",
            self.len(),
            self.scene_ids().len(),
            self.client_ids().len(),
            self.duration_us() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_event(i: u64) -> TraceEvent {
        let mut e = TraceEvent::new(i * 1000, format!("scene-{}", i % 3), format!("client-{i}"));
        e.position = [i as f32, -(i as f32) * 0.5, -8.0];
        e.fov_x = 1.1;
        e.deadline_ms = if i.is_multiple_of(2) { 250 } else { 0 };
        e.outcome = Outcome::ALL[(i % 6) as usize];
        e.latency_us = 100 + i;
        e
    }

    fn demo_trace(n: u64) -> Trace {
        Trace::new((0..n).map(demo_event).collect())
    }

    #[test]
    fn merge_interleaves_by_arrival_and_is_stable() {
        let mut steady = demo_trace(5); // at_us 0, 1000, ..., 4000
        for e in &mut steady.events {
            e.client = "steady".to_string();
        }
        let mut burst = Trace::new(vec![demo_event(1), demo_event(3)]);
        for e in &mut burst.events {
            e.client = "burst".to_string();
        }
        let merged = Trace::merge([steady.clone(), burst.clone()]);
        assert_eq!(merged.len(), steady.len() + burst.len());
        assert!(
            merged.events.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "merged events must stay in arrival order"
        );
        // Simultaneous events keep input order: the steady trace was passed
        // first, so its event at t=1000 precedes the burst's.
        let at_1000: Vec<&str> = merged
            .events
            .iter()
            .filter(|e| e.at_us == 1000)
            .map(|e| e.client.as_str())
            .collect();
        assert_eq!(at_1000, ["steady", "burst"]);
        // Deterministic: merging the same inputs again is identical.
        assert_eq!(merged, Trace::merge([steady, burst]));
    }

    #[test]
    fn roundtrip_is_exact() {
        let trace = demo_trace(17);
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(Trace::decode(&Trace::default().encode()).unwrap().len(), 0);
    }

    #[test]
    fn roundtrip_preserves_pathological_f32_poses_bit_for_bit() {
        let mut e = demo_event(0);
        e.position = [f32::MIN_POSITIVE, 0.1 + 0.2, -1.0e-7];
        e.target = [f32::MAX, -f32::MIN_POSITIVE / 2.0, 1.0e-38];
        e.up = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        e.fov_x = f32::from_bits(0x0000_0001); // smallest subnormal
        let trace = Trace { events: vec![e] };
        let decoded = Trace::decode(&trace.encode()).unwrap();
        let (a, b) = (&decoded.events[0], &trace.events[0]);
        for (x, y) in [(a.position, b.position), (a.target, b.target), (a.up, b.up)] {
            for (xv, yv) in x.iter().zip(&y) {
                assert_eq!(xv.to_bits(), yv.to_bits(), "pose floats must be lossless");
            }
        }
        assert_eq!(a.fov_x.to_bits(), b.fov_x.to_bits());
    }

    #[test]
    fn truncations_at_every_boundary_are_rejected() {
        let encoded = demo_trace(3).encode();
        for cut in 0..encoded.len() {
            assert!(
                Trace::decode(&encoded[..cut]).is_err(),
                "truncation at {cut}/{} must be rejected",
                encoded.len()
            );
        }
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let encoded = demo_trace(4).encode();
        // Wrong magic.
        let mut bad = encoded.clone();
        bad[0] = b'X';
        assert!(Trace::decode(&bad).is_err());
        // Wrong version.
        let mut bad = encoded.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(Trace::decode(&bad).is_err());
        // Hostile event count.
        let mut bad = encoded.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Trace::decode(&bad).is_err());
        // Corrupt first record length (points past the end).
        let mut bad = encoded.clone();
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Trace::decode(&bad).is_err());
        // Record length shrunk: the payload decodes short.
        let mut bad = encoded.clone();
        let len = u32::from_le_bytes(bad[12..16].try_into().unwrap());
        bad[12..16].copy_from_slice(&(len - 1).to_le_bytes());
        assert!(Trace::decode(&bad).is_err());
        // Bad outcome tag (last 9 bytes of a record are outcome + latency).
        let first_record_end = 16 + len as usize;
        let mut bad = encoded.clone();
        bad[first_record_end - 9] = 200;
        assert!(Trace::decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = encoded.clone();
        bad.extend_from_slice(&[0u8; 3]);
        assert!(Trace::decode(&bad).is_err());
        // Oversized string length inside the first record.
        let mut bad = encoded;
        bad[24..26].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(Trace::decode(&bad).is_err());
    }

    #[test]
    fn new_sorts_events_into_arrival_order() {
        let mut events: Vec<TraceEvent> = (0..5).map(demo_event).collect();
        events.reverse();
        let trace = Trace::new(events);
        for pair in trace.events.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
        }
        assert_eq!(trace.duration_us(), 4000);
        assert_eq!(trace.scene_ids(), vec!["scene-0", "scene-1", "scene-2"]);
    }

    #[test]
    fn outcome_tags_roundtrip() {
        for outcome in Outcome::ALL {
            assert_eq!(Outcome::from_u8(outcome.as_u8()), Some(outcome));
        }
        assert_eq!(Outcome::from_u8(6), None);
        assert!(Outcome::CacheHit.is_served());
        assert!(!Outcome::Expired.is_served());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("gs-trace-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.gstr");
        let trace = demo_trace(8);
        trace.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), trace);
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(Trace::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
