//! The capture side: a thread-safe recorder the serving front-ends push
//! one [`TraceEvent`] into per answered request.
//!
//! The recorder timestamps events against its own start instant, so a
//! trace's `at_us` axis starts near zero no matter when the process
//! started. Events arrive in *completion* order (a slow render finishes
//! after a fast one that arrived later), so [`TraceRecorder::snapshot`]
//! re-sorts by arrival time before handing out a [`Trace`].
//!
//! The relative axis alone used to make captured traces impossible to line
//! up with anything stamped in absolute time (other nodes' captures, the
//! span trees `gs-obs` exports): two recorders created at different moments
//! disagree about what "0 µs" means. The recorder therefore captures a
//! [`SpanClock`] at creation — one wall-clock anchor plus a monotonic
//! origin — so `at_us` stays monotone and near-zero-based while
//! [`TraceRecorder::anchor_us`] / [`TraceRecorder::wall_us_of`] convert any
//! event time onto the same absolute µs-since-epoch axis span exports use.
//!
//! Memory is bounded: past `limit` events the recorder drops new events and
//! counts them, so a long-lived server with capture left on degrades to a
//! truncated trace instead of unbounded growth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gs_obs::SpanClock;

use crate::format::{Trace, TraceEvent};

/// Records the request stream a serving front-end answers.
#[derive(Debug)]
pub struct TraceRecorder {
    clock: SpanClock,
    events: Mutex<Vec<TraceEvent>>,
    limit: usize,
    dropped: AtomicU64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Default event cap (~1M events, tens of MB at the typical record
    /// size).
    pub const DEFAULT_LIMIT: usize = 1 << 20;

    /// A recorder with the default event cap.
    pub fn new() -> Self {
        Self::with_limit(Self::DEFAULT_LIMIT)
    }

    /// A recorder that keeps at most `limit` events.
    pub fn with_limit(limit: usize) -> Self {
        Self {
            clock: SpanClock::new(),
            events: Mutex::new(Vec::new()),
            limit: limit.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the recorder started — the value to stamp into an
    /// arriving request's `at_us` (capture it on arrival, record the event
    /// on completion). Monotone: derived from the clock's monotonic origin,
    /// never from re-reading the wall clock.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us() - self.clock.anchor_us()
    }

    /// The wall-clock anchor of the recorder's time base, in microseconds
    /// since the Unix epoch: the absolute moment `at_us == 0` refers to.
    pub fn anchor_us(&self) -> u64 {
        self.clock.anchor_us()
    }

    /// Converts a recorder-relative event time onto the absolute
    /// µs-since-epoch axis `gs-obs` span exports use, so captured events
    /// and span trees (this node's or another's) line up.
    pub fn wall_us_of(&self, at_us: u64) -> u64 {
        self.clock.anchor_us().saturating_add(at_us)
    }

    /// Appends one event (dropped and counted once the cap is reached).
    pub fn record(&self, event: TraceEvent) {
        let mut events = self.events.lock().unwrap();
        if events.len() < self.limit {
            events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the recorded workload, sorted into arrival order.
    pub fn snapshot(&self) -> Trace {
        Trace::new(self.events.lock().unwrap().clone())
    }

    /// Drains the recorded workload (sorted into arrival order), leaving
    /// the recorder empty but keeping its time base.
    pub fn take(&self) -> Trace {
        Trace::new(std::mem::take(&mut *self.events.lock().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_arrival_order() {
        let rec = TraceRecorder::new();
        // Completion order disagrees with arrival order.
        let mut late = TraceEvent::new(2000, "a", "c1");
        late.latency_us = 50;
        rec.record(late);
        rec.record(TraceEvent::new(1000, "b", "c2"));
        assert_eq!(rec.len(), 2);
        let trace = rec.snapshot();
        assert_eq!(trace.events[0].at_us, 1000);
        assert_eq!(trace.events[1].at_us, 2000);
        assert_eq!(rec.len(), 2, "snapshot must not drain");
        let drained = rec.take();
        assert_eq!(drained.len(), 2);
        assert!(rec.is_empty());
    }

    #[test]
    fn cap_drops_and_counts() {
        let rec = TraceRecorder::with_limit(3);
        for i in 0..5 {
            rec.record(TraceEvent::new(i, "s", "c"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn now_us_is_monotone() {
        let rec = TraceRecorder::new();
        let a = rec.now_us();
        let b = rec.now_us();
        assert!(b >= a);
    }

    #[test]
    fn wall_anchor_aligns_relative_times_with_span_clocks() {
        let rec = TraceRecorder::new();
        let spans = SpanClock::new();
        // A plausible Unix time (after 2020, before 2100), not a relative 0.
        assert!(rec.anchor_us() > 1_577_836_800_000_000);
        assert!(rec.anchor_us() < 4_102_444_800_000_000);
        // An event stamped now converts onto the span clock's absolute
        // axis: the two clocks were created moments apart, so the mapped
        // time must sit within a second of the span clock's "now".
        let wall = rec.wall_us_of(rec.now_us());
        let span_now = spans.now_us();
        assert!(
            wall.abs_diff(span_now) < 1_000_000,
            "wall={wall} span={span_now}"
        );
        // The anchor is captured once: re-deriving it from any event time
        // round-trips exactly.
        assert_eq!(rec.wall_us_of(0), rec.anchor_us());
    }
}
