//! Peak signal-to-noise ratio.

use gs_core::image::Image;

/// Mean squared error between two images over all RGB channels.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "image width mismatch");
    assert_eq!(a.height(), b.height(), "image height mismatch");
    if a.data().is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let d = (x - y) as f64;
        total += d * d;
    }
    total / a.data().len() as f64
}

/// Peak signal-to-noise ratio in dB, assuming a signal range of `[0, 1]`.
///
/// Identical images return 100 dB (rather than infinity) so that averages
/// over test views stay finite.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let err = mse(a, b);
    if err <= 1e-20 {
        return 100.0;
    }
    (-10.0 * err.log10()).min(100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_max_psnr() {
        let img = Image::filled(8, 8, [0.25, 0.5, 0.75]);
        assert_eq!(psnr(&img, &img), 100.0);
        assert_eq!(mse(&img, &img), 0.0);
    }

    #[test]
    fn known_mse_gives_known_psnr() {
        let a = Image::filled(4, 4, [0.5, 0.5, 0.5]);
        let b = Image::filled(4, 4, [0.6, 0.6, 0.6]);
        // MSE = 0.01, PSNR = -10 log10(0.01) = 20 dB.
        assert!((mse(&a, &b) - 0.01).abs() < 1e-6);
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn larger_error_means_lower_psnr() {
        let a = Image::filled(4, 4, [0.5; 3]);
        let b = Image::filled(4, 4, [0.55; 3]);
        let c = Image::filled(4, 4, [0.8; 3]);
        assert!(psnr(&a, &b) > psnr(&a, &c));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_sizes_panic() {
        let _ = psnr(&Image::zeros(2, 2), &Image::zeros(3, 2));
    }
}
