//! Structural similarity index (SSIM) with an 11x11 Gaussian window, the
//! standard formulation used by 3DGS evaluations.

use gs_core::image::Image;

const WINDOW: usize = 11;
const SIGMA: f64 = 1.5;
const C1: f64 = 0.01 * 0.01;
const C2: f64 = 0.03 * 0.03;

fn gaussian_kernel() -> [f64; WINDOW] {
    let mut k = [0.0f64; WINDOW];
    let center = (WINDOW / 2) as f64;
    let mut sum = 0.0;
    for (i, v) in k.iter_mut().enumerate() {
        let d = i as f64 - center;
        *v = (-d * d / (2.0 * SIGMA * SIGMA)).exp();
        sum += *v;
    }
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Separable Gaussian blur of a single-channel plane.
fn blur(plane: &[f64], width: usize, height: usize) -> Vec<f64> {
    let k = gaussian_kernel();
    let half = WINDOW / 2;
    let mut tmp = vec![0.0f64; width * height];
    // Horizontal pass (clamped borders).
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (i, &w) in k.iter().enumerate() {
                let sx = (x + i).saturating_sub(half).min(width - 1);
                acc += w * plane[y * width + sx];
            }
            tmp[y * width + x] = acc;
        }
    }
    let mut out = vec![0.0f64; width * height];
    // Vertical pass.
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (i, &w) in k.iter().enumerate() {
                let sy = (y + i).saturating_sub(half).min(height - 1);
                acc += w * tmp[sy * width + x];
            }
            out[y * width + x] = acc;
        }
    }
    out
}

fn channel_plane(img: &Image, ch: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(img.num_pixels());
    for p in 0..img.num_pixels() {
        out.push(img.data()[3 * p + ch] as f64);
    }
    out
}

/// Structural similarity between two images, averaged over the RGB channels.
///
/// Returns a value in `[-1, 1]` (1 for identical images). Uses the standard
/// 11x11 Gaussian window with sigma 1.5 and the usual stability constants.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "image width mismatch");
    assert_eq!(a.height(), b.height(), "image height mismatch");
    let (w, h) = (a.width(), a.height());
    if w == 0 || h == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    for ch in 0..3 {
        let x = channel_plane(a, ch);
        let y = channel_plane(b, ch);
        let mu_x = blur(&x, w, h);
        let mu_y = blur(&y, w, h);
        let xx: Vec<f64> = x.iter().map(|v| v * v).collect();
        let yy: Vec<f64> = y.iter().map(|v| v * v).collect();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p * q).collect();
        let sigma_xx = blur(&xx, w, h);
        let sigma_yy = blur(&yy, w, h);
        let sigma_xy = blur(&xy, w, h);
        let mut acc = 0.0;
        for i in 0..w * h {
            let mx = mu_x[i];
            let my = mu_y[i];
            let vx = (sigma_xx[i] - mx * mx).max(0.0);
            let vy = (sigma_yy[i] - my * my).max(0.0);
            let cxy = sigma_xy[i] - mx * my;
            let numerator = (2.0 * mx * my + C1) * (2.0 * cxy + C2);
            let denominator = (mx * mx + my * my + C1) * (vx + vy + C2);
            acc += numerator / denominator;
        }
        total += acc / (w * h) as f64;
    }
    total / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_ssim_one() {
        let img = Image::from_fn(32, 24, |x, y| [x as f32 / 32.0, y as f32 / 24.0, 0.5]);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_vs_constant_shifted_is_below_one() {
        let a = Image::filled(24, 24, [0.5; 3]);
        let b = Image::filled(24, 24, [0.8; 3]);
        let s = ssim(&a, &b);
        assert!(s < 0.9 && s > -1.0, "ssim {s}");
    }

    #[test]
    fn structural_damage_hurts_more_than_small_noise() {
        let base = Image::from_fn(48, 48, |x, y| {
            let v = if (x / 8 + y / 8) % 2 == 0 { 0.8 } else { 0.2 };
            [v, v, v]
        });
        // Small uniform brightness shift.
        let shifted = Image::from_fn(48, 48, |x, y| {
            let p = base.pixel(x, y);
            [p[0] + 0.02, p[1] + 0.02, p[2] + 0.02]
        });
        // Structure destroyed: constant gray with same mean.
        let flat = Image::filled(48, 48, [0.5; 3]);
        assert!(ssim(&base, &shifted) > ssim(&base, &flat));
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = Image::from_fn(20, 20, |x, y| {
            [(x % 5) as f32 / 5.0, (y % 3) as f32 / 3.0, 0.3]
        });
        let b = Image::from_fn(20, 20, |x, y| {
            [(y % 4) as f32 / 4.0, (x % 6) as f32 / 6.0, 0.6]
        });
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_kernel_is_normalized() {
        let k = gaussian_kernel();
        let sum: f64 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
