//! A multi-scale perceptual dissimilarity proxy standing in for LPIPS.
//!
//! LPIPS compares deep features of a pretrained AlexNet/VGG network; no such
//! network is available offline, so this proxy compares hand-crafted local
//! features — luminance, local contrast and oriented gradients — across an
//! image pyramid. Like LPIPS it is 0 for identical images, grows with
//! perceptual degradation, and penalizes structural damage (blur, missing
//! detail) more strongly than small uniform shifts, which is the behaviour
//! the paper's quality curves rely on.

use gs_core::image::Image;

/// Number of pyramid levels compared.
const LEVELS: usize = 3;

fn luma(img: &Image) -> Vec<f32> {
    img.to_luma()
}

/// Horizontal and vertical gradient magnitudes of a luminance plane.
fn gradients(plane: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let xp = plane[y * w + (x + 1).min(w - 1)];
            let xm = plane[y * w + x.saturating_sub(1)];
            let yp = plane[(y + 1).min(h - 1) * w + x];
            let ym = plane[y.saturating_sub(1) * w + x];
            let gx = 0.5 * (xp - xm);
            let gy = 0.5 * (yp - ym);
            out[y * w + x] = (gx * gx + gy * gy).sqrt();
        }
    }
    out
}

/// Local contrast: absolute deviation from the 3x3 neighborhood mean.
fn local_contrast(plane: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0.0;
            let mut count = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let sx = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
                    let sy = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
                    sum += plane[sy * w + sx];
                    count += 1.0;
                }
            }
            out[y * w + x] = (plane[y * w + x] - sum / count).abs();
        }
    }
    out
}

fn mean_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .sum::<f64>()
        / a.len() as f64
}

/// Multi-scale perceptual dissimilarity proxy (lower is better, 0 for
/// identical images).
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn lpips_proxy(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "image width mismatch");
    assert_eq!(a.height(), b.height(), "image height mismatch");

    let mut score = 0.0f64;
    let mut weight_total = 0.0f64;
    let mut img_a = a.clone();
    let mut img_b = b.clone();
    for level in 0..LEVELS {
        let (w, h) = (img_a.width(), img_a.height());
        if w < 4 || h < 4 {
            break;
        }
        let la = luma(&img_a);
        let lb = luma(&img_b);
        let ga = gradients(&la, w, h);
        let gb = gradients(&lb, w, h);
        let ca = local_contrast(&la, w, h);
        let cb = local_contrast(&lb, w, h);

        // Feature distances: luminance is weighted least (LPIPS is fairly
        // insensitive to small global shifts), structure most.
        let d_luma = mean_abs_diff(&la, &lb);
        let d_grad = mean_abs_diff(&ga, &gb);
        let d_contrast = mean_abs_diff(&ca, &cb);
        let level_score = 0.2 * d_luma + 2.0 * d_grad + 1.5 * d_contrast;

        // Coarser scales carry more perceptual weight.
        let weight = 1.0 + level as f64 * 0.5;
        score += weight * level_score;
        weight_total += weight;

        img_a = img_a.downsample(2);
        img_b = img_b.downsample(2);
    }
    if weight_total == 0.0 {
        0.0
    } else {
        score / weight_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| {
            let v = 0.5 + 0.4 * ((x as f32 * 0.9).sin() * (y as f32 * 0.7).cos());
            [v, v * 0.8, v * 0.6]
        })
    }

    #[test]
    fn identical_images_score_zero() {
        let img = textured(32, 32);
        assert!(lpips_proxy(&img, &img) < 1e-9);
    }

    #[test]
    fn blur_scores_worse_than_tiny_brightness_shift() {
        let sharp = textured(64, 64);
        let shifted = Image::from_fn(64, 64, |x, y| {
            let p = sharp.pixel(x, y);
            [p[0] + 0.01, p[1] + 0.01, p[2] + 0.01]
        });
        // Heavy blur: replace with 4x4 box-downsampled then upsampled image.
        let down = sharp.downsample(4);
        let blurred = Image::from_fn(64, 64, |x, y| down.pixel(x / 4, y / 4));
        assert!(lpips_proxy(&sharp, &blurred) > 5.0 * lpips_proxy(&sharp, &shifted));
    }

    #[test]
    fn proxy_is_symmetric() {
        let a = textured(40, 30);
        let b = Image::filled(40, 30, [0.3, 0.3, 0.3]);
        assert!((lpips_proxy(&a, &b) - lpips_proxy(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn more_distortion_scores_higher() {
        let clean = textured(48, 48);
        let jitter = |amp: f32| {
            Image::from_fn(48, 48, |x, y| {
                let p = clean.pixel(x, y);
                let n = (((x * 7 + y * 13) % 11) as f32 / 11.0 - 0.5) * amp;
                [
                    (p[0] + n).clamp(0.0, 1.0),
                    (p[1] + n).clamp(0.0, 1.0),
                    (p[2] + n).clamp(0.0, 1.0),
                ]
            })
        };
        assert!(lpips_proxy(&jitter(0.3), &clean) > lpips_proxy(&jitter(0.1), &clean));
    }

    #[test]
    fn tiny_images_do_not_panic() {
        let a = Image::filled(2, 2, [0.1; 3]);
        let b = Image::filled(2, 2, [0.9; 3]);
        let v = lpips_proxy(&a, &b);
        assert!(v >= 0.0);
    }
}
