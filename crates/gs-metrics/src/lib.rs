//! Rendering-quality metrics: PSNR, SSIM and a perceptual LPIPS proxy.
//!
//! The paper reports PSNR, SSIM and LPIPS for every quality experiment
//! (Figures 1, 3a, 13 and Table 3). PSNR and SSIM are implemented exactly.
//! LPIPS requires a pretrained convolutional network that is not available
//! offline, so [`lpips_proxy`] substitutes a multi-scale structural
//! dissimilarity built from local luminance, contrast and gradient
//! statistics; it preserves the property the figures rely on (lower is
//! better, monotone in perceptual degradation). The substitution is recorded
//! in DESIGN.md.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod perceptual;
pub mod psnr;
pub mod ssim;

pub use perceptual::lpips_proxy;
pub use psnr::{mse, psnr};
pub use ssim::ssim;

use gs_core::image::Image;

/// The three quality metrics the paper reports, bundled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityReport {
    /// Peak signal-to-noise ratio in dB (higher is better).
    pub psnr: f64,
    /// Structural similarity in `[0, 1]` (higher is better).
    pub ssim: f64,
    /// Perceptual dissimilarity proxy (lower is better).
    pub lpips: f64,
}

impl QualityReport {
    /// Evaluates all three metrics between a rendered image and the ground
    /// truth.
    pub fn evaluate(rendered: &Image, target: &Image) -> Self {
        Self {
            psnr: psnr(rendered, target),
            ssim: ssim(rendered, target),
            lpips: lpips_proxy(rendered, target),
        }
    }

    /// Averages a set of reports (e.g. over test views).
    ///
    /// Returns the default (all-zero) report when `reports` is empty.
    pub fn average(reports: &[QualityReport]) -> Self {
        if reports.is_empty() {
            return Self::default();
        }
        let n = reports.len() as f64;
        Self {
            psnr: reports.iter().map(|r| r.psnr).sum::<f64>() / n,
            ssim: reports.iter().map(|r| r.ssim).sum::<f64>() / n,
            lpips: reports.iter().map(|r| r.lpips).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| {
            [
                x as f32 / w as f32,
                y as f32 / h as f32,
                ((x + y) % 7) as f32 / 7.0,
            ]
        })
    }

    #[test]
    fn identical_images_are_perfect() {
        let img = gradient_image(32, 24);
        let r = QualityReport::evaluate(&img, &img);
        assert!(r.psnr > 90.0);
        assert!((r.ssim - 1.0).abs() < 1e-6);
        assert!(r.lpips < 1e-6);
    }

    #[test]
    fn all_metrics_degrade_monotonically_with_noise() {
        let clean = gradient_image(48, 32);
        let noisy = |amp: f32| {
            Image::from_fn(48, 32, |x, y| {
                let p = clean.pixel(x, y);
                let n = ((x * 31 + y * 17) % 13) as f32 / 13.0 - 0.5;
                [
                    (p[0] + amp * n).clamp(0.0, 1.0),
                    (p[1] + amp * n).clamp(0.0, 1.0),
                    (p[2] + amp * n).clamp(0.0, 1.0),
                ]
            })
        };
        let small = QualityReport::evaluate(&noisy(0.05), &clean);
        let large = QualityReport::evaluate(&noisy(0.3), &clean);
        assert!(small.psnr > large.psnr);
        assert!(small.ssim > large.ssim);
        assert!(small.lpips < large.lpips);
    }

    #[test]
    fn average_combines_reports() {
        let a = QualityReport {
            psnr: 20.0,
            ssim: 0.8,
            lpips: 0.2,
        };
        let b = QualityReport {
            psnr: 30.0,
            ssim: 0.9,
            lpips: 0.1,
        };
        let avg = QualityReport::average(&[a, b]);
        assert!((avg.psnr - 25.0).abs() < 1e-9);
        assert!((avg.ssim - 0.85).abs() < 1e-9);
        assert!((avg.lpips - 0.15).abs() < 1e-9);
        assert_eq!(QualityReport::average(&[]), QualityReport::default());
    }
}
