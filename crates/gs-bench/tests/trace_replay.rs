//! Integration tests for the trace replayer: deterministic replay against
//! the single-node server and the cluster coordinator, capture through the
//! coordinator hook, and the SimPoint-style phase estimate.

use std::sync::Arc;

use gs_bench::{fnv1a, predict_from_phases, replay, ReplayConfig};
use gs_cluster::{ClusterConfig, Coordinator, ReplicaTransport};
use gs_serve::{RenderServer, SceneRegistry, SceneSpec, ServeConfig, WireRequest};
use gs_trace::{cluster, generate, Outcome, PhaseConfig, SynthConfig, Trace, TraceRecorder};

/// A fresh single-node server holding every scene `trace` names, built
/// deterministically from the scene ids.
fn build_server(trace: &Trace) -> RenderServer {
    let server = RenderServer::new(
        ServeConfig {
            workers: 2,
            queue_depth: 32,
            max_batch: 4,
            cache_bytes: 16 << 20,
            pose_quant: 0.05,
            shard_bytes: 0,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 32),
    );
    for id in trace.scene_ids() {
        let mut spec = SceneSpec::new(300);
        spec.seed = fnv1a(id.as_bytes());
        server
            .load_scene(id, Arc::new(spec.build()), spec.background)
            .unwrap();
    }
    server
}

/// A fresh two-replica in-process cluster holding the trace's scenes, with
/// the coordinator-side cache enabled.
fn build_cluster(trace: &Trace) -> Coordinator {
    let coordinator = Coordinator::new(ClusterConfig {
        cache_bytes: 16 << 20,
        ..ClusterConfig::default()
    });
    for i in 0..2 {
        let replica = Arc::new(RenderServer::new(
            ServeConfig {
                workers: 1,
                queue_depth: 32,
                max_batch: 4,
                cache_bytes: 0,
                pose_quant: 0.05,
                shard_bytes: 0,
                ..ServeConfig::default()
            },
            SceneRegistry::with_budget(1 << 32),
        ));
        coordinator
            .add_replica(format!("replica-{i}"), ReplicaTransport::InProcess(replica))
            .unwrap();
    }
    for id in trace.scene_ids() {
        let mut spec = SceneSpec::new(300);
        spec.seed = fnv1a(id.as_bytes());
        coordinator
            .load_scene(id, Arc::new(spec.build()), spec.background)
            .unwrap();
    }
    coordinator
}

fn zipf_trace(requests: usize, seed: u64) -> Trace {
    let mut config = SynthConfig::zipf(requests);
    config.seed = seed;
    generate(&config)
}

#[test]
fn sequential_replay_is_deterministic_on_the_server() {
    let trace = zipf_trace(150, 3);
    let sequential = ReplayConfig::sequential();

    let first_server = build_server(&trace);
    let first = replay(&first_server, &trace, &sequential);
    let first_stats = first_server.shutdown();

    let second_server = build_server(&trace);
    let second = replay(&second_server, &trace, &sequential);
    let second_stats = second_server.shutdown();

    // The replay contract: identical per-request frame hashes AND outcome
    // sequences, which the fingerprint folds into one value...
    assert_eq!(first.fingerprint(), second.fingerprint());
    assert_eq!(first.len(), trace.len());
    for outcome in Outcome::ALL {
        assert_eq!(first.count(outcome), second.count(outcome), "{outcome}");
    }
    // ... and the servers' own counters agree too (sequential replay makes
    // even cache hit/miss interleaving deterministic).
    assert_eq!(first_stats.completed, second_stats.completed);
    assert_eq!(first_stats.errors, second_stats.errors);
    assert_eq!(first_stats.cache.hits, second_stats.cache.hits);
    assert_eq!(first_stats.cache.misses, second_stats.cache.misses);
    // The Zipf workload's dwell behavior must produce real cache traffic,
    // otherwise this test proves nothing about hit determinism.
    assert!(first.count(Outcome::CacheHit) > 0);
    assert!(first.served() == trace.len());
}

#[test]
fn replay_drives_the_cluster_and_the_coordinator_recorder_captures_it() {
    let trace = zipf_trace(90, 5);
    let sequential = ReplayConfig::sequential();

    let first_cluster = build_cluster(&trace);
    let recorder = Arc::new(TraceRecorder::new());
    first_cluster.set_recorder(Arc::clone(&recorder));
    let first = replay(&first_cluster, &trace, &sequential);

    let second_cluster = build_cluster(&trace);
    let second = replay(&second_cluster, &trace, &sequential);

    assert_eq!(first.fingerprint(), second.fingerprint());
    assert!(first.served() == trace.len());
    assert!(first.count(Outcome::CacheHit) > 0, "coordinator cache idle");

    // The capture hook saw every replayed request, with the client ids the
    // synthetic trace carried and outcomes matching the replay's own view.
    let captured = recorder.snapshot();
    assert_eq!(captured.len(), trace.len());
    assert_eq!(captured.client_ids(), trace.client_ids());
    assert_eq!(captured.scene_ids(), trace.scene_ids());
    let replayed_hits = first.count(Outcome::CacheHit);
    let captured_hits = captured
        .events
        .iter()
        .filter(|e| e.outcome == Outcome::CacheHit)
        .count();
    assert_eq!(replayed_hits, captured_hits);

    // A captured cluster trace is itself replayable: close the loop once.
    let reencoded = Trace::decode(&captured.encode()).unwrap();
    let third_cluster = build_cluster(&trace);
    let third = replay(&third_cluster, &reencoded, &sequential);
    assert_eq!(third.len(), trace.len());
    assert!(third.served() == trace.len());
}

#[test]
fn unknown_scenes_replay_as_error_outcomes_not_panics() {
    let trace = zipf_trace(40, 9);
    // A server that lost half the catalog (e.g. replayed against a smaller
    // deployment) answers UnknownScene; the replayer records the outcome.
    let server = RenderServer::new(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 30),
    );
    let keep: Vec<String> = trace.scene_ids().into_iter().take(2).collect();
    for id in &keep {
        let mut spec = SceneSpec::new(200);
        spec.seed = fnv1a(id.as_bytes());
        server
            .load_scene(id.clone(), Arc::new(spec.build()), spec.background)
            .unwrap();
    }
    let report = replay(&server, &trace, &ReplayConfig::sequential());
    server.shutdown();
    assert_eq!(report.len(), trace.len());
    assert!(report.count(Outcome::Error) > 0);
    assert!(report.served() > 0);
    assert_eq!(
        report.served() + report.count(Outcome::Error),
        trace.len(),
        "every event resolves to served-or-error under this setup"
    );
    // Error outcomes carry the zero hash, never a stale frame hash.
    assert!(report
        .requests
        .iter()
        .filter(|r| r.outcome == Outcome::Error)
        .all(|r| r.frame_hash == 0));
}

#[test]
fn closed_loop_concurrency_keeps_frame_hashes_deterministic() {
    let trace = zipf_trace(80, 13);
    // Cache off: concurrent replays interleave cache fills
    // nondeterministically, but rendering itself is bit-identical, so with
    // the cache out of the picture the full fingerprint must match the
    // sequential one.
    let build = || {
        let server = RenderServer::new(
            ServeConfig {
                workers: 2,
                queue_depth: 32,
                max_batch: 4,
                cache_bytes: 0,
                pose_quant: 0.05,
                shard_bytes: 0,
                ..ServeConfig::default()
            },
            SceneRegistry::with_budget(1 << 32),
        );
        for id in trace.scene_ids() {
            let mut spec = SceneSpec::new(300);
            spec.seed = fnv1a(id.as_bytes());
            server
                .load_scene(id, Arc::new(spec.build()), spec.background)
                .unwrap();
        }
        server
    };
    let sequential_server = build();
    let sequential = replay(&sequential_server, &trace, &ReplayConfig::sequential());
    sequential_server.shutdown();
    let concurrent_server = build();
    let concurrent = replay(&concurrent_server, &trace, &ReplayConfig::closed_loop(4));
    concurrent_server.shutdown();
    assert_eq!(sequential.fingerprint(), concurrent.fingerprint());
}

#[test]
fn phase_prediction_tracks_the_full_replay() {
    for (name, mut config) in [
        ("zipf", SynthConfig::zipf(200)),
        ("flash", SynthConfig::flash_crowd(200)),
    ] {
        config.seed = 21;
        let trace = generate(&config);
        let window_us = (trace.duration_us() / 10).max(1);
        let phases = cluster(&trace, &PhaseConfig::new(window_us, 3));
        let rep_server = build_server(&trace);
        let full_server = build_server(&trace);
        let prediction = predict_from_phases(
            &rep_server,
            &full_server,
            &trace,
            &phases,
            &ReplayConfig::sequential(),
        );
        rep_server.shutdown();
        full_server.shutdown();
        assert_eq!(prediction.total_events, trace.len(), "{name}");
        assert!(
            prediction.replay_fraction() < 1.0,
            "{name}: the estimate must replay a strict subset \
             ({}/{} events)",
            prediction.replayed_events,
            prediction.total_events
        );
        assert!(
            prediction.hit_rate_error() < 0.35,
            "{name}: predicted hit rate {:.3} vs full {:.3}",
            prediction.predicted_hit_rate,
            prediction.full_hit_rate
        );
        assert!(prediction.predicted_p50_ms.is_finite() && prediction.predicted_p50_ms >= 0.0);
        assert!(prediction.p50_relative_error().is_finite(), "{name}");
    }
}

#[test]
fn replayed_wire_requests_match_the_capture() {
    // from_trace_event -> to_render_request must reconstruct the captured
    // camera bit for bit; spot-check through the replayer's request path.
    let trace = zipf_trace(10, 1);
    let event = &trace.events[0];
    let request = WireRequest::from_trace_event(event);
    assert_eq!(request.scene, event.scene);
    assert_eq!(request.position, event.position);
    assert_eq!(request.target, event.target);
    assert_eq!(request.up, event.up);
    assert_eq!(request.fov_x.to_bits(), event.fov_x.to_bits());
    assert_eq!(
        (request.width, request.height),
        (event.width as usize, event.height as usize)
    );
    assert_eq!(request.sh_degree, event.sh_degree as usize);
}
