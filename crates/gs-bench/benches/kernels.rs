//! Criterion micro-benchmarks for the rendering kernels (frustum culling,
//! projection, forward and backward rasterization) that the GS-Scale
//! trainers are built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gs_core::camera::Viewport;
use gs_core::image::Image;
use gs_render::culling::frustum_cull;
use gs_render::loss::{loss_and_grad, LossKind};
use gs_render::pipeline::{render, render_backward};
use gs_render::projection::project_splats;
use gs_scene::{SceneConfig, SceneDataset};

fn bench_scene() -> SceneDataset {
    SceneDataset::generate(SceneConfig {
        name: "bench".to_string(),
        num_gaussians: 4000,
        init_points: 1000,
        width: 160,
        height: 120,
        num_train_views: 8,
        num_test_views: 2,
        target_active_ratio: 0.15,
        extent: 100.0,
        far_view_fraction: 0.0,
        seed: 9,
    })
}

fn kernels(c: &mut Criterion) {
    let scene = bench_scene();
    let cam = scene.train_cameras[2].clone();
    let vp = Viewport::full(&cam);
    let params = scene.gt_params.clone();

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    group.bench_function("frustum_cull_4k_gaussians", |b| {
        b.iter(|| frustum_cull(&params, &cam, &vp))
    });

    group.bench_function("projection_4k_gaussians", |b| {
        b.iter(|| project_splats(&params, &cam, 3, &vp))
    });

    group.bench_function("render_forward_160x120", |b| {
        b.iter(|| render(&params, &cam, 3, &vp, [0.0; 3]))
    });

    let output = render(&params, &cam, 3, &vp, [0.0; 3]);
    let target = Image::filled(cam.width, cam.height, [0.4, 0.4, 0.4]);
    let (_, d_image) = loss_and_grad(LossKind::L1, &output.image, &target);
    group.bench_function("render_backward_160x120", |b| {
        b.iter_batched(
            || (output.clone(), d_image.clone()),
            |(out, d)| render_backward(&params, &cam, 3, &out, &d),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
