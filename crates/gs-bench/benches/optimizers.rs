//! Criterion micro-benchmarks comparing the optimizer variants: dense Adam
//! (what the CPU must run in the naive offloading baseline), sparse Adam,
//! and the paper's deferred Adam — the memory-traffic reduction of the
//! deferred update is the core of Section 4.3.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gs_core::gaussian::{GaussianGrads, GaussianParams, SparseGrads};
use gs_core::math::Vec3;
use gs_optim::{AdamConfig, DeferredAdam, DenseAdam, SparseAdam};

const N: usize = 20_000;
const ACTIVE: usize = 1_600; // ~8% active, matching the paper's average.

fn make_params(n: usize) -> GaussianParams {
    let mut p = GaussianParams::with_capacity(n);
    for i in 0..n {
        let f = i as f32;
        p.push_isotropic(
            Vec3::new(f.sin() * 50.0, f.cos() * 50.0, (f * 0.37).sin() * 10.0),
            0.2,
            [0.5, 0.4, 0.3],
            0.7,
        );
    }
    p
}

fn make_sparse(n_total: usize, active: usize) -> SparseGrads {
    let ids: Vec<u32> = (0..active as u32).map(|i| i * (n_total as u32 / active as u32)).collect();
    let mut grads = GaussianGrads::zeros(ids.len());
    for k in 0..ids.len() {
        grads.means[3 * k] = (k as f32 * 0.1).sin() * 0.01;
        grads.opacities[k] = (k as f32 * 0.2).cos() * 0.01;
        grads.sh[48 * k] = 0.005;
    }
    SparseGrads { ids, grads }
}

fn optimizers(c: &mut Criterion) {
    let params = make_params(N);
    let sparse = make_sparse(N, ACTIVE);
    let dense_grads = sparse.to_dense(N);
    let cfg = AdamConfig::reference();

    let mut group = c.benchmark_group("optimizers");
    group.sample_size(15);

    group.bench_function("dense_adam_20k", |b| {
        b.iter_batched(
            || (DenseAdam::new(cfg, N), params.clone()),
            |(mut opt, mut p)| opt.step(&mut p, &dense_grads),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("sparse_adam_20k_8pct_active", |b| {
        b.iter_batched(
            || (SparseAdam::new(cfg, N), params.clone()),
            |(mut opt, mut p)| opt.step(&mut p, &sparse),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("deferred_adam_20k_8pct_active", |b| {
        b.iter_batched(
            || (DeferredAdam::new(cfg, N), params.clone()),
            |(mut opt, mut p)| opt.step(&mut p, &sparse),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, optimizers);
criterion_main!(benches);
