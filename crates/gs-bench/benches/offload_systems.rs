//! Criterion benchmarks of one full training iteration under each system
//! (GPU-only, baseline offloading, GS-Scale without deferred Adam, GS-Scale
//! with all optimizations) plus the platform models they rely on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gs_core::scene::init_gaussians_from_point_cloud;
use gs_platform::{PlatformSpec, Stream, TimelineSim, TransferModel};
use gs_scene::{SceneConfig, SceneDataset};
use gs_train::{
    GpuOnlyTrainer, OffloadOptions, OffloadTrainer, SystemKind, TrainConfig, Trainer,
};

fn bench_scene() -> SceneDataset {
    SceneDataset::generate(SceneConfig {
        name: "bench".to_string(),
        num_gaussians: 2500,
        init_points: 800,
        width: 128,
        height: 96,
        num_train_views: 6,
        num_test_views: 2,
        target_active_ratio: 0.12,
        extent: 100.0,
        far_view_fraction: 0.0,
        seed: 21,
    })
}

fn training_iteration(c: &mut Criterion) {
    let scene = bench_scene();
    let cam = scene.train_cameras[1].clone();
    let target = scene.ground_truth(&cam);
    let init = init_gaussians_from_point_cloud(&scene.init_cloud, 0.3);
    let platform = PlatformSpec::laptop_rtx4070m();
    let cfg = TrainConfig::fast_test(10);

    let mut group = c.benchmark_group("training_iteration");
    group.sample_size(10);

    for kind in SystemKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || match kind {
                    SystemKind::GpuOnly => Box::new(
                        GpuOnlyTrainer::new(cfg.clone(), platform.clone(), init.clone(), 100.0)
                            .expect("fits"),
                    ) as Box<dyn Trainer>,
                    other => Box::new(
                        OffloadTrainer::new(
                            cfg.clone(),
                            OffloadOptions::for_system(other),
                            platform.clone(),
                            init.clone(),
                            100.0,
                        )
                        .expect("fits"),
                    ) as Box<dyn Trainer>,
                },
                |mut trainer| trainer.step(&cam, &target).expect("step"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn platform_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_models");
    group.sample_size(30);

    group.bench_function("chunked_transfer_1gb", |b| {
        let model = TransferModel::new(16.0e9);
        b.iter(|| model.chunked_transfer_time(1_000_000_000))
    });

    group.bench_function("timeline_1000_events", |b| {
        b.iter(|| {
            let mut sim = TimelineSim::new();
            let mut prev = None;
            for i in 0..1000 {
                let deps: Vec<_> = prev.into_iter().collect();
                let stream = match i % 4 {
                    0 => Stream::CpuCompute,
                    1 => Stream::HostToDevice,
                    2 => Stream::GpuCompute,
                    _ => Stream::DeviceToHost,
                };
                prev = Some(sim.schedule(stream, "event", 1.0e-4, &deps));
            }
            sim.makespan()
        })
    });

    group.finish();
}

criterion_group!(benches, training_iteration, platform_models);
criterion_main!(benches);
