//! The machine-readable perf trajectory: `BENCH_<name>.json` reports.
//!
//! Every serving benchmark binary can emit its headline numbers as a small
//! JSON document (`--out BENCH_<name>.json`), so a CI run leaves behind a
//! comparable artifact per benchmark instead of only human-formatted
//! tables. The schema is deliberately flat and stable:
//!
//! ```json
//! {
//!   "bench": "serve_scaling",
//!   "scenarios": [
//!     {
//!       "scenario": "cache+batch8/workers=4",
//!       "throughput_rps": 812.4,
//!       "p50_ms": 3.1,
//!       "p90_ms": 6.0,
//!       "p99_ms": 9.8,
//!       "hit_rate": 0.62,
//!       "mean_batch": 2.4
//!     }
//!   ]
//! }
//! ```
//!
//! The writer is hand-rolled (the workspace is std-only); values are always
//! finite (`NaN`/`Inf` are written as `0`) so the output is strict JSON.

use std::io;
use std::path::Path;

use gs_serve::ServeStats;

/// One measured configuration of a benchmark.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchScenario {
    /// Configuration label, unique within the report.
    pub scenario: String,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Frame-cache hit rate in `[0, 1]` (0 when the cache is off).
    pub hit_rate: f64,
    /// Mean rendered batch size (0 when nothing was batched).
    pub mean_batch: f64,
}

impl BenchScenario {
    /// The scenario a [`ServeStats`] snapshot measures.
    pub fn from_serve_stats(scenario: impl Into<String>, stats: &ServeStats) -> Self {
        Self {
            scenario: scenario.into(),
            throughput_rps: stats.throughput_rps(),
            p50_ms: stats.latency.p50 * 1e3,
            p90_ms: stats.latency.p90 * 1e3,
            p99_ms: stats.latency.p99 * 1e3,
            hit_rate: stats.cache.hit_rate(),
            mean_batch: stats.mean_batch_size(),
        }
    }
}

/// A benchmark's full perf report: one [`BenchScenario`] per configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (`serve_scaling`, `cluster_scaling`, ...).
    pub bench: String,
    /// Measured configurations, in sweep order.
    pub scenarios: Vec<BenchScenario>,
}

impl BenchReport {
    /// An empty report for `bench`.
    pub fn new(bench: impl Into<String>) -> Self {
        Self {
            bench: bench.into(),
            scenarios: Vec::new(),
        }
    }

    /// Appends one measured scenario.
    pub fn push(&mut self, scenario: BenchScenario) {
        self.scenarios.push(scenario);
    }

    /// Serializes the report as strict JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_str(&self.bench)));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"scenario\": {},\n", json_str(&s.scenario)));
            out.push_str(&format!(
                "      \"throughput_rps\": {},\n",
                json_num(s.throughput_rps)
            ));
            out.push_str(&format!("      \"p50_ms\": {},\n", json_num(s.p50_ms)));
            out.push_str(&format!("      \"p90_ms\": {},\n", json_num(s.p90_ms)));
            out.push_str(&format!("      \"p99_ms\": {},\n", json_num(s.p99_ms)));
            out.push_str(&format!("      \"hit_rate\": {},\n", json_num(s.hit_rate)));
            out.push_str(&format!(
                "      \"mean_batch\": {}\n",
                json_num(s.mean_batch)
            ));
            out.push_str(if i + 1 == self.scenarios.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path` (creating parent directories, so
    /// `--out perf-reports/BENCH_x.json` works in a fresh CI checkout) and
    /// prints where it went.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())?;
        println!(
            "\nwrote perf report: {} ({} scenario(s))",
            path.display(),
            self.scenarios.len()
        );
        Ok(())
    }
}

/// A finite JSON number (`NaN`/`Inf` degrade to `0`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_as_strict_json() {
        let mut report = BenchReport::new("serve_scaling");
        report.push(BenchScenario {
            scenario: "cache/workers=1".to_string(),
            throughput_rps: 123.5,
            p50_ms: 3.25,
            p90_ms: 5.5,
            p99_ms: 9.0,
            hit_rate: 0.5,
            mean_batch: 1.75,
        });
        report.push(BenchScenario {
            scenario: "weird \"label\"\\".to_string(),
            throughput_rps: f64::NAN,
            ..BenchScenario::default()
        });
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve_scaling\""));
        assert!(json.contains("\"throughput_rps\": 123.5"));
        // Non-finite numbers degrade to 0, never to invalid JSON tokens.
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"weird \\\"label\\\"\\\\\""));
        // Balanced braces/brackets and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n    }\n"));
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn write_lands_on_disk() {
        let dir = std::env::temp_dir().join(format!("gs_bench_perf_{}", std::process::id()));
        // No create_dir_all here: write() must create missing parents itself.
        let path = dir.join("perf-reports").join("BENCH_test.json");
        let report = BenchReport::new("test");
        report.write(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, report.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
