//! The machine-readable perf trajectory: `BENCH_<name>.json` reports.
//!
//! Every serving benchmark binary can emit its headline numbers as a small
//! JSON document (`--out BENCH_<name>.json`), so a CI run leaves behind a
//! comparable artifact per benchmark instead of only human-formatted
//! tables. The schema is deliberately flat and stable:
//!
//! ```json
//! {
//!   "bench": "serve_scaling",
//!   "scenarios": [
//!     {
//!       "scenario": "cache+batch8/workers=4",
//!       "throughput_rps": 812.4,
//!       "p50_ms": 3.1,
//!       "p90_ms": 6.0,
//!       "p99_ms": 9.8,
//!       "hit_rate": 0.62,
//!       "mean_batch": 2.4
//!     }
//!   ]
//! }
//! ```
//!
//! Benchmarks that measure the render kernels directly (currently
//! `serve_scaling`'s kernel microbench) additionally emit a `"roofline"`
//! array: one entry per kernel phase with its measured time, achieved
//! GFLOP/s and GB/s, operational intensity, modelled roofline efficiency,
//! and speedup over the scalar reference kernel. The section is omitted
//! when empty, so older readers and artifacts stay compatible.
//!
//! The writer is hand-rolled (the workspace is std-only); values are always
//! finite (`NaN`/`Inf` are written as `0`) so the output is strict JSON.
//! [`BenchReport::from_json`] reads the documents back (via [`crate::json`])
//! so CI can diff consecutive artifacts.

use std::io;
use std::path::Path;

use gs_serve::ServeStats;

use crate::json::{self, JsonValue};

/// One measured configuration of a benchmark.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchScenario {
    /// Configuration label, unique within the report.
    pub scenario: String,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Frame-cache hit rate in `[0, 1]` (0 when the cache is off).
    pub hit_rate: f64,
    /// Mean rendered batch size (0 when nothing was batched).
    pub mean_batch: f64,
    /// The p99 latency SLO this scenario is held to, in milliseconds
    /// (0 = no SLO declared). `bench_diff` raises an `::error::`
    /// annotation — still warn-only for the job — when `p99_ms` exceeds
    /// it, independent of any baseline comparison.
    pub slo_p99_ms: f64,
}

impl BenchScenario {
    /// The scenario a [`ServeStats`] snapshot measures.
    pub fn from_serve_stats(scenario: impl Into<String>, stats: &ServeStats) -> Self {
        Self {
            scenario: scenario.into(),
            throughput_rps: stats.throughput_rps(),
            p50_ms: stats.latency.p50 * 1e3,
            p90_ms: stats.latency.p90 * 1e3,
            p99_ms: stats.latency.p99 * 1e3,
            hit_rate: stats.cache.hit_rate(),
            mean_batch: stats.mean_batch_size(),
            slo_p99_ms: 0.0,
        }
    }

    /// Declares the p99 latency SLO the scenario is held to.
    #[must_use]
    pub fn with_slo_p99_ms(mut self, slo_p99_ms: f64) -> Self {
        self.slo_p99_ms = slo_p99_ms;
        self
    }
}

/// One kernel phase's achieved-vs-peak roofline measurement.
///
/// Produced by pairing a phase's [`gs_render::cost`] work estimate with its
/// measured wall-clock time (see `gs_platform::roofline::RooflinePoint`);
/// flattened here to plain numbers so the JSON schema stays self-contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RooflineEntry {
    /// Phase label, e.g. `project/soa-lane` or `raster/tiled`.
    pub phase: String,
    /// Measured wall-clock seconds for the phase.
    pub seconds: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Achieved GB/s of memory traffic.
    pub gbytes_s: f64,
    /// Operational intensity, FLOP/byte.
    pub intensity: f64,
    /// Fraction of the modelled roofline ceiling achieved (1.0 = at the
    /// roof).
    pub efficiency: f64,
    /// Throughput relative to the scalar reference kernel of the same
    /// phase (1.0 for the reference itself).
    pub speedup: f64,
}

/// A benchmark's full perf report: one [`BenchScenario`] per configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (`serve_scaling`, `cluster_scaling`, ...).
    pub bench: String,
    /// Measured configurations, in sweep order.
    pub scenarios: Vec<BenchScenario>,
    /// Kernel-phase roofline measurements (empty for benchmarks that only
    /// measure end-to-end serving).
    pub roofline: Vec<RooflineEntry>,
}

impl BenchReport {
    /// An empty report for `bench`.
    pub fn new(bench: impl Into<String>) -> Self {
        Self {
            bench: bench.into(),
            scenarios: Vec::new(),
            roofline: Vec::new(),
        }
    }

    /// Appends one measured scenario.
    pub fn push(&mut self, scenario: BenchScenario) {
        self.scenarios.push(scenario);
    }

    /// Appends one kernel-phase roofline measurement.
    pub fn push_roofline(&mut self, entry: RooflineEntry) {
        self.roofline.push(entry);
    }

    /// Serializes the report as strict JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_str(&self.bench)));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"scenario\": {},\n", json_str(&s.scenario)));
            out.push_str(&format!(
                "      \"throughput_rps\": {},\n",
                json_num(s.throughput_rps)
            ));
            out.push_str(&format!("      \"p50_ms\": {},\n", json_num(s.p50_ms)));
            out.push_str(&format!("      \"p90_ms\": {},\n", json_num(s.p90_ms)));
            out.push_str(&format!("      \"p99_ms\": {},\n", json_num(s.p99_ms)));
            out.push_str(&format!("      \"hit_rate\": {},\n", json_num(s.hit_rate)));
            // The SLO member is written only when declared, so artifacts
            // from benchmarks without SLOs stay byte-identical to the old
            // schema (and old readers ignore it when present).
            if s.slo_p99_ms > 0.0 {
                out.push_str(&format!(
                    "      \"slo_p99_ms\": {},\n",
                    json_num(s.slo_p99_ms)
                ));
            }
            out.push_str(&format!(
                "      \"mean_batch\": {}\n",
                json_num(s.mean_batch)
            ));
            out.push_str(if i + 1 == self.scenarios.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        if self.roofline.is_empty() {
            out.push_str("  ]\n}\n");
            return out;
        }
        out.push_str("  ],\n");
        out.push_str("  \"roofline\": [\n");
        for (i, r) in self.roofline.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"phase\": {},\n", json_str(&r.phase)));
            out.push_str(&format!("      \"seconds\": {},\n", json_num(r.seconds)));
            out.push_str(&format!("      \"gflops\": {},\n", json_num(r.gflops)));
            out.push_str(&format!("      \"gbytes_s\": {},\n", json_num(r.gbytes_s)));
            out.push_str(&format!(
                "      \"intensity\": {},\n",
                json_num(r.intensity)
            ));
            out.push_str(&format!(
                "      \"efficiency\": {},\n",
                json_num(r.efficiency)
            ));
            out.push_str(&format!("      \"speedup\": {}\n", json_num(r.speedup)));
            out.push_str(if i + 1 == self.roofline.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously produced by [`Self::to_json`].
    ///
    /// Unknown fields are ignored and missing numeric fields default to 0,
    /// so reports written by older or newer versions of the schema still
    /// load — exactly what the CI artifact diff needs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `input` is not valid JSON or
    /// is missing the report skeleton (`bench`, `scenarios`).
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let bench = doc
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"bench\" field")?
            .to_string();
        let scenarios = doc
            .get("scenarios")
            .and_then(JsonValue::as_array)
            .ok_or("missing \"scenarios\" array")?
            .iter()
            .map(|s| {
                Ok(BenchScenario {
                    scenario: s
                        .get("scenario")
                        .and_then(JsonValue::as_str)
                        .ok_or("scenario entry missing \"scenario\" label")?
                        .to_string(),
                    throughput_rps: num_field(s, "throughput_rps"),
                    p50_ms: num_field(s, "p50_ms"),
                    p90_ms: num_field(s, "p90_ms"),
                    p99_ms: num_field(s, "p99_ms"),
                    hit_rate: num_field(s, "hit_rate"),
                    mean_batch: num_field(s, "mean_batch"),
                    slo_p99_ms: num_field(s, "slo_p99_ms"),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let roofline = doc
            .get("roofline")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|r| {
                Ok(RooflineEntry {
                    phase: r
                        .get("phase")
                        .and_then(JsonValue::as_str)
                        .ok_or("roofline entry missing \"phase\" label")?
                        .to_string(),
                    seconds: num_field(r, "seconds"),
                    gflops: num_field(r, "gflops"),
                    gbytes_s: num_field(r, "gbytes_s"),
                    intensity: num_field(r, "intensity"),
                    efficiency: num_field(r, "efficiency"),
                    speedup: num_field(r, "speedup"),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            bench,
            scenarios,
            roofline,
        })
    }

    /// Writes the JSON report to `path` (creating parent directories, so
    /// `--out perf-reports/BENCH_x.json` works in a fresh CI checkout) and
    /// prints where it went.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())?;
        println!(
            "\nwrote perf report: {} ({} scenario(s), {} roofline row(s))",
            path.display(),
            self.scenarios.len(),
            self.roofline.len()
        );
        Ok(())
    }
}

/// A numeric member of `node`, defaulting to 0 when absent or non-numeric.
fn num_field(node: &JsonValue, key: &str) -> f64 {
    node.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

/// A finite JSON number (`NaN`/`Inf` degrade to `0`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_as_strict_json() {
        let mut report = BenchReport::new("serve_scaling");
        report.push(BenchScenario {
            scenario: "cache/workers=1".to_string(),
            throughput_rps: 123.5,
            p50_ms: 3.25,
            p90_ms: 5.5,
            p99_ms: 9.0,
            hit_rate: 0.5,
            mean_batch: 1.75,
            slo_p99_ms: 0.0,
        });
        report.push(BenchScenario {
            scenario: "weird \"label\"\\".to_string(),
            throughput_rps: f64::NAN,
            ..BenchScenario::default()
        });
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve_scaling\""));
        assert!(json.contains("\"throughput_rps\": 123.5"));
        // Non-finite numbers degrade to 0, never to invalid JSON tokens.
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"weird \\\"label\\\"\\\\\""));
        // Balanced braces/brackets and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n    }\n"));
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("serve_scaling");
        report.push(BenchScenario {
            scenario: "cache/workers=2".to_string(),
            throughput_rps: 412.25,
            p50_ms: 2.5,
            p90_ms: 4.0,
            p99_ms: 8.125,
            hit_rate: 0.25,
            mean_batch: 1.5,
            slo_p99_ms: 0.0,
        });
        report.push_roofline(RooflineEntry {
            phase: "raster/tiled".to_string(),
            seconds: 0.015625,
            gflops: 12.5,
            gbytes_s: 30.0,
            intensity: 0.75,
            efficiency: 0.40625,
            speedup: 2.5,
        });
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn reports_without_a_roofline_section_still_load() {
        // The pre-roofline schema: CI must be able to read last week's
        // artifact to diff against it.
        let legacy = "{\n  \"bench\": \"serve_scaling\",\n  \"scenarios\": [\n    {\n      \
                      \"scenario\": \"a\",\n      \"throughput_rps\": 10\n    }\n  ]\n}\n";
        let parsed = BenchReport::from_json(legacy).unwrap();
        assert_eq!(parsed.bench, "serve_scaling");
        assert_eq!(parsed.scenarios.len(), 1);
        assert_eq!(parsed.scenarios[0].throughput_rps, 10.0);
        assert_eq!(parsed.scenarios[0].p99_ms, 0.0);
        assert!(parsed.roofline.is_empty());
    }

    #[test]
    fn slo_thresholds_round_trip_and_stay_optional() {
        let mut report = BenchReport::new("trace_replay");
        report.push(
            BenchScenario {
                scenario: "flash-crowd".to_string(),
                p99_ms: 12.0,
                ..BenchScenario::default()
            }
            .with_slo_p99_ms(250.0),
        );
        report.push(BenchScenario {
            scenario: "no-slo".to_string(),
            ..BenchScenario::default()
        });
        let json = report.to_json();
        assert!(json.contains("\"slo_p99_ms\": 250"));
        assert_eq!(
            json.matches("slo_p99_ms").count(),
            1,
            "undeclared SLOs must be omitted: {json}"
        );
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_non_reports() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{\"bench\": \"x\"}").is_err());
        assert!(BenchReport::from_json("{\"scenarios\": []}").is_err());
    }

    #[test]
    fn write_lands_on_disk() {
        let dir = std::env::temp_dir().join(format!("gs_bench_perf_{}", std::process::id()));
        // No create_dir_all here: write() must create missing parents itself.
        let path = dir.join("perf-reports").join("BENCH_test.json");
        let report = BenchReport::new("test");
        report.write(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, report.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
