//! Benchmark harness regenerating every table and figure of the GS-Scale
//! paper's evaluation.
//!
//! Each binary under `src/bin/` reproduces one experiment and prints the
//! corresponding rows/series (see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results). The [`harness`] module
//! holds the shared machinery: scene construction at a runnable scale,
//! trainer construction per system, throughput measurement, the shared
//! CLI flags ([`BenchArgs`]) and table formatting. [`perf`] adds the
//! machine-readable `BENCH_<name>.json` perf-trajectory reports ([`json`]
//! reads them back for the CI regression diff, see the `bench_diff`
//! binary), and
//! [`replay`] the deterministic workload replayer driving captured
//! [`gs_trace::Trace`]s back through a `RenderServer` or a cluster
//! `Coordinator` (see the `trace_replay` binary). Criterion
//! micro-benchmarks for the individual kernels and optimizers live under
//! `benches/`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod json;
pub mod perf;
pub mod replay;

pub use harness::{
    build_offload_options, build_scene, fmt_gb, fmt_ratio, initial_params, measure_run,
    print_table, quality_after_training, BenchArgs, ExperimentScale,
};
pub use perf::{BenchReport, BenchScenario, RooflineEntry};
pub use replay::{
    fnv1a, hash_image, predict_from_phases, replay, replay_events, PhasePrediction, ReplayConfig,
    ReplayMode, ReplayReport, ReplayTarget, ReplayedRequest,
};
