//! Cluster-scaling sweep: throughput and tail latency across replica
//! count, shard count and per-replica worker count, in the spirit of SPEC's
//! multi-configuration workload characterization — the serving tier is
//! measured across representative (replicas × shards × workers) points, not
//! one happy-path demo.
//!
//! Each configuration builds an in-process cluster (the transports are
//! interchangeable; in-process keeps the sweep about the coordinator, not
//! the loopback stack), loads a corridor scene — unsharded on one replica,
//! or sharded **across** the fleet — and drives it with closed-loop
//! clients. The relay composite is used throughout, so every configuration
//! serves bit-identical frames; the sweep charts what the fleet buys
//! (aggregate workers) and what cross-node fan-out costs (sequential layer
//! hops per request).
//!
//! Usage: `cargo run --release -p gs-bench --bin cluster_scaling
//! [--full] [--seed <n>] [--out BENCH_cluster.json]`
//!
//! `--out` writes the machine-readable perf report (one scenario per
//! (replicas × shards × workers) cell, see [`gs_bench::perf`]).

use std::sync::Arc;

use gs_bench::{print_table, BenchArgs, BenchReport, BenchScenario};
use gs_cluster::{ClusterConfig, ClusterStats, CompositeMode, Coordinator, ReplicaTransport};
use gs_scene::tour::{TourConfig, TourScene};
use gs_serve::{RenderServer, SceneRegistry, ServeConfig, WireRequest};

struct Workload {
    scene: Arc<TourScene>,
    clients: usize,
    requests_per_client: usize,
}

fn build_workload(full: bool) -> Workload {
    let (gaussians, requests_per_client) = if full { (12_000, 25) } else { (2_000, 6) };
    Workload {
        scene: Arc::new(TourScene::generate(TourConfig {
            name: "cluster-tour".to_string(),
            num_gaussians: gaussians,
            length: 90.0,
            half_section: 4.0,
            width: 80,
            height: 60,
            num_views: 8,
            seed: 1100,
        })),
        clients: 8,
        requests_per_client,
    }
}

fn request_for(scene: &TourScene, view: usize) -> WireRequest {
    let cam = &scene.cameras[view % scene.cameras.len()];
    let mut req = WireRequest::new(
        "tour",
        [cam.position.x, cam.position.y, cam.position.z],
        [cam.position.x + 1.0, cam.position.y, cam.position.z],
        cam.width,
        cam.height,
    );
    req.fov_x = 1.2;
    req
}

fn run(workload: &Workload, replicas: usize, shards: usize, workers: usize) -> ClusterStats {
    let cluster = Arc::new(Coordinator::new(ClusterConfig {
        composite: CompositeMode::Relay,
        ..ClusterConfig::default()
    }));
    for i in 0..replicas {
        let server = Arc::new(RenderServer::new(
            ServeConfig {
                workers,
                queue_depth: 64,
                max_batch: 4,
                cache_bytes: 0,
                pose_quant: 0.05,
                shard_bytes: 0,
                ..ServeConfig::default()
            },
            SceneRegistry::with_budget(1 << 32),
        ));
        cluster
            .add_replica(format!("replica-{i}"), ReplicaTransport::InProcess(server))
            .unwrap();
    }
    let params = Arc::new(workload.scene.gt_params.clone());
    if shards <= 1 {
        cluster
            .load_scene("tour", params, workload.scene.background)
            .unwrap();
    } else {
        cluster
            .load_scene_sharded("tour", params, workload.scene.background, shards)
            .unwrap();
    }
    std::thread::scope(|scope| {
        for c in 0..workload.clients {
            let cluster = Arc::clone(&cluster);
            let scene = Arc::clone(&workload.scene);
            let n = workload.requests_per_client;
            scope.spawn(move || {
                for r in 0..n {
                    cluster.render(&request_for(&scene, c + r)).unwrap();
                }
            });
        }
    });
    cluster.stats()
}

fn main() {
    let args = BenchArgs::parse();
    let workload = build_workload(args.full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} gaussians, {} clients x {} closed-loop requests = {} per config",
        workload.scene.gt_params.len(),
        workload.clients,
        workload.requests_per_client,
        total
    );

    let mut rows = Vec::new();
    let mut report = BenchReport::new("cluster_scaling");
    let started = std::time::Instant::now();
    for &replicas in &[1usize, 2, 4] {
        for &shards in &[1usize, 2, 4] {
            for &workers in &[1usize, 2] {
                let run_started = std::time::Instant::now();
                let stats = run(&workload, replicas, shards, workers);
                let elapsed = run_started.elapsed().as_secs_f64();
                report.push(BenchScenario {
                    scenario: format!("replicas={replicas}/shards={shards}/workers={workers}"),
                    throughput_rps: total as f64 / elapsed.max(1e-9),
                    p50_ms: stats.latency.p50 * 1e3,
                    p90_ms: stats.latency.p90 * 1e3,
                    p99_ms: stats.latency.p99 * 1e3,
                    hit_rate: stats.cache.hit_rate(),
                    // The coordinator routes whole requests; batching lives
                    // on the replicas and is not aggregated cluster-wide.
                    mean_batch: 0.0,
                    slo_p99_ms: gs_serve::ObsTuning::default().slo_p99_ms,
                });
                rows.push(vec![
                    replicas.to_string(),
                    shards.to_string(),
                    workers.to_string(),
                    format!("{:.1}", total as f64 / elapsed),
                    format!("{:.2}", stats.latency.p50 * 1e3),
                    format!("{:.2}", stats.latency.p99 * 1e3),
                    stats.shard_relays.to_string(),
                    stats.shards_culled.to_string(),
                    format!("{:.2}", stats.merged_replica_latency.p50 * 1e3),
                ]);
            }
        }
    }
    print_table(
        "Cluster serving: replicas x shards x per-replica workers",
        &[
            "Replicas",
            "Shards",
            "Workers",
            "req/s",
            "p50 (ms)",
            "p99 (ms)",
            "Relays",
            "Culled",
            "Replica p50 (ms)",
        ],
        &rows,
    );
    println!(
        "\ntotal sweep time {:.1}s. Expected shape: replicas multiply aggregate workers, so\n\
         unsharded throughput scales with the fleet until the clients saturate; cross-node\n\
         shards add K sequential relay hops per request (latency), which buys serving\n\
         scenes no single replica could admit. View culling trims the relayed layers on\n\
         corridor views looking away from part of the scene.",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = &args.out {
        report.write(path).expect("perf report path is writable");
    }
}
