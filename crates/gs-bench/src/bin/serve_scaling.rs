//! Serving scalability sweep: throughput and tail latency of the `gs-serve`
//! rendering service as the worker count grows, with batching and the frame
//! cache on or off.
//!
//! This is the serving-side companion to the training figures: it measures
//! how the same multi-scene workload behaves under contention, which is the
//! regime a production deployment of trained GS-Scale scenes lives in.
//!
//! Before the sweep, a kernel microbench times the scalar reference render
//! path against the SoA lane-batched and tile-parallel kernels on one of
//! the workload's scenes (asserting byte-identity), pairs each phase with
//! its analytic `gs_render::cost` work estimate, and reports achieved
//! GFLOP/s / GB/s / roofline efficiency per phase into the JSON report's
//! `"roofline"` section.
//!
//! Usage: `cargo run --release -p gs-bench --bin serve_scaling
//! [--full] [--seed <n>] [--out BENCH_serve.json]`
//!
//! `--out` writes the machine-readable perf report (one scenario per
//! sweep cell, see [`gs_bench::perf`]) for CI's perf trajectory.

use std::sync::Arc;

use gs_bench::{print_table, BenchArgs, BenchReport, BenchScenario, RooflineEntry};
use gs_core::camera::Viewport;
use gs_core::rng::Rng64;
use gs_core::GaussianSoa;
use gs_platform::roofline::{RooflinePoint, Work};
use gs_platform::specs::PlatformSpec;
use gs_render::cost::{projection_cost, raster_forward_cost};
use gs_render::tiles::TileGrid;
use gs_render::{
    project_splats, project_splats_reference, rasterize_forward, rasterize_forward_reference,
    rasterize_forward_tiled,
};
use gs_scene::{SceneConfig, SceneDataset};
use gs_serve::{RenderRequest, RenderServer, SceneRegistry, ServeConfig, ServeStats};

struct Workload {
    scenes: Arc<Vec<SceneDataset>>,
    clients: usize,
    requests_per_client: usize,
}

fn build_workload(full: bool) -> Workload {
    let (num_scenes, gaussians, requests_per_client) =
        if full { (6, 2400, 60) } else { (4, 900, 25) };
    let scenes: Vec<SceneDataset> = (0..num_scenes)
        .map(|i| {
            SceneDataset::generate(SceneConfig {
                name: format!("shard-{i}"),
                num_gaussians: gaussians,
                init_points: 64,
                width: 80,
                height: 60,
                num_train_views: 8,
                num_test_views: 2,
                target_active_ratio: 0.25,
                extent: 80.0,
                far_view_fraction: 0.0,
                seed: 4200 + i as u64,
            })
        })
        .collect();
    Workload {
        scenes: Arc::new(scenes),
        clients: 8,
        requests_per_client,
    }
}

fn run(workload: &Workload, workers: usize, cache: bool, max_batch: usize) -> ServeStats {
    let server = Arc::new(RenderServer::new(
        ServeConfig {
            workers,
            queue_depth: 64,
            max_batch,
            cache_bytes: if cache { 64 << 20 } else { 0 },
            pose_quant: 0.05,
            shard_bytes: 0,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 32),
    ));
    for (i, scene) in workload.scenes.iter().enumerate() {
        server
            .load_scene(
                format!("shard-{i}"),
                Arc::new(scene.gt_params.clone()),
                scene.background,
            )
            .unwrap();
    }
    let handles: Vec<_> = (0..workload.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let scenes = Arc::clone(&workload.scenes);
            let n = workload.requests_per_client;
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from_u64(10_000 + c as u64);
                for _ in 0..n {
                    let idx = rng.gen_range(0usize..scenes.len());
                    let scene = &scenes[idx];
                    // Every request re-uses one of the scene's 8 flight-path
                    // cameras verbatim: a deliberately cache-friendly
                    // workload so the cache row isolates the hit-path cost
                    // (the mixed popular/exploratory workload lives in
                    // examples/serve_traffic.rs).
                    let cam = scene.train_cameras[rng.gen_range(0usize..scene.train_cameras.len())]
                        .clone();
                    server
                        .render_blocking(RenderRequest::full(format!("shard-{idx}"), cam))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    Arc::into_inner(server).unwrap().shutdown()
}

/// Best-of-`reps` wall-clock seconds for one invocation of `f`.
fn best_seconds<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Reduces one measured phase to a [`RooflineEntry`] row.
fn roofline_entry(
    phase: &str,
    work: &Work,
    seconds: f64,
    reference_seconds: f64,
    cpu: &gs_platform::specs::DeviceSpec,
) -> RooflineEntry {
    let point = RooflinePoint::new(work, seconds);
    RooflineEntry {
        phase: phase.to_string(),
        seconds,
        gflops: point.achieved_flops() / 1e9,
        gbytes_s: point.achieved_bandwidth() / 1e9,
        intensity: point.operational_intensity(),
        efficiency: point.efficiency(cpu, false),
        speedup: if seconds > 0.0 {
            reference_seconds / seconds
        } else {
            0.0
        },
    }
}

/// Measures the render kernels head-to-head on one of the workload's scenes:
/// the scalar reference path (the seed's pixel-outer loops) against the
/// SoA lane-batched kernels and the tile-parallel rasterizer, asserting
/// byte-identity between every pair along the way.
///
/// Each phase's time is paired with its `gs_render::cost` work estimate and
/// situated against the modelled desktop CPU roofline (the same
/// [`PlatformSpec`] the platform crate uses for its figures), so the report
/// records not just "faster" but *where each kernel sits relative to the
/// machine's ceiling*.
fn kernel_microbench(workload: &Workload, report: &mut BenchReport) {
    let scene = &workload.scenes[0];
    let params = &scene.gt_params;
    let cam = &scene.train_cameras[0];
    let vp = Viewport::full(cam);
    let sh_degree = gs_core::sh::MAX_DEGREE;
    let background = scene.background;
    let cpu = PlatformSpec::desktop_rtx4080s().cpu;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = 20;

    // --- byte-identity gates: the refactor's invariant, re-checked here so
    // a perf report can never quote a kernel that drifted.
    let splats_ref = project_splats_reference(params, cam, sh_degree, &vp);
    let splats_soa = project_splats(params, cam, sh_degree, &vp);
    assert_eq!(
        splats_ref.len(),
        splats_soa.len(),
        "SoA projection must keep the reference's surviving set"
    );
    let grid = TileGrid::build(&splats_soa, vp);
    let (img_ref, aux) = rasterize_forward_reference(&splats_soa, &grid, background);
    let (img_lane, _) = rasterize_forward(&splats_soa, &grid, background);
    let (img_tiled, _) = rasterize_forward_tiled(&splats_soa, &grid, background, threads);
    assert_eq!(img_ref.data(), img_lane.data(), "lane kernel drifted");
    assert_eq!(img_ref.data(), img_tiled.data(), "tiled kernel drifted");

    // --- work estimates from the analytic cost model.
    let pairs: usize = aux.n_processed.iter().map(|&n| n as usize).sum();
    let pixels = vp.width() * vp.height();
    let proj_est = projection_cost(params.len());
    let raster_est = raster_forward_cost(pairs, pixels);
    let proj_work = Work::new(proj_est.flops, proj_est.total_bytes());
    let raster_work = Work::new(raster_est.flops, raster_est.total_bytes());
    let frame_work = proj_work.combine(&raster_work);

    // --- measured phases (best-of-reps to shed scheduler noise).
    let t_proj_ref = best_seconds(reps, || {
        project_splats_reference(params, cam, sh_degree, &vp)
    });
    // The facade path serving actually pays: SoA build + specialized kernel.
    let t_proj_soa = best_seconds(reps, || project_splats(params, cam, sh_degree, &vp));
    // And the prebuilt-view path batch rendering pays after its one build.
    let soa = GaussianSoa::build(params, sh_degree);
    let t_proj_hot = best_seconds(reps, || gs_render::project_splats_soa(&soa, cam, &vp));
    let t_rast_ref = best_seconds(reps, || {
        rasterize_forward_reference(&splats_soa, &grid, background)
    });
    let t_rast_lane = best_seconds(reps, || rasterize_forward(&splats_soa, &grid, background));
    let t_rast_tiled = best_seconds(reps, || {
        rasterize_forward_tiled(&splats_soa, &grid, background, threads)
    });
    let t_frame_ref = t_proj_ref + t_rast_ref;
    let t_frame_tuned = t_proj_soa + t_rast_tiled.min(t_rast_lane);

    for entry in [
        roofline_entry(
            "project/reference",
            &proj_work,
            t_proj_ref,
            t_proj_ref,
            &cpu,
        ),
        roofline_entry("project/soa-lane", &proj_work, t_proj_soa, t_proj_ref, &cpu),
        roofline_entry(
            "project/soa-prebuilt",
            &proj_work,
            t_proj_hot,
            t_proj_ref,
            &cpu,
        ),
        roofline_entry(
            "raster/reference",
            &raster_work,
            t_rast_ref,
            t_rast_ref,
            &cpu,
        ),
        roofline_entry("raster/lane", &raster_work, t_rast_lane, t_rast_ref, &cpu),
        roofline_entry(
            &format!("raster/tiled-x{threads}"),
            &raster_work,
            t_rast_tiled,
            t_rast_ref,
            &cpu,
        ),
        roofline_entry(
            "frame/reference",
            &frame_work,
            t_frame_ref,
            t_frame_ref,
            &cpu,
        ),
        roofline_entry("frame/tuned", &frame_work, t_frame_tuned, t_frame_ref, &cpu),
    ] {
        report.push_roofline(entry);
    }

    let rows: Vec<Vec<String>> = report
        .roofline
        .iter()
        .map(|r| {
            vec![
                r.phase.clone(),
                format!("{:.1}", r.seconds * 1e6),
                format!("{:.2}", r.gflops),
                format!("{:.2}", r.gbytes_s),
                format!("{:.2}", r.intensity),
                format!("{:.0}%", r.efficiency * 100.0),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Kernel roofline: {} Gaussians, {}x{} px, {} splat/pixel pairs (modelled vs desktop CPU)",
            params.len(),
            vp.width(),
            vp.height(),
            pairs
        ),
        &[
            "Phase", "us", "GFLOP/s", "GB/s", "FLOP/B", "Roofline", "Speedup",
        ],
        &rows,
    );
}

fn main() {
    let args = BenchArgs::parse();
    let workload = build_workload(args.full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} scenes, {} clients x {} closed-loop requests = {} total",
        workload.scenes.len(),
        workload.clients,
        workload.requests_per_client,
        total
    );

    let mut report = BenchReport::new("serve_scaling");
    kernel_microbench(&workload, &mut report);

    let mut rows = Vec::new();
    for &(cache, max_batch, label) in &[
        (false, 1usize, "no cache, no batching"),
        (false, 8, "no cache, batch<=8"),
        (true, 8, "cache + batch<=8"),
    ] {
        let mut base_rps = 0.0;
        for workers in [1usize, 2, 4] {
            let stats = run(&workload, workers, cache, max_batch);
            if workers == 1 {
                base_rps = stats.throughput_rps();
            }
            // Every serving configuration is held to the default serving
            // SLO (ObsTuning's 250 ms p99): bench_diff raises an
            // `::error::` annotation when a run breaches it.
            report.push(
                BenchScenario::from_serve_stats(format!("{label}/workers={workers}"), &stats)
                    .with_slo_p99_ms(gs_serve::ObsTuning::default().slo_p99_ms),
            );
            rows.push(vec![
                label.to_string(),
                workers.to_string(),
                format!("{:.1}", stats.throughput_rps()),
                format!("{:.2}x", stats.throughput_rps() / base_rps),
                format!("{:.2}", stats.latency.p50 * 1e3),
                format!("{:.2}", stats.latency.p99 * 1e3),
                format!("{:.0}%", stats.cache.hit_rate() * 100.0),
                format!("{:.2}", stats.mean_batch_size()),
            ]);
        }
    }
    print_table(
        "Serving scalability: workers vs throughput / tail latency",
        &[
            "Config", "Workers", "req/s", "Scaling", "p50 (ms)", "p99 (ms)", "Hit rate", "Batch",
        ],
        &rows,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n({cores} core(s) available; wall-clock worker scaling saturates at the core count.)"
    );
    println!(
        "\nExpected shape: throughput grows with workers until render work is saturated;\n\
         batching lifts the no-cache configurations by sharing per-scene gathers under\n\
         contention; the frame cache collapses popular-viewpoint traffic into hits, which\n\
         raises req/s and cuts p50 sharply while p99 tracks the residual cold renders."
    );
    if let Some(path) = &args.out {
        report.write(path).expect("perf report path is writable");
    }
}
