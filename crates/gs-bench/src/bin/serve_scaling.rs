//! Serving scalability sweep: throughput and tail latency of the `gs-serve`
//! rendering service as the worker count grows, with batching and the frame
//! cache on or off.
//!
//! This is the serving-side companion to the training figures: it measures
//! how the same multi-scene workload behaves under contention, which is the
//! regime a production deployment of trained GS-Scale scenes lives in.
//!
//! Usage: `cargo run --release -p gs-bench --bin serve_scaling
//! [--full] [--seed <n>] [--out BENCH_serve.json]`
//!
//! `--out` writes the machine-readable perf report (one scenario per
//! sweep cell, see [`gs_bench::perf`]) for CI's perf trajectory.

use std::sync::Arc;

use gs_bench::{print_table, BenchArgs, BenchReport, BenchScenario};
use gs_core::rng::Rng64;
use gs_scene::{SceneConfig, SceneDataset};
use gs_serve::{RenderRequest, RenderServer, SceneRegistry, ServeConfig, ServeStats};

struct Workload {
    scenes: Arc<Vec<SceneDataset>>,
    clients: usize,
    requests_per_client: usize,
}

fn build_workload(full: bool) -> Workload {
    let (num_scenes, gaussians, requests_per_client) =
        if full { (6, 2400, 60) } else { (4, 900, 25) };
    let scenes: Vec<SceneDataset> = (0..num_scenes)
        .map(|i| {
            SceneDataset::generate(SceneConfig {
                name: format!("shard-{i}"),
                num_gaussians: gaussians,
                init_points: 64,
                width: 80,
                height: 60,
                num_train_views: 8,
                num_test_views: 2,
                target_active_ratio: 0.25,
                extent: 80.0,
                far_view_fraction: 0.0,
                seed: 4200 + i as u64,
            })
        })
        .collect();
    Workload {
        scenes: Arc::new(scenes),
        clients: 8,
        requests_per_client,
    }
}

fn run(workload: &Workload, workers: usize, cache: bool, max_batch: usize) -> ServeStats {
    let server = Arc::new(RenderServer::new(
        ServeConfig {
            workers,
            queue_depth: 64,
            max_batch,
            cache_bytes: if cache { 64 << 20 } else { 0 },
            pose_quant: 0.05,
            shard_bytes: 0,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 32),
    ));
    for (i, scene) in workload.scenes.iter().enumerate() {
        server
            .load_scene(
                format!("shard-{i}"),
                Arc::new(scene.gt_params.clone()),
                scene.background,
            )
            .unwrap();
    }
    let handles: Vec<_> = (0..workload.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let scenes = Arc::clone(&workload.scenes);
            let n = workload.requests_per_client;
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from_u64(10_000 + c as u64);
                for _ in 0..n {
                    let idx = rng.gen_range(0usize..scenes.len());
                    let scene = &scenes[idx];
                    // Every request re-uses one of the scene's 8 flight-path
                    // cameras verbatim: a deliberately cache-friendly
                    // workload so the cache row isolates the hit-path cost
                    // (the mixed popular/exploratory workload lives in
                    // examples/serve_traffic.rs).
                    let cam = scene.train_cameras[rng.gen_range(0usize..scene.train_cameras.len())]
                        .clone();
                    server
                        .render_blocking(RenderRequest::full(format!("shard-{idx}"), cam))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    Arc::into_inner(server).unwrap().shutdown()
}

fn main() {
    let args = BenchArgs::parse();
    let workload = build_workload(args.full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} scenes, {} clients x {} closed-loop requests = {} total",
        workload.scenes.len(),
        workload.clients,
        workload.requests_per_client,
        total
    );

    let mut rows = Vec::new();
    let mut report = BenchReport::new("serve_scaling");
    for &(cache, max_batch, label) in &[
        (false, 1usize, "no cache, no batching"),
        (false, 8, "no cache, batch<=8"),
        (true, 8, "cache + batch<=8"),
    ] {
        let mut base_rps = 0.0;
        for workers in [1usize, 2, 4] {
            let stats = run(&workload, workers, cache, max_batch);
            if workers == 1 {
                base_rps = stats.throughput_rps();
            }
            report.push(BenchScenario::from_serve_stats(
                format!("{label}/workers={workers}"),
                &stats,
            ));
            rows.push(vec![
                label.to_string(),
                workers.to_string(),
                format!("{:.1}", stats.throughput_rps()),
                format!("{:.2}x", stats.throughput_rps() / base_rps),
                format!("{:.2}", stats.latency.p50 * 1e3),
                format!("{:.2}", stats.latency.p99 * 1e3),
                format!("{:.0}%", stats.cache.hit_rate() * 100.0),
                format!("{:.2}", stats.mean_batch_size()),
            ]);
        }
    }
    print_table(
        "Serving scalability: workers vs throughput / tail latency",
        &[
            "Config", "Workers", "req/s", "Scaling", "p50 (ms)", "p99 (ms)", "Hit rate", "Batch",
        ],
        &rows,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n({cores} core(s) available; wall-clock worker scaling saturates at the core count.)"
    );
    println!(
        "\nExpected shape: throughput grows with workers until render work is saturated;\n\
         batching lifts the no-cache configurations by sharing per-scene gathers under\n\
         contention; the frame cache collapses popular-viewpoint traffic into hits, which\n\
         raises req/s and cuts p50 sharply while p99 tracks the residual cold renders."
    );
    if let Some(path) = &args.out {
        report.write(path).expect("perf report path is writable");
    }
}
