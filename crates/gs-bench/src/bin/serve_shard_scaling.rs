//! Sharded-serving sweep: throughput and tail latency across shard count,
//! worker count and scene size, plus a budget-constrained section showing a
//! scene larger than the registry budget swapping its shards through.
//!
//! The workload axis this adds to the suite is shard count × scene size:
//! sharding buys admission flexibility (any scene whose *shards* fit can be
//! served) at the cost of per-request fan-out overhead (K projections and
//! layer composites instead of one render), and this sweep charts that
//! trade across scales.
//!
//! Scenes are corridor ("tour") scenes, whose axis-median shards are
//! depth-disjoint along every tour camera ray — the sharded composite is
//! bit-identical to the unsharded render, so every configuration serves the
//! same frames.
//!
//! Usage: `cargo run --release -p gs-bench --bin serve_shard_scaling [--full]`

use std::sync::Arc;

use gs_bench::print_table;
use gs_scene::tour::{TourConfig, TourScene};
use gs_serve::{RenderRequest, RenderServer, SceneRegistry, ServeConfig, ServeStats};

struct Workload {
    scenes: Vec<Arc<TourScene>>,
    clients: usize,
    requests_per_client: usize,
}

fn build_workload(full: bool) -> Workload {
    let (sizes, requests_per_client): (&[usize], usize) = if full {
        (&[4000, 12000], 30)
    } else {
        (&[1200, 3000], 8)
    };
    let scenes = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            Arc::new(TourScene::generate(TourConfig {
                name: format!("tour-{n}"),
                num_gaussians: n,
                length: 80.0 + 40.0 * i as f32,
                half_section: 4.0,
                width: 80,
                height: 60,
                num_views: 8,
                seed: 900 + i as u64,
            }))
        })
        .collect();
    Workload {
        scenes,
        clients: 6,
        requests_per_client,
    }
}

fn run(
    scene: &Arc<TourScene>,
    workload: &Workload,
    shards: usize,
    workers: usize,
    budget: u64,
) -> ServeStats {
    let server = Arc::new(RenderServer::new(
        ServeConfig {
            workers,
            queue_depth: 64,
            max_batch: 4,
            cache_bytes: 0,
            pose_quant: 0.05,
            shard_bytes: 0,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(budget),
    ));
    if shards <= 1 {
        server
            .load_scene("tour", Arc::new(scene.gt_params.clone()), scene.background)
            .unwrap();
    } else {
        server
            .load_scene_sharded(
                "tour",
                Arc::new(scene.gt_params.clone()),
                scene.background,
                shards,
            )
            .unwrap();
    }
    let handles: Vec<_> = (0..workload.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let scene = Arc::clone(scene);
            let n = workload.requests_per_client;
            std::thread::spawn(move || {
                for r in 0..n {
                    let cam = scene.cameras[(c + r) % scene.cameras.len()].clone();
                    server
                        .render_blocking(RenderRequest::full("tour", cam))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    Arc::into_inner(server).unwrap().shutdown()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let workload = build_workload(full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} tour scenes, {} clients x {} closed-loop requests = {} total per config",
        workload.scenes.len(),
        workload.clients,
        workload.requests_per_client,
        total
    );

    let mut rows = Vec::new();
    for scene in &workload.scenes {
        for &shards in &[1usize, 2, 4, 8] {
            for &workers in &[1usize, 2, 4] {
                let stats = run(scene, &workload, shards, workers, 1 << 32);
                rows.push(vec![
                    scene.config.name.clone(),
                    shards.to_string(),
                    workers.to_string(),
                    format!("{:.1}", stats.throughput_rps()),
                    format!("{:.2}", stats.latency.p50 * 1e3),
                    format!("{:.2}", stats.latency.p99 * 1e3),
                    stats.shards_rendered.to_string(),
                    format!("{:.2}", stats.shard_layer.mean * 1e3),
                ]);
            }
        }
    }
    print_table(
        "Sharded serving: shard count x workers x scene size",
        &[
            "Scene",
            "Shards",
            "Workers",
            "req/s",
            "p50 (ms)",
            "p99 (ms)",
            "Layers",
            "Layer mean (ms)",
        ],
        &rows,
    );

    // Budget-constrained section: the registry holds a third of the scene,
    // so the unsharded load is rejected while 4 shards swap through.
    let scene = workload.scenes.last().unwrap();
    let budget = scene.gt_params.total_bytes() as u64 / 3;
    let unsharded = RenderServer::new(ServeConfig::default(), SceneRegistry::with_budget(budget));
    let rejected = unsharded
        .load_scene("tour", Arc::new(scene.gt_params.clone()), scene.background)
        .is_err();
    println!(
        "\nBudget-constrained ({:.1} MiB budget, {:.1} MiB scene): unsharded load rejected: {rejected}",
        budget as f64 / (1 << 20) as f64,
        scene.gt_params.total_bytes() as f64 / (1 << 20) as f64,
    );
    let stats = run(scene, &workload, 4, 2, budget);
    println!(
        "sharded (K=4, 2 workers): {:.1} req/s, p99 {:.2} ms, {} shard layers rendered",
        stats.throughput_rps(),
        stats.latency.p99 * 1e3,
        stats.shards_rendered,
    );

    println!(
        "\nExpected shape: K=1 is the unsharded baseline; fan-out adds per-request overhead\n\
         that grows mildly with K (K projections + composites over the same splat total),\n\
         which is the price of serving scenes no single budget could hold — the\n\
         budget-constrained row serves a scene 3x the registry budget at close to the\n\
         uncapped rate, swapping shards through the pool as the tour moves."
    );
}
