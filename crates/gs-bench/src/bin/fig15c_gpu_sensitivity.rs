//! Reproduces Figure 15c: sensitivity of GS-Scale's normalized throughput to
//! the desktop GPU (RTX 4070 Super, RTX 4080 Super, RTX 4090) on the LFLS
//! scene. Higher-bandwidth GPUs raise R_bw and lower GS-Scale's throughput
//! relative to GPU-only.

use gs_bench::{build_scene, measure_run, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let preset = ScenePreset::LFLS;
    let scene = build_scene(&preset, &scale);
    let cfg = TrainConfig::fast_test(scale.iterations);

    let mut rows = Vec::new();
    for platform in [
        PlatformSpec::desktop_rtx4070s(),
        PlatformSpec::desktop_rtx4080s(),
        PlatformSpec::desktop_rtx4090(),
    ] {
        let gpu_only = measure_run(SystemKind::GpuOnly, &platform, &scene, &cfg, &scale)
            .expect("runnable scale fits")
            .throughput_images_per_s();
        let gs = measure_run(SystemKind::GsScale, &platform, &scene, &cfg, &scale)
            .expect("GS-Scale fits")
            .throughput_images_per_s();
        rows.push(vec![
            platform.name.clone(),
            format!("{:.1}", platform.r_bw()),
            "1.00".to_string(),
            format!("{:.2}", gs / gpu_only),
        ]);
    }
    print_table(
        "Figure 15c: sensitivity to GPU (LFLS, desktop), throughput normalized to GPU-only",
        &["GPU", "R_bw", "GPU-Only", "GS-Scale"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the RTX 4090's higher memory bandwidth (R_bw = 11.3) lowers\n\
         GS-Scale's normalized throughput compared to the RTX 4070 Super (R_bw = 5.6), because\n\
         a faster GPU leaves less slack to hide the CPU-side optimizer."
    );
}
