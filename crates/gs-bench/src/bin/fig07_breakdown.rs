//! Reproduces Figure 7: training-time breakdown of the baseline GS-Scale
//! (naive host offloading) on the laptop platform, showing that CPU frustum
//! culling and CPU optimizer updates dominate.

use gs_bench::{build_scene, measure_run, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::laptop_rtx4070m();
    let mut rows = Vec::new();
    for preset in [ScenePreset::RUBBLE, ScenePreset::BUILDING] {
        let scene = build_scene(&preset, &scale);
        let cfg = TrainConfig::fast_test(scale.iterations);
        let run = measure_run(SystemKind::BaselineOffload, &platform, &scene, &cfg, &scale)
            .expect("baseline offloading never OOMs");
        let breakdown = run.phase_breakdown();
        let total: f64 = breakdown.iter().map(|(_, t)| t).sum();
        let pct = |label: &str| {
            let t: f64 = breakdown
                .iter()
                .filter(|(l, _)| l == label)
                .map(|(_, t)| *t)
                .sum();
            format!("{:.1}%", t / total * 100.0)
        };
        rows.push(vec![
            preset.name.to_string(),
            pct("cpu_frustum_cull"),
            pct("d2h_grads"),
            pct("h2d_params"),
            pct("cpu_optimizer"),
            pct("gpu_fwd_bwd"),
        ]);
    }
    print_table(
        "Figure 7: training time breakdown of baseline GS-Scale (laptop, RTX 4070 Mobile)",
        &[
            "Scene",
            "CPU cull",
            "D2H",
            "H2D",
            "CPU optimizer",
            "GPU fwd/bwd",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the CPU frustum culling and the CPU optimizer update\n\
         dominate the iteration time of the unoptimized offloading baseline, leaving the GPU\n\
         idle most of the time."
    );
}
