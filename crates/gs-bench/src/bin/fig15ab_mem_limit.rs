//! Reproduces Figure 15a/b: sensitivity of GS-Scale's GPU memory usage and
//! training throughput to the `mem_limit` threshold that triggers
//! balance-aware image splitting (Rubble scene, desktop platform).

use gs_bench::{build_scene, measure_run, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{estimate_gpu_memory, SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::desktop_rtx4080s();
    let preset = ScenePreset::RUBBLE;
    let scene = build_scene(&preset, &scale);

    let mut rows = Vec::new();
    for mem_limit in [0.3f64, 0.2, 0.1] {
        let cfg = TrainConfig::fast_test(scale.iterations).with_mem_limit(mem_limit);
        let run = measure_run(SystemKind::GsScale, &platform, &scene, &cfg, &scale)
            .expect("GS-Scale fits");
        // Paper-scale analytic estimate of the peak memory under this limit.
        let est = estimate_gpu_memory(
            SystemKind::GsScale,
            preset.paper_gaussians,
            preset.active_ratio.max(mem_limit + 0.05),
            preset.width * preset.height,
            mem_limit,
        );
        rows.push(vec![
            format!("{mem_limit:.1}"),
            format!("{:.2}", est.total() as f64 / 1e9),
            format!("{:.3}", run.peak_gpu_bytes as f64 / 1e6),
            format!("{:.2}", run.throughput_images_per_s()),
            format!("{:.0}%", run.split_fraction() * 100.0),
        ]);
    }
    print_table(
        "Figure 15a/b: sensitivity to mem_limit (Rubble, desktop)",
        &[
            "mem_limit",
            "GPU memory, paper scale (GB)",
            "GPU memory, measured (MB)",
            "Throughput (img/s, simulated)",
            "Views split",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): lowering mem_limit saves additional GPU memory at the cost\n\
         of throughput, because more views are split and incur extra culling and gradient\n\
         aggregation."
    );
}
