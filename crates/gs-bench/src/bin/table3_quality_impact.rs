//! Reproduces Table 3: the impact of GS-Scale (specifically the deferred
//! optimizer update's ε-factoring approximation) on training quality,
//! compared to the original training pipeline.

use gs_bench::{build_scene, print_table, quality_after_training, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::desktop_rtx4080s();
    // The quick mode covers three scenes; --full covers all six.
    let presets: Vec<ScenePreset> = if std::env::args().any(|a| a == "--full") {
        ScenePreset::ALL.to_vec()
    } else {
        vec![ScenePreset::RUBBLE, ScenePreset::LFLS, ScenePreset::AERIAL]
    };

    let mut rows = Vec::new();
    for preset in presets {
        let scene = build_scene(&preset, &scale);
        let iterations = scale.iterations * 3;
        let cfg = TrainConfig::fast_test(iterations);
        let (original, _) =
            quality_after_training(SystemKind::GpuOnly, &platform, &scene, &cfg, iterations)
                .expect("runnable scale fits");
        let (gs_scale, _) =
            quality_after_training(SystemKind::GsScale, &platform, &scene, &cfg, iterations)
                .expect("GS-Scale fits");
        rows.push(vec![
            preset.name.to_string(),
            "Original".to_string(),
            format!("{:.2}", original.psnr),
            format!("{:.3}", original.ssim),
            format!("{:.3}", original.lpips),
        ]);
        rows.push(vec![
            String::new(),
            "GS-Scale".to_string(),
            format!("{:.2}", gs_scale.psnr),
            format!("{:.3}", gs_scale.ssim),
            format!("{:.3}", gs_scale.lpips),
        ]);
    }
    print_table(
        "Table 3: impact of GS-Scale on training quality",
        &["Scene", "Method", "PSNR", "SSIM", "LPIPS (proxy)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the original pipeline and GS-Scale agree to within ~0.05 dB\n\
         PSNR and ~0.001 SSIM/LPIPS — the deferred update's approximation is negligible."
    );
}
