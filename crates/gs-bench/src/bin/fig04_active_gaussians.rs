//! Reproduces Figure 4: the average number of Gaussians inside the viewing
//! frustum compared to the total, per scene. The synthetic scenes are
//! generated to match the paper's per-scene active ratios; this binary
//! verifies the match by running frustum culling over every training view.

use gs_bench::{build_scene, print_table, ExperimentScale};
use gs_render::culling::average_active_ratio;
use gs_scene::ScenePreset;

fn main() {
    let scale = ExperimentScale::from_args();
    let mut rows = Vec::new();
    let mut measured_sum = 0.0;
    for preset in ScenePreset::ALL {
        let scene = build_scene(&preset, &scale);
        let measured = average_active_ratio(&scene.gt_params, &scene.train_cameras);
        measured_sum += measured;
        rows.push(vec![
            preset.name.to_string(),
            format!("{}", scene.num_gaussians()),
            format!("{:.1}%", preset.active_ratio * 100.0),
            format!("{:.1}%", measured * 100.0),
        ]);
    }
    rows.push(vec![
        "Average".to_string(),
        String::new(),
        "8.3%".to_string(),
        format!(
            "{:.1}%",
            measured_sum / ScenePreset::ALL.len() as f64 * 100.0
        ),
    ]);
    print_table(
        "Figure 4: active vs total Gaussians per scene",
        &[
            "Scene",
            "Total (runnable scale)",
            "Paper active ratio",
            "Measured active ratio",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): every scene uses a small fraction of its Gaussians per view\n\
         (2.3% - 12.6%, 8.28% on average), which is the property host offloading exploits."
    );
}
