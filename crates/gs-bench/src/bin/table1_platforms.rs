//! Reproduces Table 1: specifications of the GPU platforms.

use gs_bench::print_table;
use gs_platform::PlatformSpec;

fn main() {
    let rows: Vec<Vec<String>> = PlatformSpec::table1()
        .into_iter()
        .chain([
            PlatformSpec::desktop_rtx4070s(),
            PlatformSpec::desktop_rtx4090(),
        ])
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.0} GB", p.gpu.mem_capacity as f64 / 1.073_741_824e9),
                format!("{:.0} GB/s", p.gpu.mem_bandwidth / 1e9),
                format!("{:.0} GB/s", p.pcie_bandwidth / 1e9),
                format!("{:.0} GB", p.cpu.mem_capacity as f64 / 1.073_741_824e9),
                format!("{:.1} GB/s", p.cpu.mem_bandwidth / 1e9),
                format!("{:.1}", p.r_bw()),
                format!("{}", p.numa_nodes),
            ]
        })
        .collect();
    print_table(
        "Table 1: GPU platform specifications",
        &[
            "Platform", "GPU Mem", "GPU BW", "PCIe BW", "Host Mem", "Host BW", "R_bw", "NUMA",
        ],
        &rows,
    );
    println!(
        "\nNote: the first three rows are the laptop/desktop/server platforms of Table 1;\n\
         the last two are the extra desktop GPUs used in the Figure 15c sensitivity study."
    );
}
