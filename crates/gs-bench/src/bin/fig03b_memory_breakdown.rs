//! Reproduces Figure 3b: breakdown of GPU memory usage by component
//! (parameters, gradients, optimizer state, activations) as the training
//! image resolution grows, for GPU-only training of the Building scene at
//! paper scale.

use gs_bench::print_table;
use gs_scene::ScenePreset;
use gs_train::{estimate_gpu_memory, SystemKind};

fn main() {
    let preset = ScenePreset::BUILDING;
    let n = preset.paper_gaussians;
    let rows: Vec<Vec<String>> = [
        ("1K", 1024usize, 682usize),
        ("2K", 2048, 1365),
        ("4K", 4096, 2730),
    ]
    .iter()
    .map(|(label, w, h)| {
        let est = estimate_gpu_memory(SystemKind::GpuOnly, n, preset.active_ratio, w * h, 1.0);
        let f = est.fractions();
        vec![
            label.to_string(),
            format!("{:.1}%", f[0] * 100.0),
            format!("{:.1}%", f[1] * 100.0),
            format!("{:.1}%", f[2] * 100.0),
            format!("{:.1}%", f[3] * 100.0),
            format!("{:.1} GB", est.total() as f64 / 1e9),
        ]
    })
    .collect();
    print_table(
        "Figure 3b: GPU memory breakdown vs image resolution (Building, GPU-only)",
        &[
            "Resolution",
            "Parameters",
            "Gradients",
            "Opt. state",
            "Activations",
            "Total",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): parameters + gradients + optimizer state account for ~90% of\n\
         memory at 1K resolution, with the activation share growing as resolution increases."
    );
}
