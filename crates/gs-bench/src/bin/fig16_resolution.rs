//! Reproduces Figure 16: impact of the training image resolution on GS-Scale's
//! GPU memory usage and throughput relative to GPU-only (Rubble, desktop).

use gs_bench::{build_scene, initial_params, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{
    estimate_gpu_memory, train, GpuOnlyTrainer, OffloadOptions, OffloadTrainer, SystemKind,
    TrainConfig,
};

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::desktop_rtx4080s();
    let preset = ScenePreset::RUBBLE;
    let base_scene = build_scene(&preset, &scale);
    let cfg = TrainConfig::fast_test(scale.iterations);

    let mut rows = Vec::new();
    for (label, res_factor, paper_pixels) in [
        ("1K", 0.5f32, 1024usize * 682),
        ("2K", 1.0, 2048 * 1365),
        ("4K", 2.0, 4096 * 2730),
    ] {
        // Functional run at a scaled-down resolution that preserves the ratio
        // between the three settings.
        let mut scene = base_scene.clone();
        scene.train_cameras = scene
            .train_cameras
            .iter()
            .map(|c| c.scaled(res_factor))
            .collect();
        scene.test_cameras = scene
            .test_cameras
            .iter()
            .map(|c| c.scaled(res_factor))
            .collect();

        let init = initial_params(&scene);
        let extent = scene.scene_extent();
        let mut gpu_only = GpuOnlyTrainer::new(cfg.clone(), platform.clone(), init.clone(), extent)
            .expect("fits at runnable scale");
        let gpu_run = train(&mut gpu_only, &scene, scale.iterations, false).expect("train");
        let mut gss = OffloadTrainer::new(
            cfg.clone(),
            OffloadOptions::full(),
            platform.clone(),
            init,
            extent,
        )
        .expect("fits");
        let gss_run = train(&mut gss, &scene, scale.iterations, false).expect("train");

        // Paper-scale analytic memory ratio at this resolution.
        let mem_gpu = estimate_gpu_memory(
            SystemKind::GpuOnly,
            preset.paper_gaussians,
            preset.active_ratio,
            paper_pixels,
            0.3,
        );
        let mem_gss = estimate_gpu_memory(
            SystemKind::GsScale,
            preset.paper_gaussians,
            preset.active_ratio,
            paper_pixels,
            0.3,
        );

        rows.push(vec![
            label.to_string(),
            format!("{:.2}", mem_gss.total() as f64 / mem_gpu.total() as f64),
            format!(
                "{:.2}",
                gss_run.run.throughput_images_per_s() / gpu_run.run.throughput_images_per_s()
            ),
        ]);
    }
    print_table(
        "Figure 16: impact of image resolution (Rubble, desktop), values relative to GPU-only",
        &[
            "Resolution",
            "GS-Scale memory / GPU-only",
            "GS-Scale throughput / GPU-only",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the relative memory saving shrinks slightly as resolution\n\
         grows (activations become a larger share), while the relative throughput improves\n\
         because a slower GPU forward/backward leaves more slack for pipelining the CPU\n\
         optimizer."
    );
}
