//! Reproduces Figure 1: the maximum rendering quality achievable on the
//! laptop GPU (RTX 4070 Mobile) with GPU-only training vs GS-Scale, on the
//! Rubble scene.
//!
//! The paper's headline: host offloading raises the trainable Gaussian count
//! from ~4M to ~18M on the 8 GB laptop GPU, improving PSNR/SSIM and lowering
//! LPIPS. Here the maximum count for each system is derived from the
//! analytic memory model at paper scale, and the quality difference is
//! demonstrated functionally by training the runnable-scale scene with
//! proportionally scaled Gaussian budgets.

use gs_bench::{print_table, quality_after_training, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::{SceneDataset, ScenePreset};
use gs_train::{estimate_gpu_memory, SystemKind, TrainConfig};

/// Largest Gaussian count whose estimated GPU footprint fits the platform.
fn max_gaussians(kind: SystemKind, preset: &ScenePreset, platform: &PlatformSpec) -> usize {
    let pixels = preset.width * preset.height;
    let mut lo = 100_000usize;
    let mut hi = 100_000_000usize;
    for _ in 0..40 {
        let mid = (lo + hi) / 2;
        let est = estimate_gpu_memory(kind, mid, preset.active_ratio, pixels, 0.3);
        if est.total() <= platform.gpu.mem_capacity {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::laptop_rtx4070m();
    let preset = ScenePreset::RUBBLE;

    let max_gpu_only = max_gaussians(SystemKind::GpuOnly, &preset, &platform);
    let max_gs_scale = max_gaussians(SystemKind::GsScale, &preset, &platform);
    println!(
        "Maximum trainable Gaussians on {} (paper scale): GPU-only {:.1}M vs GS-Scale {:.1}M ({:.1}x)",
        platform.name,
        max_gpu_only as f64 / 1e6,
        max_gs_scale as f64 / 1e6,
        max_gs_scale as f64 / max_gpu_only as f64
    );

    // Functional demonstration: train the runnable-scale Rubble scene with the
    // two proportional Gaussian budgets and compare quality.
    let ratio = max_gpu_only as f64 / max_gs_scale as f64;
    let budgets = [
        (
            "GPU-Only (memory-capped)",
            SystemKind::GpuOnly,
            scale.gaussian_scale * ratio,
        ),
        ("GS-Scale", SystemKind::GsScale, scale.gaussian_scale),
    ];
    let mut rows = Vec::new();
    for (label, kind, gaussian_scale) in budgets {
        let scene = SceneDataset::from_preset(&preset, gaussian_scale, scale.seed);
        let cfg = TrainConfig::fast_test(scale.iterations * 3);
        let (quality, n) =
            quality_after_training(kind, &platform, &scene, &cfg, scale.iterations * 3)
                .expect("runnable scale fits");
        rows.push(vec![
            label.to_string(),
            format!("{n}"),
            format!("{:.2}", quality.psnr),
            format!("{:.3}", quality.ssim),
            format!("{:.3}", quality.lpips),
        ]);
    }
    print_table(
        "Figure 1: max achievable quality on the laptop GPU (runnable scale)",
        &["System", "Gaussians", "PSNR", "SSIM", "LPIPS (proxy)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): GS-Scale trains ~4.5x more Gaussians within the same GPU\n\
         memory budget, giving higher PSNR/SSIM and ~35% lower LPIPS on Rubble."
    );
}
