//! Reproduces Figure 9: per-stream execution timelines of one training
//! iteration under the four systems (GPU-only, baseline GS-Scale, GS-Scale
//! without deferred Adam, GS-Scale with all optimizations).

use gs_bench::{build_scene, initial_params, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{GpuOnlyTrainer, OffloadOptions, OffloadTrainer, SystemKind, TrainConfig, Trainer};

fn print_iteration(kind: SystemKind, stats: &gs_train::IterationStats) {
    println!("\n--- {} ---", kind.name());
    println!(
        "iteration time: {:.3} ms  (active {}/{} Gaussians)",
        stats.sim_time_s * 1e3,
        stats.active_gaussians,
        stats.total_gaussians
    );
    for (label, secs) in &stats.phase_breakdown {
        let bar_len = (secs / stats.sim_time_s * 50.0).round() as usize;
        println!(
            "  {label:<18} {:>9.3} ms  {}",
            secs * 1e3,
            "#".repeat(bar_len.max(1))
        );
    }
}

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::laptop_rtx4070m();
    let preset = ScenePreset::RUBBLE;
    let scene = build_scene(&preset, &scale);
    let cfg = TrainConfig::fast_test(4);
    let cam = scene.train_cameras[1].clone();
    let target = scene.ground_truth(&cam);
    let init = initial_params(&scene);
    let extent = scene.scene_extent();

    println!("Figure 9: execution timeline of one training iteration (Rubble, laptop platform)");

    for kind in SystemKind::ALL {
        let stats = match kind {
            SystemKind::GpuOnly => {
                let mut t =
                    GpuOnlyTrainer::new(cfg.clone(), platform.clone(), init.clone(), extent)
                        .expect("fits at runnable scale");
                t.step(&cam, &target).expect("step")
            }
            other => {
                let mut t = OffloadTrainer::new(
                    cfg.clone(),
                    OffloadOptions::for_system(other),
                    platform.clone(),
                    init.clone(),
                    extent,
                )
                .expect("fits at runnable scale");
                t.step(&cam, &target).expect("step")
            }
        };
        print_iteration(kind, &stats);
    }

    println!(
        "\nExpected shape (paper): the baseline serializes CPU culling, transfers, GPU work and\n\
         the CPU optimizer; selective offloading moves culling to the GPU; parameter forwarding\n\
         lets the CPU optimizer overlap the GPU forward/backward; the deferred update shrinks\n\
         the CPU optimizer slice so the pipeline is no longer CPU-bound."
    );
}
