//! Reproduces Figure 3a: rendering quality as a function of the number of
//! Gaussians, and the per-GPU memory ceilings that motivate GS-Scale.

use gs_bench::{print_table, quality_after_training, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::{SceneDataset, ScenePreset};
use gs_train::{estimate_gpu_memory, SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let preset = ScenePreset::RUBBLE;
    let platform = PlatformSpec::desktop_rtx4080s();

    // Quality vs Gaussian count (functional, runnable scale).
    let mut rows = Vec::new();
    for factor in [0.25f64, 0.5, 1.0, 2.0] {
        let scene = SceneDataset::from_preset(&preset, scale.gaussian_scale * factor, scale.seed);
        let cfg = TrainConfig::fast_test(scale.iterations * 2);
        let (quality, n) = quality_after_training(
            SystemKind::GsScale,
            &platform,
            &scene,
            &cfg,
            scale.iterations * 2,
        )
        .expect("GS-Scale fits");
        rows.push(vec![
            format!("{n}"),
            format!("{:.2}", quality.psnr),
            format!("{:.3}", quality.ssim),
            format!("{:.3}", quality.lpips),
        ]);
    }
    print_table(
        "Figure 3a: rendering quality vs number of Gaussians (Rubble, runnable scale)",
        &["Gaussians", "PSNR", "SSIM", "LPIPS (proxy)"],
        &rows,
    );

    // GPU memory ceilings at paper scale.
    let mut ceiling_rows = Vec::new();
    for platform in [
        PlatformSpec::laptop_rtx4070m(),
        PlatformSpec::desktop_rtx4080s(),
    ] {
        let pixels = preset.width * preset.height;
        let mut n = 1_000_000usize;
        while estimate_gpu_memory(SystemKind::GpuOnly, n, preset.active_ratio, pixels, 0.3).total()
            <= platform.gpu.mem_capacity
        {
            n += 250_000;
        }
        ceiling_rows.push(vec![
            platform.name.clone(),
            format!("{:.1}M", (n - 250_000) as f64 / 1e6),
        ]);
    }
    print_table(
        "GPU-only Gaussian ceiling per platform (paper scale)",
        &["Platform", "Max Gaussians (GPU-only)"],
        &ceiling_rows,
    );
    println!(
        "\nExpected shape (paper): quality improves monotonically with more Gaussians\n\
         (PSNR/SSIM up, LPIPS down), but GPU-only training caps the count at roughly 4M on the\n\
         laptop and 9M on the desktop, well short of the 40M the scene benefits from."
    );
}
