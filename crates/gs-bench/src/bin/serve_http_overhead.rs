//! HTTP-vs-in-process serving overhead sweep.
//!
//! Replays the same closed-loop render workload twice — once through
//! `RenderServer::render_blocking` directly, once through the HTTP/1.1
//! front-end over loopback TCP (keep-alive, raw-f32 frames) — and reports
//! throughput plus the per-request overhead the wire protocol adds. The
//! sweep runs across client counts so the overhead is measured both idle and
//! under contention.
//!
//! Usage: `cargo run --release -p gs-bench --bin serve_http_overhead [--full]`

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use gs_bench::print_table;
use gs_core::rng::Rng64;
use gs_scene::{SceneConfig, SceneDataset};
use gs_serve::http::client;
use gs_serve::{HttpConfig, HttpServer, RenderServer, SceneRegistry, ServeConfig, WireRequest};

struct Sweep {
    scenes: Arc<Vec<SceneDataset>>,
    client_counts: Vec<usize>,
    requests_per_client: usize,
}

fn build_sweep(full: bool) -> Sweep {
    let (num_scenes, gaussians, requests_per_client) =
        if full { (4, 1800, 50) } else { (2, 700, 20) };
    let scenes: Vec<SceneDataset> = (0..num_scenes)
        .map(|i| {
            SceneDataset::generate(SceneConfig {
                name: format!("tile-{i}"),
                num_gaussians: gaussians,
                init_points: 64,
                width: 80,
                height: 60,
                num_train_views: 8,
                num_test_views: 2,
                target_active_ratio: 0.25,
                extent: 80.0,
                far_view_fraction: 0.0,
                seed: 5100 + i as u64,
            })
        })
        .collect();
    Sweep {
        scenes: Arc::new(scenes),
        client_counts: vec![1, 4, 8],
        requests_per_client,
    }
}

fn fresh_server(scenes: &[SceneDataset]) -> Arc<RenderServer> {
    let server = Arc::new(RenderServer::new(
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            // Cache off: both paths measure the full render every time, so
            // the delta between them is purely protocol overhead.
            cache_bytes: 0,
            pose_quant: 0.05,
            shard_bytes: 0,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 32),
    ));
    for (i, scene) in scenes.iter().enumerate() {
        server
            .load_scene(
                format!("tile-{i}"),
                Arc::new(scene.gt_params.clone()),
                scene.background,
            )
            .expect("scene fits");
    }
    server
}

fn wire_request(scenes: &[SceneDataset], rng: &mut Rng64) -> WireRequest {
    let idx = rng.gen_range(0usize..scenes.len());
    let base = &scenes[idx].train_cameras[rng.gen_range(0usize..scenes[idx].train_cameras.len())];
    let mut req = WireRequest::new(
        format!("tile-{idx}"),
        [
            base.position.x + rng.gen_range(-1.0f32..1.0),
            base.position.y + rng.gen_range(-1.0f32..1.0),
            base.position.z,
        ],
        [0.0, 0.0, 0.0],
        base.width,
        base.height,
    );
    req.fov_x = std::f32::consts::FRAC_PI_3;
    req
}

/// Mean per-request wall-clock seconds of the in-process closed loop.
fn run_inprocess(sweep: &Sweep, clients: usize) -> f64 {
    let server = fresh_server(&sweep.scenes);
    let per_client = sweep.requests_per_client;
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let scenes = Arc::clone(&sweep.scenes);
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from_u64(40 + c as u64);
                for _ in 0..per_client {
                    let req = wire_request(&scenes, &mut rng);
                    server
                        .render_blocking(req.to_render_request())
                        .expect("render");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    started.elapsed().as_secs_f64() / (clients * per_client) as f64
}

/// Mean per-request wall-clock seconds of the same loop over loopback HTTP.
fn run_http(sweep: &Sweep, clients: usize) -> f64 {
    let http = HttpServer::bind(HttpConfig::default(), fresh_server(&sweep.scenes))
        .expect("bind loopback listener");
    let addr = http.local_addr();
    let per_client = sweep.requests_per_client;
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let scenes = Arc::clone(&sweep.scenes);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut rng = Rng64::seed_from_u64(40 + c as u64);
                for _ in 0..per_client {
                    let req = wire_request(&scenes, &mut rng);
                    let response =
                        client::request(&mut stream, "POST", "/render", req.to_body().as_bytes())
                            .expect("http render");
                    assert_eq!(response.status, 200);
                    assert_eq!(response.body.len(), 12 * req.width * req.height);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let per_request = started.elapsed().as_secs_f64() / (clients * per_client) as f64;
    http.shutdown();
    per_request
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sweep = build_sweep(full);
    println!(
        "HTTP front-end overhead: {} scenes, {} requests/client, same seeds on both paths\n",
        sweep.scenes.len(),
        sweep.requests_per_client
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &clients in &sweep.client_counts {
        let inproc = run_inprocess(&sweep, clients);
        let http = run_http(&sweep, clients);
        let overhead_us = (http - inproc) * 1.0e6;
        rows.push(vec![
            clients.to_string(),
            format!("{:.1}", 1.0 / inproc),
            format!("{:.1}", 1.0 / http),
            format!("{overhead_us:+.0}"),
            format!("{:+.1}%", (http / inproc - 1.0) * 100.0),
        ]);
    }
    print_table(
        "HTTP front-end vs in-process serving",
        &[
            "clients",
            "in-process req/s",
            "HTTP req/s",
            "overhead us/req",
            "relative",
        ],
        &rows,
    );
    println!(
        "\nOverhead = wire parsing + frame encoding + loopback TCP; it shrinks\n\
         relative to render time as scenes grow and amortizes under batching."
    );
}
