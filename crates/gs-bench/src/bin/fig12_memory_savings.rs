//! Reproduces Figure 12: peak GPU memory of GS-Scale vs the GPU-only system
//! for every scene, at the paper's full Gaussian counts (analytic model),
//! together with the measured ratio from the functional trainers at the
//! runnable scale.

use gs_bench::{build_scene, fmt_gb, measure_run, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{estimate_gpu_memory, SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::desktop_rtx4080s();
    let mut rows = Vec::new();
    let mut geo_product = 1.0f64;
    for preset in ScenePreset::ALL {
        let pixels = preset.width * preset.height;
        let gpu_only = estimate_gpu_memory(
            SystemKind::GpuOnly,
            preset.paper_gaussians,
            preset.active_ratio,
            pixels,
            0.3,
        );
        let gs_scale = estimate_gpu_memory(
            SystemKind::GsScale,
            preset.paper_gaussians,
            preset.active_ratio,
            pixels,
            0.3,
        );
        let analytic_ratio = gs_scale.total() as f64 / gpu_only.total() as f64;
        geo_product *= gpu_only.total() as f64 / gs_scale.total() as f64;

        // Functional measurement at the runnable scale.
        let scene = build_scene(&preset, &scale);
        let cfg = TrainConfig::fast_test(scale.iterations);
        let measured_gpu_only = measure_run(SystemKind::GpuOnly, &platform, &scene, &cfg, &scale)
            .map(|r| r.peak_gpu_bytes);
        let measured_gs = measure_run(SystemKind::GsScale, &platform, &scene, &cfg, &scale)
            .map(|r| r.peak_gpu_bytes);
        let measured_ratio = match (&measured_gpu_only, &measured_gs) {
            (Ok(a), Ok(b)) if *a > 0 => format!("{:.2}", *b as f64 / *a as f64),
            _ => "n/a".to_string(),
        };

        rows.push(vec![
            preset.name.to_string(),
            fmt_gb(gpu_only.total()),
            fmt_gb(gs_scale.total()),
            format!("{analytic_ratio:.2}"),
            measured_ratio,
        ]);
    }
    let geomean_saving = geo_product.powf(1.0 / ScenePreset::ALL.len() as f64);
    print_table(
        "Figure 12: peak GPU memory usage (GB at paper scale) and GS-Scale/GPU-only ratio",
        &[
            "Scene",
            "GPU-only (GB)",
            "GS-Scale (GB)",
            "Ratio (paper scale)",
            "Ratio (measured)",
        ],
        &rows,
    );
    println!(
        "\nGeomean peak-memory reduction (paper scale): {geomean_saving:.2}x\n\
         Expected shape (paper): 3.3x - 5.6x savings, geomean ~3.98x, with the largest\n\
         relative saving on Aerial (lowest active ratio) limited by the resident geometric\n\
         attributes of selective offloading."
    );
}
