//! Flash-crowd replication bench: a crowd of closed-loop clients hammers
//! one hot scene on a 3-replica cluster, with replication off (the scene
//! stays pinned to one replica) and on (the heat table drives a second
//! copy onto an idle replica before the measured crowd). The headline is
//! the throughput ratio: with a second copy the crowd's reads spread over
//! two replicas' workers via power-of-two-choices, so aggregate
//! throughput should approach 2x and must clear 1.5x on multi-core
//! machines, while p99 holds rather than collapsing behind one replica's
//! queue.
//!
//! The run also smoke-checks the lifecycle the integration tests cover:
//! the hot scene gains a copy when hot, serves byte-identical frames from
//! every copy, and retires the extra copy one idle heat window after the
//! crowd passes.
//!
//! Usage: `cargo run --release -p gs-bench --bin cluster_replication
//! [--full] [--out BENCH_cluster_replication.json]`

use std::sync::{Arc, Mutex};
use std::time::Instant;

use gs_bench::{print_table, BenchArgs, BenchReport, BenchScenario};
use gs_cluster::{ClusterConfig, Coordinator, ReplicaTransport, ReplicationConfig};
use gs_render::pipeline::render_image;
use gs_scene::tour::{TourConfig, TourScene};
use gs_serve::{ObsTuning, RenderServer, SceneRegistry, ServeConfig, WireRequest};

struct Workload {
    scene: Arc<TourScene>,
    clients: usize,
    requests_per_client: usize,
}

fn build_workload(full: bool) -> Workload {
    let (gaussians, requests_per_client) = if full { (8_000, 40) } else { (1_500, 12) };
    Workload {
        scene: Arc::new(TourScene::generate(TourConfig {
            name: "crowd-tour".to_string(),
            num_gaussians: gaussians,
            length: 60.0,
            half_section: 4.0,
            width: 80,
            height: 60,
            num_views: 8,
            seed: 1700,
        })),
        clients: 8,
        requests_per_client,
    }
}

fn request_for(scene: &TourScene, view: usize) -> WireRequest {
    let cam = &scene.cameras[view % scene.cameras.len()];
    let mut req = WireRequest::new(
        "hot",
        [cam.position.x, cam.position.y, cam.position.z],
        [cam.position.x + 1.0, cam.position.y, cam.position.z],
        cam.width,
        cam.height,
    );
    req.fov_x = 1.2;
    req
}

/// Builds a 3-replica in-process cluster (one worker per replica, so each
/// extra copy genuinely adds serving capacity) with the hot scene loaded,
/// returns it plus the per-replica server handles.
fn build_cluster(
    workload: &Workload,
    max_copies: usize,
) -> (Arc<Coordinator>, Vec<Arc<RenderServer>>) {
    let cluster = Arc::new(Coordinator::new(ClusterConfig {
        replication: ReplicationConfig {
            max_copies,
            replicate_rate_per_s: 2.0,
            dereplicate_rate_per_s: 1.0,
            cool_ticks: 1,
            rebalance: true,
        },
        obs: ObsTuning {
            heat_window_s: 1,
            ..ObsTuning::default()
        },
        ..ClusterConfig::default()
    }));
    let mut servers = Vec::new();
    for i in 0..3 {
        let server = Arc::new(RenderServer::new(
            ServeConfig {
                workers: 1,
                queue_depth: 64,
                max_batch: 4,
                cache_bytes: 0,
                pose_quant: 0.05,
                shard_bytes: 0,
                ..ServeConfig::default()
            },
            SceneRegistry::with_budget(1 << 32),
        ));
        servers.push(Arc::clone(&server));
        cluster
            .add_replica(format!("replica-{i}"), ReplicaTransport::InProcess(server))
            .unwrap();
    }
    cluster
        .load_scene(
            "hot",
            Arc::new(workload.scene.gt_params.clone()),
            workload.scene.background,
        )
        .unwrap();
    (cluster, servers)
}

struct CrowdResult {
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    copies: usize,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drives the flash crowd against one cluster configuration and measures
/// the crowd phase alone (the warmup burst that heats the scene and the
/// replication tick happen before the clock starts).
fn run_crowd(workload: &Workload, max_copies: usize) -> CrowdResult {
    let (cluster, servers) = build_cluster(workload, max_copies);

    // Warmup: the flash crowd's leading edge pushes the scene over the
    // replicate threshold; the tick then acts on the heat table.
    for view in 0..30 {
        cluster.render(&request_for(&workload.scene, view)).unwrap();
    }
    cluster.replication_tick();
    let placement = cluster
        .scenes()
        .into_iter()
        .find(|p| p.id == "hot")
        .expect("hot scene is placed");
    let copies = placement.replicas.len();
    assert!(
        copies <= max_copies,
        "replication must honor max_copies: {placement:?}"
    );
    if max_copies >= 2 {
        assert_eq!(copies, 2, "hot scene must gain a copy: {placement:?}");
    }

    // Every copy serves byte-identical frames before the measured crowd.
    let req = request_for(&workload.scene, 0);
    let reference = render_image(
        &workload.scene.gt_params,
        &req.to_render_request().camera,
        3,
        workload.scene.background,
    );
    for &rid in &placement.replicas {
        let direct = servers[rid]
            .render_blocking(req.to_render_request())
            .unwrap();
        assert_eq!(
            direct.image.data(),
            reference.data(),
            "copy on replica {rid} must render byte-identically"
        );
    }

    // The measured crowd: closed-loop clients, per-request latencies.
    let latencies = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..workload.clients {
            let cluster = Arc::clone(&cluster);
            let scene = Arc::clone(&workload.scene);
            let latencies = &latencies;
            let n = workload.requests_per_client;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(n);
                for r in 0..n {
                    let t = Instant::now();
                    cluster.render(&request_for(&scene, c + r)).unwrap();
                    mine.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let total = workload.clients * workload.requests_per_client;

    // After the crowd passes, one idle heat window cools the scene and the
    // extra copy retires.
    if max_copies >= 2 {
        std::thread::sleep(std::time::Duration::from_millis(1300));
        let report = cluster.replication_tick();
        assert!(
            report.dereplicated >= 1,
            "the cooled scene must lose its extra copy: {report:?}"
        );
        let placement = cluster
            .scenes()
            .into_iter()
            .find(|p| p.id == "hot")
            .unwrap();
        assert_eq!(placement.replicas.len(), 1, "{placement:?}");
    }

    let mut ms = latencies.into_inner().unwrap();
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    CrowdResult {
        throughput_rps: total as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&ms, 0.50),
        p99_ms: percentile(&ms, 0.99),
        copies,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let workload = build_workload(args.full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} gaussians, {} clients x {} closed-loop crowd requests = {} per config",
        workload.scene.gt_params.len(),
        workload.clients,
        workload.requests_per_client,
        total
    );

    let mut report = BenchReport::new("cluster_replication");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (label, max_copies) in [("crowd_baseline", 1usize), ("crowd_replicated", 2)] {
        let result = run_crowd(&workload, max_copies);
        report.push(BenchScenario {
            scenario: label.to_string(),
            throughput_rps: result.throughput_rps,
            p50_ms: result.p50_ms,
            p90_ms: 0.0,
            p99_ms: result.p99_ms,
            hit_rate: 0.0,
            mean_batch: 0.0,
            slo_p99_ms: ObsTuning::default().slo_p99_ms,
        });
        rows.push(vec![
            label.to_string(),
            result.copies.to_string(),
            format!("{:.1}", result.throughput_rps),
            format!("{:.2}", result.p50_ms),
            format!("{:.2}", result.p99_ms),
        ]);
        results.push(result);
    }
    print_table(
        "Flash crowd on one hot scene: 3 replicas, 1 worker each",
        &["Scenario", "Copies", "req/s", "p50 (ms)", "p99 (ms)"],
        &rows,
    );

    let ratio = results[1].throughput_rps / results[0].throughput_rps.max(1e-9);
    println!(
        "\nreplicated/baseline throughput ratio: {ratio:.2}x (p99 {:.2} ms -> {:.2} ms)",
        results[0].p99_ms, results[1].p99_ms
    );
    let parallel = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if parallel >= 4 {
        assert!(
            ratio >= 1.5,
            "a second copy must buy >= 1.5x hot-scene throughput, got {ratio:.2}x"
        );
    } else {
        println!("(ratio assertion skipped: only {parallel} hardware threads)");
    }

    if let Some(path) = &args.out {
        report.write(path).expect("perf report path is writable");
    }
}
