//! Pose-quantization sweep: frame-cache hit rate vs pixel staleness.
//!
//! The frame cache answers a request from a cached frame whenever the
//! camera lands in the same quantization cell as an earlier render. A
//! coarser grid (`ServeConfig::pose_quant`) collapses more nearby poses
//! onto one key — higher hit rate — but the served frame was rendered from
//! a pose up to half a cell away, so pixels go stale. This sweep charts
//! that trade-off: for each quantization step and each replacement policy
//! (LRU, TinyLFU) it drives popularity-skewed jittered traffic and reports
//! the hit rate alongside PSNR between every sampled cache hit and the
//! exact render of the *requested* camera.
//!
//! Usage: `cargo run --release -p gs-bench --bin cache_pose_sweep [--full]`

use std::sync::Arc;

use gs_bench::print_table;
use gs_core::rng::Rng64;
use gs_metrics::psnr;
use gs_render::pipeline::render_image;
use gs_scene::{SceneConfig, SceneDataset};
use gs_serve::{
    CachePolicyKind, RenderRequest, RenderServer, SceneRegistry, ServeConfig, ServeStats,
};

/// One run's measurements.
struct Sample {
    stats: ServeStats,
    hits_scored: usize,
    psnr_mean: f64,
    psnr_min: f64,
}

fn scene(full: bool) -> SceneDataset {
    SceneDataset::generate(SceneConfig {
        name: "pose-sweep".to_string(),
        num_gaussians: if full { 2400 } else { 1000 },
        init_points: 64,
        width: 64,
        height: 48,
        num_train_views: 12,
        num_test_views: 2,
        target_active_ratio: 0.25,
        extent: 80.0,
        far_view_fraction: 0.0,
        seed: 8800,
    })
}

const FRAME_BYTES: u64 = 64 * 48 * 3 * 4;

fn run(scene: &SceneDataset, step: f32, policy: CachePolicyKind, requests: usize) -> Sample {
    let server = RenderServer::new(
        ServeConfig {
            workers: 1,
            queue_depth: 16,
            max_batch: 1,
            // Small enough that the working set does not fit at fine
            // quantization: replacement policy decisions actually matter.
            cache_bytes: 24 * FRAME_BYTES,
            pose_quant: step,
            shard_bytes: 0,
            cache_policy: policy,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 30),
    );
    server
        .load_scene("city", Arc::new(scene.gt_params.clone()), scene.background)
        .unwrap();

    let mut rng = Rng64::seed_from_u64(42);
    let bases = &scene.train_cameras;
    let mut hits_scored = 0usize;
    let mut psnr_sum = 0.0f64;
    let mut psnr_min = f64::INFINITY;
    for r in 0..requests {
        // Popularity-skewed base viewpoint (square of a uniform skews
        // toward index 0) with a +-0.15 world-unit jitter per axis — the
        // orbiting-clients model: nearly identical poses, never exactly
        // equal.
        let u = rng.gen_range(0u64..1_000_000) as f64 / 1e6;
        let base = ((u * u) * bases.len() as f64) as usize;
        let mut cam = bases[base.min(bases.len() - 1)].clone();
        let mut jitter = || (rng.gen_range(0u64..1_000_000) as f32 / 1e6 - 0.5) * 0.3;
        cam.position.x += jitter();
        cam.position.y += jitter();
        cam.position.z += jitter();
        let frame = server
            .render_blocking(RenderRequest::full("city", cam.clone()))
            .unwrap();
        // Staleness of cache-served pixels: PSNR of the hit against the
        // exact render of the camera the client actually asked for
        // (subsampled — the exact render doubles the work of a request).
        if frame.cache_hit && r % 3 == 0 {
            let exact = render_image(&scene.gt_params, &cam, 3, scene.background);
            let p = psnr(&frame.image, &exact);
            hits_scored += 1;
            psnr_sum += p;
            psnr_min = psnr_min.min(p);
        }
    }
    Sample {
        stats: server.shutdown(),
        hits_scored,
        psnr_mean: if hits_scored > 0 {
            psnr_sum / hits_scored as f64
        } else {
            f64::NAN
        },
        psnr_min: if hits_scored > 0 { psnr_min } else { f64::NAN },
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scene = scene(full);
    let requests = if full { 900 } else { 300 };
    println!(
        "workload: {} popularity-skewed jittered requests over {} base viewpoints, \
         cache capacity {} frames",
        requests,
        scene.train_cameras.len(),
        24,
    );

    let mut rows = Vec::new();
    for &step in &[0.02f32, 0.05, 0.1, 0.25, 0.5, 1.0] {
        for &policy in &[CachePolicyKind::Lru, CachePolicyKind::TinyLfu] {
            let sample = run(&scene, step, policy, requests);
            let s = &sample.stats;
            rows.push(vec![
                format!("{step}"),
                policy.name().to_string(),
                format!("{:.1}%", s.cache.hit_rate() * 100.0),
                s.cache.evictions.to_string(),
                s.cache.rejected.to_string(),
                sample.hits_scored.to_string(),
                if sample.psnr_mean.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}", sample.psnr_mean)
                },
                if sample.psnr_min.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}", sample.psnr_min)
                },
            ]);
        }
    }
    print_table(
        "Pose quantization: hit rate vs staleness (PSNR of hits vs exact render)",
        &[
            "Step",
            "Policy",
            "Hit rate",
            "Evict",
            "Reject",
            "Hits scored",
            "PSNR mean",
            "PSNR min",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: a coarser grid collapses more jittered poses onto one key, so\n\
         the hit rate climbs while the PSNR of served-from-cache frames falls (the cached\n\
         pose drifts up to half a cell from the requested one). TinyLFU refuses to let\n\
         one-off exploratory poses displace the popular cells (nonzero Reject column), so\n\
         at tight cache capacity it holds the hot working set and a higher hit rate than\n\
         LRU at the same step; a PSNR of 100 means the hit was pixel-exact."
    );
}
