//! Reproduces Figure 11: training throughput of the four systems on every
//! scene (plus the downsized "small" variants), normalized to the baseline
//! GS-Scale, on the laptop and desktop platforms. GPU-only entries that do
//! not fit in GPU memory at the paper's scale are reported as OOM, exactly as
//! in the paper.

use gs_bench::{build_scene, measure_run, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{estimate_gpu_memory, SystemKind, TrainConfig};

/// Decides (at the paper's full scale) whether GPU-only training of the scene
/// fits in the platform's GPU memory.
fn gpu_only_ooms(preset: &ScenePreset, gaussians: usize, platform: &PlatformSpec) -> bool {
    let est = estimate_gpu_memory(
        SystemKind::GpuOnly,
        gaussians,
        preset.active_ratio,
        preset.width * preset.height,
        0.3,
    );
    est.total() > platform.gpu.mem_capacity
}

fn main() {
    let scale = ExperimentScale::from_args();
    let platforms = [
        PlatformSpec::laptop_rtx4070m(),
        PlatformSpec::desktop_rtx4080s(),
    ];

    // Scene list matching the figure: each scene plus its "small" variant
    // (Aerial has none).
    let mut variants: Vec<(ScenePreset, &str, usize)> = Vec::new();
    for preset in ScenePreset::ALL {
        if preset.has_small_variant() {
            variants.push((preset.clone(), "small", preset.paper_gaussians_small));
        }
        variants.push((preset.clone(), "full", preset.paper_gaussians));
    }

    for platform in &platforms {
        let mut rows = Vec::new();
        for (preset, variant, paper_gaussians) in &variants {
            let scene = build_scene(preset, &scale);
            let cfg = TrainConfig::fast_test(scale.iterations);

            // Baseline throughput for normalization.
            let baseline = measure_run(SystemKind::BaselineOffload, platform, &scene, &cfg, &scale)
                .expect("baseline offloading fits")
                .throughput_images_per_s();

            let mut row = vec![format!(
                "{}{}",
                preset.name,
                if *variant == "small" { " (small)" } else { "" }
            )];
            for kind in SystemKind::ALL {
                if kind == SystemKind::GpuOnly && gpu_only_ooms(preset, *paper_gaussians, platform)
                {
                    row.push("OOM".to_string());
                    continue;
                }
                let throughput = measure_run(kind, platform, &scene, &cfg, &scale)
                    .map(|r| r.throughput_images_per_s())
                    .unwrap_or(0.0);
                row.push(format!("{:.2}", throughput / baseline));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 11: training throughput normalized to baseline GS-Scale — {}",
                platform.name
            ),
            &[
                "Scene",
                SystemKind::BaselineOffload.name(),
                SystemKind::GsScaleNoDeferred.name(),
                SystemKind::GsScale.name(),
                SystemKind::GpuOnly.name(),
            ],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): GS-Scale improves over the baseline by ~4.5x geomean; the\n\
         full-size scenes OOM under GPU-only training while GS-Scale keeps running at a\n\
         throughput comparable to (laptop: better than) GPU-only on the small variants."
    );
}
