//! CI perf-regression gate: diffs two `BENCH_<name>.json` artifacts.
//!
//! Usage: `cargo run --release -p gs-bench --bin bench_diff --
//! <baseline.json> <current.json> [--threshold 0.10]`
//!
//! Scenarios are matched by label; for each match the tool reports the
//! throughput and p99 deltas and flags any regression beyond the threshold
//! (default 10%). Roofline rows are matched the same way on phase label and
//! flagged on per-phase time regressions. The tool is **warn-only**: it
//! always exits 0 when both files parse, because CI runners are noisy
//! shared machines and a hard perf gate there produces more flakes than
//! catches. The flags land in the job log (and the `::warning::` lines in
//! the GitHub annotations pane) where a regression is visible without
//! blocking the merge.
//!
//! Scenarios that declare a p99 latency SLO (`slo_p99_ms` in the report)
//! are additionally checked **against the SLO itself**, not just against
//! the baseline: a current p99 above the declared threshold raises an
//! error-level `::error::` annotation. This too keeps the exit code 0 —
//! the objective lives in the report, the judgement call on a noisy
//! runner stays with the reviewer — but it escalates visibly above the
//! relative-regression warnings.
//!
//! Exits non-zero only for operator errors: missing/unreadable files or
//! malformed JSON. A baseline that simply doesn't exist yet (first run of a
//! new benchmark) should be handled by the caller skipping the diff.

use std::process::ExitCode;

use gs_bench::{print_table, BenchReport};

struct Args {
    baseline: String,
    current: String,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut threshold = 0.10;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --threshold value: {v}"))?;
                if !(0.0..=1.0).contains(&threshold) {
                    return Err(format!("--threshold must be in [0, 1], got {threshold}"));
                }
            }
            "--help" | "-h" => {
                return Err("usage: bench_diff <baseline.json> <current.json> \
                            [--threshold 0.10]"
                    .to_string())
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two positional arguments: \
                    <baseline.json> <current.json>"
            .to_string());
    }
    let baseline = positional.remove(0);
    let current = positional.remove(0);
    Ok(Args {
        baseline,
        current,
        threshold,
    })
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Relative change of `now` vs `base`; positive = increased.
fn rel(base: f64, now: f64) -> f64 {
    if base > 0.0 {
        (now - base) / base
    } else {
        0.0
    }
}

fn pct(v: f64) -> String {
    format!("{:+.1}%", v * 100.0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(msg) = r {
                    eprintln!("{msg}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let mut warnings: Vec<String> = Vec::new();
    // SLO breaches escalate above relative regressions: the current run
    // violated a declared objective, no baseline needed.
    let mut breaches: Vec<String> = Vec::new();
    // Coverage changes are not regressions, but they must not pass
    // silently either: a scenario present in only one report means the
    // diff is comparing less than the reader assumes.
    let mut notices: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cur in &current.scenarios {
        if cur.slo_p99_ms > 0.0 && cur.p99_ms > cur.slo_p99_ms {
            breaches.push(format!(
                "scenario \"{}\": p99 {:.2} ms exceeds its {:.2} ms SLO",
                cur.scenario, cur.p99_ms, cur.slo_p99_ms
            ));
        }
        let Some(base) = baseline
            .scenarios
            .iter()
            .find(|b| b.scenario == cur.scenario)
        else {
            notices.push(format!(
                "scenario \"{}\" is new: present in {} but not in baseline {}",
                cur.scenario, args.current, args.baseline
            ));
            rows.push(vec![
                cur.scenario.clone(),
                "(new)".to_string(),
                format!("{:.1}", cur.throughput_rps),
                "-".to_string(),
                format!("{:.2}", cur.p99_ms),
                "-".to_string(),
            ]);
            continue;
        };
        let d_rps = rel(base.throughput_rps, cur.throughput_rps);
        let d_p99 = rel(base.p99_ms, cur.p99_ms);
        // Throughput regresses by dropping, p99 by growing.
        if d_rps < -args.threshold {
            warnings.push(format!(
                "scenario \"{}\": throughput {} ({:.1} -> {:.1} req/s)",
                cur.scenario,
                pct(d_rps),
                base.throughput_rps,
                cur.throughput_rps
            ));
        }
        if d_p99 > args.threshold {
            warnings.push(format!(
                "scenario \"{}\": p99 {} ({:.2} -> {:.2} ms)",
                cur.scenario,
                pct(d_p99),
                base.p99_ms,
                cur.p99_ms
            ));
        }
        rows.push(vec![
            cur.scenario.clone(),
            format!("{:.1}", base.throughput_rps),
            format!("{:.1}", cur.throughput_rps),
            pct(d_rps),
            format!("{:.2}", cur.p99_ms),
            pct(d_p99),
        ]);
    }
    for gone in baseline
        .scenarios
        .iter()
        .filter(|b| !current.scenarios.iter().any(|c| c.scenario == b.scenario))
    {
        notices.push(format!(
            "scenario \"{}\" disappeared: present in baseline {} but not in {}",
            gone.scenario, args.baseline, args.current
        ));
        rows.push(vec![
            gone.scenario.clone(),
            format!("{:.1}", gone.throughput_rps),
            "(gone)".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    print_table(
        &format!(
            "Perf diff: {} (baseline {} vs current {})",
            current.bench, args.baseline, args.current
        ),
        &[
            "Scenario",
            "base req/s",
            "now req/s",
            "drps",
            "now p99 ms",
            "dp99",
        ],
        &rows,
    );

    let mut kernel_rows: Vec<Vec<String>> = Vec::new();
    for cur in &current.roofline {
        let Some(base) = baseline.roofline.iter().find(|b| b.phase == cur.phase) else {
            notices.push(format!(
                "kernel phase \"{}\" is new: present in {} but not in baseline {}",
                cur.phase, args.current, args.baseline
            ));
            continue;
        };
        let d_t = rel(base.seconds, cur.seconds);
        if d_t > args.threshold {
            warnings.push(format!(
                "kernel phase \"{}\": time {} ({:.1} -> {:.1} us)",
                cur.phase,
                pct(d_t),
                base.seconds * 1e6,
                cur.seconds * 1e6
            ));
        }
        kernel_rows.push(vec![
            cur.phase.clone(),
            format!("{:.1}", base.seconds * 1e6),
            format!("{:.1}", cur.seconds * 1e6),
            pct(d_t),
            format!("{:.2}x", cur.speedup),
        ]);
    }
    if !kernel_rows.is_empty() {
        print_table(
            "Kernel roofline diff",
            &["Phase", "base us", "now us", "dt", "now speedup"],
            &kernel_rows,
        );
    }

    if !notices.is_empty() {
        println!();
        for n in &notices {
            // `::notice::` is GitHub Actions' info-level annotation; plain
            // text everywhere else.
            println!("::notice::bench coverage change: {n}");
        }
    }
    if !breaches.is_empty() {
        println!();
        for b in &breaches {
            // `::error::` is GitHub Actions' error-level annotation; the
            // job still exits 0 (see the module doc), but a breach of a
            // declared objective must outrank a relative regression.
            println!("::error::SLO breach: {b}");
        }
        println!(
            "{} SLO breach(es) in {} — annotated, not failing the job",
            breaches.len(),
            args.current
        );
    }
    if warnings.is_empty() {
        println!(
            "\nno regressions beyond {:.0}% against {}",
            args.threshold * 100.0,
            args.baseline
        );
    } else {
        println!();
        for w in &warnings {
            // `::warning::` is GitHub Actions' annotation syntax; plain text
            // everywhere else.
            println!("::warning::perf regression: {w}");
        }
        println!(
            "\n{} potential regression(s) beyond {:.0}% — warn-only, not failing the job",
            warnings.len(),
            args.threshold * 100.0
        );
    }
    ExitCode::SUCCESS
}
