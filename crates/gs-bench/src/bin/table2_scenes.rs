//! Reproduces Table 2: evaluated benchmark scenes (plus the Figure 4 active
//! ratios and the paper-scale Gaussian counts each preset encodes).

use gs_bench::print_table;
use gs_scene::presets::SceneKind;
use gs_scene::ScenePreset;

fn main() {
    let rows: Vec<Vec<String>> = ScenePreset::ALL
        .iter()
        .map(|p| {
            vec![
                p.dataset.to_string(),
                p.name.to_string(),
                format!("{}x{}", p.width, p.height),
                match p.kind {
                    SceneKind::RealWorldOutdoor => "Real World & Outdoor".to_string(),
                    SceneKind::Synthetic => "Synthetic".to_string(),
                },
                format!("{:.1}%", p.active_ratio * 100.0),
                format!("{:.0}M", p.paper_gaussians as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "Table 2: evaluated benchmark scenes",
        &[
            "Dataset",
            "Scene",
            "Resolution",
            "Type",
            "Active ratio",
            "Gaussians (paper scale)",
        ],
        &rows,
    );
}
