//! CI observability smoke: exercises the whole `gs-obs` surface over real
//! loopback HTTP and fails loudly if any piece regresses.
//!
//! Builds a 2-replica cluster (both replicas behind the real `gs-serve`
//! HTTP front-end), loads a cross-node sharded scene, renders with a
//! pinned `X-Trace-Id`, then:
//!
//! * fetches `GET /metrics` on **both tiers** and runs the in-repo
//!   Prometheus linter ([`gs_obs::lint_prometheus`]) over each, asserting
//!   the per-phase roofline gauges (replica tier) and the interpretation
//!   layer's families (`gs_slo_*`, `gs_build_info`, histogram exemplars)
//!   are present;
//! * fetches `GET /slo`, `GET /heat`, `GET /events` and `GET /dashboard`
//!   on both tiers and checks each answers with its expected document;
//! * fetches `GET /trace` and checks the Chrome trace-event JSON contains
//!   the stitched cross-node tree (relay hops + grafted replica spans),
//!   and that `GET /trace?id=<hex>` filters to exactly the pinned trace;
//! * **kills one replica mid-run** and keeps rendering: the coordinator
//!   fails over, the flight recorder captures the anomaly, and
//!   `GET /incidents` must show an incident whose frozen event tail names
//!   the replica death — with `--incidents <path>` that JSON is written to
//!   disk so CI uploads it as an artifact;
//! * with `--out <path>`, writes the Chrome trace JSON to disk as well.
//!
//! Usage: `cargo run --release -p gs-bench --bin obs_smoke
//! [--out obs-trace.json] [--incidents obs-incidents.json]`

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gs_bench::BenchArgs;
use gs_cluster::{bind_http, ClusterConfig, CompositeMode, Coordinator, ReplicaTransport};
use gs_obs::lint_prometheus;
use gs_scene::tour::{TourConfig, TourScene};
use gs_serve::http::client;
use gs_serve::{
    HttpConfig, HttpServer, ObsTuning, RenderServer, SceneRegistry, ServeConfig, WireRequest,
    TRACE_ID_HEADER,
};

/// Short windows and a fast watcher so the interpretation layer converges
/// within a smoke run instead of a production burn-rate horizon.
fn smoke_tuning() -> ObsTuning {
    ObsTuning {
        slo_fast_window_s: 2,
        slo_slow_window_s: 8,
        watcher_interval_ms: 20,
        heat_window_s: 30,
        heat_top_k: 8,
        ..ObsTuning::default()
    }
}

fn replica_server(name: &str) -> Arc<RenderServer> {
    Arc::new(RenderServer::new(
        ServeConfig {
            workers: 1,
            queue_depth: 16,
            max_batch: 1,
            cache_bytes: 0,
            shard_bytes: 0,
            phase_sample_every: 1,
            node: name.to_string(),
            obs: smoke_tuning(),
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 30),
    ))
}

/// `--incidents <path>`: obs_smoke-specific flag (BenchArgs ignores it).
fn incidents_out() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--incidents" {
            return args.next().map(Into::into);
        }
    }
    None
}

fn write_artifact(path: &std::path::Path, body: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("artifact dir is creatable");
        }
    }
    std::fs::write(path, body).expect("artifact path is writable");
    println!("wrote {}", path.display());
}

fn main() {
    let args = BenchArgs::parse();
    let scene = TourScene::generate(TourConfig {
        name: "smoke".to_string(),
        num_gaussians: 600,
        length: 50.0,
        half_section: 4.0,
        width: 64,
        height: 48,
        num_views: 2,
        seed: 61,
    });

    let cluster = Arc::new(Coordinator::new(ClusterConfig {
        composite: CompositeMode::Relay,
        node: "coordinator".to_string(),
        obs: smoke_tuning(),
        ..ClusterConfig::default()
    }));
    let mut backends = Vec::new();
    for i in 0..2 {
        let server = replica_server(&format!("replica-{i}"));
        let http = HttpServer::bind(
            HttpConfig {
                max_body_bytes: 4 << 20,
                ..HttpConfig::default()
            },
            Arc::clone(&server),
        )
        .expect("replica front-end binds");
        cluster
            .add_replica(
                format!("http-{i}"),
                ReplicaTransport::Http(http.local_addr().to_string()),
            )
            .unwrap();
        backends.push((http, server));
    }
    cluster
        .load_scene_sharded(
            "smoke",
            Arc::new(scene.gt_params.clone()),
            scene.background,
            4,
        )
        .unwrap();
    let front =
        bind_http(HttpConfig::default(), Arc::clone(&cluster)).expect("cluster front binds");
    let mut stream = TcpStream::connect(front.local_addr()).unwrap();

    // One traced cross-node render: the whole span pipeline lights up.
    let cam = &scene.cameras[0];
    let mut req = WireRequest::new(
        "smoke",
        [cam.position.x, cam.position.y, cam.position.z],
        [cam.position.x + 1.0, cam.position.y, cam.position.z],
        cam.width,
        cam.height,
    );
    req.fov_x = 1.2;
    req.client = Some("smoke-client".to_string());
    let trace_hex = "00000000c0ffee00";
    let response = client::request_with_headers(
        &mut stream,
        "POST",
        "/render",
        &[(TRACE_ID_HEADER, trace_hex)],
        req.to_body().as_bytes(),
    )
    .unwrap();
    assert_eq!(
        response.status,
        200,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    assert_eq!(response.header("x-trace-id"), Some(trace_hex));

    // A few untraced renders so the heat tables and SLO windows see a
    // request rate, not a single sample.
    for _ in 0..4 {
        let r = client::request(&mut stream, "POST", "/render", req.to_body().as_bytes()).unwrap();
        assert_eq!(r.status, 200);
    }

    // /metrics on the cluster tier: lint-clean, and the interpretation
    // layer's families are exported — SLO gauges, build info, and the
    // pinned trace id riding the latency histogram as an exemplar.
    let metrics = client::request(&mut stream, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    let samples = lint_prometheus(&text).expect("cluster /metrics lints clean");
    for family in [
        "gs_traces_finished",
        "gs_slo_burn_rate",
        "gs_slo_breached",
        "gs_build_info",
        "gs_uptime_seconds",
    ] {
        assert!(text.contains(family), "{family} missing:\n{text}");
    }
    assert!(
        text.contains(&format!("trace_id=\"{trace_hex}\"")),
        "latency histogram lost its exemplar:\n{text}"
    );
    println!("cluster  /metrics: {samples} samples, lint clean, slo/build/exemplar present");

    // /metrics on the replica (gs-serve) tier, roofline gauges included.
    let (replica_http, _) = &backends[0];
    let mut replica_stream = TcpStream::connect(replica_http.local_addr()).unwrap();
    let metrics = client::request(&mut replica_stream, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    let samples = lint_prometheus(&text).expect("replica /metrics lints clean");
    for gauge in [
        "gs_phase_seconds",
        "gs_phase_flops_per_second",
        "gs_slo_burn_rate",
        "gs_build_info",
    ] {
        assert!(text.contains(gauge), "{gauge} missing:\n{text}");
    }
    println!("replica  /metrics: {samples} samples, lint clean, roofline + slo gauges present");

    // The interpretation endpoints answer on both tiers.
    for (label, stream) in [("cluster", &mut stream), ("replica", &mut replica_stream)] {
        let slo = client::request(stream, "GET", "/slo", b"").unwrap();
        assert_eq!(slo.status, 200);
        let body = String::from_utf8(slo.body).unwrap();
        for needle in [
            "\"slos\"",
            "\"latency\"",
            "\"availability\"",
            "\"burn_rate\"",
        ] {
            assert!(
                body.contains(needle),
                "{label} /slo missing {needle}: {body}"
            );
        }

        let heat = client::request(stream, "GET", "/heat", b"").unwrap();
        assert_eq!(heat.status, 200);
        let body = String::from_utf8(heat.body).unwrap();
        assert!(body.contains("\"scenes\""), "{label} /heat: {body}");
        assert!(
            body.contains("smoke"),
            "{label} /heat lost the hot scene: {body}"
        );

        let events = client::request(stream, "GET", "/events", b"").unwrap();
        assert_eq!(events.status, 200);
        assert!(String::from_utf8(events.body)
            .unwrap()
            .contains("\"events\""));

        let dash = client::request(stream, "GET", "/dashboard", b"").unwrap();
        assert_eq!(dash.status, 200);
        let body = String::from_utf8(dash.body).unwrap();
        assert!(body.starts_with("<!DOCTYPE html>"), "{label} /dashboard");
        assert!(
            !body.contains("<script"),
            "{label} dashboard must stay asset-free"
        );
        println!("{label}  /slo /heat /events /dashboard: all answering");
    }

    // /trace: the stitched tree exports as Chrome trace-event JSON.
    let chrome = client::request(&mut stream, "GET", "/trace", b"").unwrap();
    assert_eq!(chrome.status, 200);
    let json = String::from_utf8(chrome.body).unwrap();
    for needle in ["\"traceEvents\"", "relay:smoke@", "layer_render", trace_hex] {
        assert!(
            json.contains(needle),
            "trace export missing {needle}:\n{json}"
        );
    }
    println!("cluster  /trace: {} bytes of Chrome trace JSON", json.len());

    // /trace?id= filters to one trace; a bogus id is a clean 404.
    let one = client::request(&mut stream, "GET", &format!("/trace?id={trace_hex}"), b"").unwrap();
    assert_eq!(one.status, 200);
    let one_json = String::from_utf8(one.body).unwrap();
    assert!(one_json.contains(trace_hex));
    assert!(
        one_json.len() <= json.len(),
        "id-filtered export is larger than the full ring export"
    );
    let missing = client::request(&mut stream, "GET", "/trace?id=ffffffffffffffff", b"").unwrap();
    assert_eq!(missing.status, 404);
    println!("cluster  /trace?id={trace_hex}: filtered export + 404 on unknown ids");

    if let Some(path) = &args.out {
        write_artifact(path, &json);
    }

    // Kill replica 1 mid-run and keep rendering: the coordinator marks it
    // down and fails over, the flight recorder turns the error events into
    // an incident (metrics snapshot frozen at anomaly time).
    let (dead_http, dead_server) = backends.pop().unwrap();
    dead_http.shutdown();
    drop(dead_server);
    for _ in 0..3 {
        let r = client::request(&mut stream, "POST", "/render", req.to_body().as_bytes()).unwrap();
        assert_eq!(
            r.status,
            200,
            "failover render failed: {}",
            String::from_utf8_lossy(&r.body)
        );
    }
    // Two watcher intervals: one tick to open the incident, one to settle.
    std::thread::sleep(Duration::from_millis(100));

    let events = client::request(&mut stream, "GET", "/events", b"").unwrap();
    let events_body = String::from_utf8(events.body).unwrap();
    assert!(
        events_body.contains("marked down"),
        "replica death left no event:\n{events_body}"
    );
    let incidents = client::request(&mut stream, "GET", "/incidents", b"").unwrap();
    assert_eq!(incidents.status, 200);
    let incidents_body = String::from_utf8(incidents.body).unwrap();
    assert!(
        incidents_body.contains("\"trigger\""),
        "no incident captured after replica kill:\n{incidents_body}"
    );
    assert!(
        incidents_body.contains("marked down"),
        "incident event tail lost the replica death:\n{incidents_body}"
    );
    assert!(
        incidents_body.contains("gs_slo_burn_rate"),
        "incident metrics snapshot missing:\n{incidents_body}"
    );
    println!(
        "cluster  /incidents: replica kill captured ({} bytes)",
        incidents_body.len()
    );
    if let Some(path) = incidents_out() {
        write_artifact(&path, &incidents_body);
    }

    front.shutdown();
    for (http, _server) in backends {
        http.shutdown();
    }
    println!("observability smoke passed");
}
