//! CI observability smoke: exercises the whole `gs-obs` surface over real
//! loopback HTTP and fails loudly if any piece regresses.
//!
//! Builds a 2-replica cluster (both replicas behind the real `gs-serve`
//! HTTP front-end), loads a cross-node sharded scene, renders with a
//! pinned `X-Trace-Id`, then:
//!
//! * fetches `GET /metrics` on **both tiers** and runs the in-repo
//!   Prometheus linter ([`gs_obs::lint_prometheus`]) over each, asserting
//!   the per-phase roofline gauges are present on the replica tier;
//! * fetches `GET /trace` and checks the Chrome trace-event JSON contains
//!   the stitched cross-node tree (relay hops + grafted replica spans);
//! * with `--out <path>`, writes that Chrome trace JSON to disk so CI can
//!   upload it as an artifact.
//!
//! Usage: `cargo run --release -p gs-bench --bin obs_smoke
//! [--out obs-trace.json]`

use std::net::TcpStream;
use std::sync::Arc;

use gs_bench::BenchArgs;
use gs_cluster::{bind_http, ClusterConfig, CompositeMode, Coordinator, ReplicaTransport};
use gs_obs::lint_prometheus;
use gs_scene::tour::{TourConfig, TourScene};
use gs_serve::http::client;
use gs_serve::{
    HttpConfig, HttpServer, RenderServer, SceneRegistry, ServeConfig, WireRequest, TRACE_ID_HEADER,
};

fn replica_server(name: &str) -> Arc<RenderServer> {
    Arc::new(RenderServer::new(
        ServeConfig {
            workers: 1,
            queue_depth: 16,
            max_batch: 1,
            cache_bytes: 0,
            shard_bytes: 0,
            phase_sample_every: 1,
            node: name.to_string(),
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 30),
    ))
}

fn main() {
    let args = BenchArgs::parse();
    let scene = TourScene::generate(TourConfig {
        name: "smoke".to_string(),
        num_gaussians: 600,
        length: 50.0,
        half_section: 4.0,
        width: 64,
        height: 48,
        num_views: 2,
        seed: 61,
    });

    let cluster = Arc::new(Coordinator::new(ClusterConfig {
        composite: CompositeMode::Relay,
        node: "coordinator".to_string(),
        ..ClusterConfig::default()
    }));
    let mut backends = Vec::new();
    for i in 0..2 {
        let server = replica_server(&format!("replica-{i}"));
        let http = HttpServer::bind(
            HttpConfig {
                max_body_bytes: 4 << 20,
                ..HttpConfig::default()
            },
            Arc::clone(&server),
        )
        .expect("replica front-end binds");
        cluster
            .add_replica(
                format!("http-{i}"),
                ReplicaTransport::Http(http.local_addr().to_string()),
            )
            .unwrap();
        backends.push((http, server));
    }
    cluster
        .load_scene_sharded(
            "smoke",
            Arc::new(scene.gt_params.clone()),
            scene.background,
            4,
        )
        .unwrap();
    let front =
        bind_http(HttpConfig::default(), Arc::clone(&cluster)).expect("cluster front binds");
    let mut stream = TcpStream::connect(front.local_addr()).unwrap();

    // One traced cross-node render: the whole span pipeline lights up.
    let cam = &scene.cameras[0];
    let mut req = WireRequest::new(
        "smoke",
        [cam.position.x, cam.position.y, cam.position.z],
        [cam.position.x + 1.0, cam.position.y, cam.position.z],
        cam.width,
        cam.height,
    );
    req.fov_x = 1.2;
    let trace_hex = "00000000c0ffee00";
    let response = client::request_with_headers(
        &mut stream,
        "POST",
        "/render",
        &[(TRACE_ID_HEADER, trace_hex)],
        req.to_body().as_bytes(),
    )
    .unwrap();
    assert_eq!(
        response.status,
        200,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    assert_eq!(response.header("x-trace-id"), Some(trace_hex));

    // /metrics on the cluster tier.
    let metrics = client::request(&mut stream, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    let samples = lint_prometheus(&text).expect("cluster /metrics lints clean");
    assert!(text.contains("gs_traces_finished"), "{text}");
    println!("cluster  /metrics: {samples} samples, lint clean");

    // /metrics on the replica (gs-serve) tier, roofline gauges included.
    let (replica_http, _) = &backends[0];
    let mut replica_stream = TcpStream::connect(replica_http.local_addr()).unwrap();
    let metrics = client::request(&mut replica_stream, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    let samples = lint_prometheus(&text).expect("replica /metrics lints clean");
    for gauge in ["gs_phase_seconds", "gs_phase_flops_per_second"] {
        assert!(
            text.contains(gauge),
            "roofline gauge {gauge} missing:\n{text}"
        );
    }
    println!("replica  /metrics: {samples} samples, lint clean, roofline gauges present");

    // /trace: the stitched tree exports as Chrome trace-event JSON.
    let chrome = client::request(&mut stream, "GET", "/trace", b"").unwrap();
    assert_eq!(chrome.status, 200);
    let json = String::from_utf8(chrome.body).unwrap();
    for needle in ["\"traceEvents\"", "relay:smoke@", "layer_render", trace_hex] {
        assert!(
            json.contains(needle),
            "trace export missing {needle}:\n{json}"
        );
    }
    println!("cluster  /trace: {} bytes of Chrome trace JSON", json.len());
    if let Some(path) = &args.out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("trace export dir is creatable");
            }
        }
        std::fs::write(path, &json).expect("trace export path is writable");
        println!("wrote {}", path.display());
    }

    front.shutdown();
    for (http, _server) in backends {
        http.shutdown();
    }
    println!("observability smoke passed");
}
