//! Reproduces Figure 14: GS-Scale vs GPU-only training throughput on the
//! server platform (H100 PCIe, dual-socket NUMA host).

use gs_bench::{build_scene, measure_run, print_table, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::ScenePreset;
use gs_train::{SystemKind, TrainConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::server_h100();
    let mut rows = Vec::new();
    for preset in ScenePreset::ALL {
        let scene = build_scene(&preset, &scale);
        let cfg = TrainConfig::fast_test(scale.iterations);
        let gpu_only = measure_run(SystemKind::GpuOnly, &platform, &scene, &cfg, &scale)
            .expect("H100 fits the runnable scale")
            .throughput_images_per_s();
        let gs = measure_run(SystemKind::GsScale, &platform, &scene, &cfg, &scale)
            .expect("GS-Scale fits")
            .throughput_images_per_s();
        rows.push(vec![
            preset.name.to_string(),
            "1.00".to_string(),
            format!("{:.2}", gs / gpu_only),
        ]);
    }
    print_table(
        "Figure 14: training throughput on the server platform (normalized to GPU-only)",
        &["Scene", "GPU-Only", "GS-Scale"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the server follows the laptop/desktop trend; the Aerial scene\n\
         benefits most (lowest active ratio => largest deferred-update gain), while the NUMA\n\
         host's reduced random-access bandwidth keeps the normalized throughput somewhat lower\n\
         than the laptop despite a similar R_bw."
    );
}
