//! Scheduler-policy sweep: FIFO vs batch-aware scheduling on a mixed
//! 3-scene workload — the experiment the pluggable scheduling layer exists
//! to run.
//!
//! Two regimes, because they stress different halves of the policy:
//!
//! * **Closed-loop saturation** — N clients each keep one request in
//!   flight. The queue always holds a mixed scene population, so the
//!   densest-scene choice (vs FIFO's head-scene choice) shifts batch
//!   composition; gains are bounded because every queued request must be
//!   served either way.
//! * **Paced open-loop (mid load)** — requests arrive on a clock at ~70%
//!   of one worker's capacity. FIFO dispatches eagerly and its batches
//!   collapse toward size 1; the batch-aware scheduler *accumulates*
//!   (bounded by the age/deadline fairness cap) and regroups arrivals into
//!   real same-scene batches. This is the dynamic-batching regime the
//!   policy is for.
//!
//! The sweep first proves the per-request contract — the same mixed
//! request sequence renders byte-identical frames under both policies —
//! and asserts zero deadline-cap violations everywhere.
//!
//! Usage: `cargo run --release -p gs-bench --bin serve_sched_scaling
//! [--full] [--seed <n>] [--out BENCH_serve_sched.json]`
//!
//! `--out` writes the machine-readable perf report (one scenario per
//! closed-loop cell plus the two paced rows, see [`gs_bench::perf`]).

use std::sync::Arc;
use std::time::{Duration, Instant};

use gs_bench::{print_table, BenchArgs, BenchReport, BenchScenario};
use gs_core::rng::Rng64;
use gs_scene::{SceneConfig, SceneDataset};
use gs_serve::{
    RenderRequest, RenderServer, SceneRegistry, SchedulerPolicy, ServeConfig, ServeStats,
};

struct Workload {
    scenes: Arc<Vec<SceneDataset>>,
    clients: usize,
    requests_per_client: usize,
    paced_requests: usize,
}

fn build_workload(full: bool) -> Workload {
    let (gaussians, requests_per_client, paced_requests) = if full {
        (2400, 40, 240)
    } else {
        (900, 18, 120)
    };
    // Three scenes, per the acceptance bar: enough for real mixing, small
    // enough that the sweep smoke-runs in CI.
    let scenes: Vec<SceneDataset> = (0..3)
        .map(|i| {
            SceneDataset::generate(SceneConfig {
                name: format!("mix-{i}"),
                num_gaussians: gaussians,
                init_points: 64,
                width: 64,
                height: 48,
                num_train_views: 8,
                num_test_views: 2,
                target_active_ratio: 0.25,
                extent: 80.0,
                far_view_fraction: 0.0,
                seed: 7700 + i as u64,
            })
        })
        .collect();
    Workload {
        scenes: Arc::new(scenes),
        clients: 12,
        requests_per_client,
        paced_requests,
    }
}

fn config(scheduler: SchedulerPolicy, workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_depth: 64,
        max_batch: 8,
        // Cache off: every request renders, so the delta between the rows
        // is purely the scheduling policy's batching effect.
        cache_bytes: 0,
        pose_quant: 0.05,
        shard_bytes: 0,
        scheduler,
        ..ServeConfig::default()
    }
}

fn start_server(
    workload: &Workload,
    scheduler: SchedulerPolicy,
    workers: usize,
) -> Arc<RenderServer> {
    let server = Arc::new(RenderServer::new(
        config(scheduler, workers),
        SceneRegistry::with_budget(1 << 32),
    ));
    for (i, scene) in workload.scenes.iter().enumerate() {
        server
            .load_scene(
                format!("mix-{i}"),
                Arc::new(scene.gt_params.clone()),
                scene.background,
            )
            .unwrap();
    }
    server
}

/// Proves the per-request contract: the same deterministic mixed request
/// sequence submitted to a FIFO server and a batch-aware server yields
/// byte-identical frames for every request.
fn verify_bit_identical(workload: &Workload) {
    let sequence: Vec<(usize, usize)> = (0..18).map(|i| (i % 3, i / 3)).collect();
    let run = |scheduler: SchedulerPolicy| -> Vec<Vec<f32>> {
        let server = start_server(workload, scheduler, 1);
        let tickets: Vec<_> = sequence
            .iter()
            .map(|&(s, v)| {
                let scene = &workload.scenes[s];
                let cam = scene.train_cameras[v % scene.train_cameras.len()].clone();
                server
                    .submit(RenderRequest::full(format!("mix-{s}"), cam))
                    .unwrap()
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap().image.data().to_vec())
            .collect()
    };
    let fifo = run(SchedulerPolicy::Fifo);
    let batch_aware = run(SchedulerPolicy::batch_aware());
    for (i, (a, b)) in fifo.iter().zip(&batch_aware).enumerate() {
        assert_eq!(
            a, b,
            "request {i}: frames must be byte-identical across policies"
        );
    }
    println!(
        "bit-identical check: {} mixed requests render the same bytes under both policies",
        sequence.len()
    );
}

/// Closed-loop run: every client keeps exactly one request in flight.
fn run_closed_loop(workload: &Workload, scheduler: SchedulerPolicy, workers: usize) -> ServeStats {
    let server = start_server(workload, scheduler, workers);
    let handles: Vec<_> = (0..workload.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let scenes = Arc::clone(&workload.scenes);
            let n = workload.requests_per_client;
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from_u64(31_000 + c as u64);
                for _ in 0..n {
                    // Deliberately mixed: every client picks an independent
                    // random scene per request, so the queue holds an
                    // uncorrelated scene mix (a deterministic round-robin
                    // would herd clients onto one scene in lockstep and
                    // hand FIFO the same batches for free).
                    let idx = rng.gen_range(0usize..scenes.len());
                    let scene = &scenes[idx];
                    let cam = scene.train_cameras[rng.gen_range(0usize..scene.train_cameras.len())]
                        .clone();
                    // A generous deadline: the acceptance bar is zero
                    // violations, i.e. the fairness cap keeps every request
                    // flowing even under reordering.
                    server
                        .render_blocking(
                            RenderRequest::full(format!("mix-{idx}"), cam)
                                .deadline_in(Duration::from_secs(30)),
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    Arc::into_inner(server).unwrap().shutdown()
}

/// Mean solo render latency — calibrates the paced phase's arrival rate.
fn calibrate_solo_ms(workload: &Workload) -> f64 {
    let server = start_server(workload, SchedulerPolicy::Fifo, 1);
    let mut total = Duration::ZERO;
    let n = 9;
    for v in 0..n {
        let s = v % workload.scenes.len();
        let scene = &workload.scenes[s];
        let cam = scene.train_cameras[v % scene.train_cameras.len()].clone();
        let started = Instant::now();
        server
            .render_blocking(RenderRequest::full(format!("mix-{s}"), cam))
            .unwrap();
        total += started.elapsed();
    }
    total.as_secs_f64() * 1e3 / n as f64
}

/// Paced open-loop run: one generator submits a request every `interval`
/// without waiting for responses (tickets are collected and awaited at the
/// end), modeling independent clients arriving on a clock.
fn run_paced(workload: &Workload, scheduler: SchedulerPolicy, interval: Duration) -> ServeStats {
    let server = start_server(workload, scheduler, 1);
    let mut rng = Rng64::seed_from_u64(77_000);
    let mut tickets = Vec::with_capacity(workload.paced_requests);
    for _ in 0..workload.paced_requests {
        let idx = rng.gen_range(0usize..workload.scenes.len());
        let scene = &workload.scenes[idx];
        let cam = scene.train_cameras[rng.gen_range(0usize..scene.train_cameras.len())].clone();
        tickets.push(
            server
                .submit(
                    RenderRequest::full(format!("mix-{idx}"), cam)
                        .deadline_in(Duration::from_secs(30)),
                )
                .unwrap(),
        );
        std::thread::sleep(interval);
    }
    for t in tickets {
        t.wait().unwrap();
    }
    Arc::into_inner(server).unwrap().shutdown()
}

fn stats_row(label: &str, workers: usize, stats: &ServeStats) -> Vec<String> {
    vec![
        label.to_string(),
        workers.to_string(),
        format!("{:.1}", stats.throughput_rps()),
        format!("{:.2}", stats.mean_batch_size()),
        stats.sched_reorders.to_string(),
        format!("{:.2}x", stats.cull_sharing_factor()),
        format!("{:.2}", stats.latency.p50 * 1e3),
        format!("{:.2}", stats.latency.p99 * 1e3),
        stats.expired.to_string(),
    ]
}

const HEADERS: [&str; 9] = [
    "Scheduler",
    "Workers",
    "req/s",
    "Batch",
    "Reorders",
    "Sharing",
    "p50 (ms)",
    "p99 (ms)",
    "Expired",
];

fn main() {
    let args = BenchArgs::parse();
    let workload = build_workload(args.full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} scenes, {} clients x {} closed-loop requests + {} paced requests",
        workload.scenes.len(),
        workload.clients,
        workload.requests_per_client,
        workload.paced_requests,
    );
    verify_bit_identical(&workload);

    // Phase 1: closed-loop saturation.
    let mut rows = Vec::new();
    let mut report = BenchReport::new("serve_sched_scaling");
    for &(scheduler, label) in &[
        (SchedulerPolicy::Fifo, "fifo"),
        (SchedulerPolicy::batch_aware(), "batch-aware"),
    ] {
        for workers in [1usize, 2] {
            let stats = run_closed_loop(&workload, scheduler, workers);
            assert_eq!(stats.expired, 0, "zero deadline-cap violations required");
            assert_eq!(stats.errors, 0);
            assert_eq!(stats.completed, total as u64);
            report.push(BenchScenario::from_serve_stats(
                format!("closed/{label}/workers={workers}"),
                &stats,
            ));
            rows.push(stats_row(label, workers, &stats));
        }
    }
    print_table(
        "Closed-loop saturation: every client keeps one request in flight",
        &HEADERS,
        &rows,
    );

    // Phase 2: paced open-loop at ~70% of one worker's solo capacity — the
    // dynamic-batching regime. FIFO dispatches eagerly (batches ~1); the
    // batch-aware scheduler accumulates under its fairness cap.
    let solo_ms = calibrate_solo_ms(&workload);
    let interval = Duration::from_secs_f64(solo_ms / 1e3 / 0.7);
    println!(
        "\ncalibration: solo render {solo_ms:.2} ms -> paced arrival every {:.2} ms (~70% load)",
        interval.as_secs_f64() * 1e3
    );
    // Wall-clock pacing on a contended runner can defeat accumulation in
    // any single attempt (sleeps overshooting the grace make every dispatch
    // eager), so the timing-dependent comparison gets a few attempts — the
    // same guard tests/scheduling.rs uses.
    let (mut fifo, mut batch_aware);
    let mut attempts = 0;
    loop {
        attempts += 1;
        fifo = run_paced(&workload, SchedulerPolicy::Fifo, interval);
        batch_aware = run_paced(&workload, SchedulerPolicy::batch_aware(), interval);
        for stats in [&fifo, &batch_aware] {
            assert_eq!(stats.expired, 0, "zero deadline-cap violations required");
            assert_eq!(stats.completed, workload.paced_requests as u64);
        }
        if batch_aware.mean_batch_size() > fifo.mean_batch_size() || attempts >= 3 {
            break;
        }
        println!("paced attempt {attempts} showed no batching gain (contended run?); retrying");
    }
    print_table(
        "Paced open-loop (~70% load): accumulation regroups mixed arrivals",
        &HEADERS,
        &[
            stats_row("fifo", 1, &fifo),
            stats_row("batch-aware", 1, &batch_aware),
        ],
    );
    println!(
        "\npaced mean batch size: fifo {:.2} -> batch-aware {:.2} ({:.2}x); \
         gather sharing {:.2}x -> {:.2}x; batch-aware p50 {:.1} ms stays within one \
         fairness cap (50 ms) of fifo's {:.1} ms",
        fifo.mean_batch_size(),
        batch_aware.mean_batch_size(),
        batch_aware.mean_batch_size() / fifo.mean_batch_size().max(1e-9),
        fifo.cull_sharing_factor(),
        batch_aware.cull_sharing_factor(),
        batch_aware.latency.p50 * 1e3,
        fifo.latency.p50 * 1e3,
    );
    assert!(
        batch_aware.mean_batch_size() > fifo.mean_batch_size(),
        "the batch-aware scheduler must increase mean batch size on paced mixed traffic \
         ({:.2} vs {:.2})",
        batch_aware.mean_batch_size(),
        fifo.mean_batch_size()
    );
    println!(
        "\nExpected shape: under closed-loop saturation both policies batch whatever is\n\
         queued, so they are close (batch-aware still picks the densest scene first).\n\
         Under paced mid-load arrivals, FIFO's batches collapse toward size 1 while the\n\
         batch-aware scheduler accumulates same-scene arrivals under its fairness cap —\n\
         larger batches, more shared cull/gather work per pass, and bounded extra p50.\n\
         Expired stays 0 in every cell: no request is ever held past its cap."
    );
    if let Some(path) = &args.out {
        report.push(BenchScenario::from_serve_stats("paced/fifo", &fifo));
        report.push(BenchScenario::from_serve_stats(
            "paced/batch-aware",
            &batch_aware,
        ));
        report.write(path).expect("perf report path is writable");
    }
}
