//! Workload capture & deterministic replay driver for `gs-trace`.
//!
//! With no arguments the binary runs the CI smoke: synthesize a Zipf
//! workload, drive it through the recorded HTTP front-end over real
//! loopback TCP, round-trip the captured trace through the `GSTR` wire
//! format and the filesystem, replay it twice sequentially (asserting
//! bit-identical frame fingerprints and equal outcome counters), run the
//! SimPoint-style phase estimate on a Zipf and a flash-crowd scenario,
//! reporting predicted-vs-full error, and finally replay a mixed-tier
//! workload (Zipf steady state merged with a flash crowd via
//! [`Trace::merge`]) through a 2-replica sharded cluster `Coordinator`,
//! asserting the cluster tier replays deterministically too.
//!
//! Subcommands:
//!
//! ```text
//! trace_replay                                  # CI smoke (see above)
//! trace_replay generate <scenario> <out.gstr> [--requests N] [--seed S]
//! trace_replay replay <trace.gstr> [--open <speed>] [--concurrency N]
//! trace_replay phases <trace.gstr> [--clusters K] [--window-ms MS]
//! ```
//!
//! Scenarios: `zipf`, `diurnal`, `flash`, `tour`.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gs_bench::{predict_from_phases, replay, ReplayConfig};
use gs_cluster::{ClusterConfig, CompositeMode, Coordinator, ReplicaTransport};
use gs_serve::http::client;
use gs_serve::{
    HttpConfig, HttpServer, RenderServer, SceneRegistry, SceneSpec, ServeConfig, WireRequest,
};
use gs_trace::{cluster, generate, PhaseConfig, SynthConfig, Trace, TraceRecorder};

/// A fresh replay server holding every scene the trace names, built
/// deterministically from the scene id (so two builds are identical).
fn build_server(trace: &Trace, cache: bool) -> RenderServer {
    let server = RenderServer::new(
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_batch: 4,
            cache_bytes: if cache { 32 << 20 } else { 0 },
            pose_quant: 0.05,
            shard_bytes: 0,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 32),
    );
    for id in trace.scene_ids() {
        let mut spec = SceneSpec::new(400);
        spec.seed = gs_bench::fnv1a(id.as_bytes());
        server
            .load_scene(id, Arc::new(spec.build()), spec.background)
            .expect("replay scene admits under the budget");
    }
    server
}

/// A fresh 2-replica cluster with every scene the trace names sharded
/// across the fleet, built deterministically (same shape as
/// [`build_server`], one tier up).
fn build_cluster(trace: &Trace) -> Arc<Coordinator> {
    let cluster = Arc::new(Coordinator::new(ClusterConfig {
        composite: CompositeMode::Relay,
        ..ClusterConfig::default()
    }));
    for i in 0..2 {
        let server = Arc::new(RenderServer::new(
            ServeConfig {
                workers: 2,
                queue_depth: 64,
                max_batch: 4,
                cache_bytes: 0,
                pose_quant: 0.05,
                shard_bytes: 0,
                ..ServeConfig::default()
            },
            SceneRegistry::with_budget(1 << 32),
        ));
        cluster
            .add_replica(format!("replica-{i}"), ReplicaTransport::InProcess(server))
            .expect("in-process replica joins");
    }
    for id in trace.scene_ids() {
        let mut spec = SceneSpec::new(400);
        spec.seed = gs_bench::fnv1a(id.as_bytes());
        cluster
            .load_scene_sharded(id, Arc::new(spec.build()), spec.background, 2)
            .expect("sharded scene loads across the fleet");
    }
    cluster
}

fn synth_config(scenario: &str, requests: usize, seed: u64) -> SynthConfig {
    let mut config = match scenario {
        "zipf" => SynthConfig::zipf(requests),
        "diurnal" => SynthConfig::diurnal(requests),
        "flash" => SynthConfig::flash_crowd(requests),
        "tour" => SynthConfig::camera_tour(requests),
        other => {
            eprintln!("unknown scenario {other:?} (use zipf|diurnal|flash|tour)");
            std::process::exit(2);
        }
    };
    config.seed = seed;
    config
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_trace(path: &str) -> Trace {
    match Trace::load(std::path::Path::new(path)) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("cannot load trace {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn print_report(label: &str, report: &gs_bench::ReplayReport) {
    println!(
        "{label}: {} events in {:.2}s ({:.1} req/s) | served {} (hit rate {:.1}%) | \
         p50 {:.2} ms p99 {:.2} ms | fingerprint {:016x}",
        report.len(),
        report.wall.as_secs_f64(),
        report.throughput_rps(),
        report.served(),
        report.hit_rate() * 100.0,
        report.latency_ms(0.50),
        report.latency_ms(0.99),
        report.fingerprint(),
    );
}

fn cmd_generate(args: &[String]) {
    let (scenario, out) = match (args.first(), args.get(1)) {
        (Some(s), Some(o)) if !s.starts_with("--") && !o.starts_with("--") => {
            (s.clone(), o.clone())
        }
        _ => {
            eprintln!(
                "usage: trace_replay generate <scenario> <out.gstr> [--requests N] [--seed S]"
            );
            std::process::exit(2);
        }
    };
    let requests = flag_value(args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let config = synth_config(
        &scenario,
        requests,
        flag_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
    );
    let trace = generate(&config);
    trace
        .save(std::path::Path::new(&out))
        .expect("trace file is writable");
    println!(
        "generated {scenario} trace: {} events, {} scene(s), {} client(s), {:.2}s span -> {out}",
        trace.len(),
        trace.scene_ids().len(),
        trace.client_ids().len(),
        trace.duration_us() as f64 / 1e6,
    );
}

fn cmd_replay(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_replay replay <trace.gstr> [--open <speed>] [--concurrency N]");
        std::process::exit(2);
    };
    let trace = load_trace(path);
    let concurrency = flag_value(args, "--concurrency")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let config = match flag_value(args, "--open").and_then(|v| v.parse::<f64>().ok()) {
        Some(speed) => ReplayConfig::open_loop(speed, concurrency.max(2)),
        None => ReplayConfig::closed_loop(concurrency),
    };
    let server = build_server(&trace, true);
    let report = replay(&server, &trace, &config);
    print_report("replay", &report);
    server.shutdown();
}

fn cmd_phases(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_replay phases <trace.gstr> [--clusters K] [--window-ms MS]");
        std::process::exit(2);
    };
    let trace = load_trace(path);
    let clusters = flag_value(args, "--clusters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let window_ms = flag_value(args, "--window-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    report_phase_prediction("phases", &trace, clusters, window_ms * 1000);
}

/// Clusters `trace` into phases and prints the predicted-vs-full error of
/// the weighted representative replay. Returns the prediction.
fn report_phase_prediction(
    label: &str,
    trace: &Trace,
    clusters: usize,
    window_us: u64,
) -> gs_bench::PhasePrediction {
    let phases = cluster(trace, &PhaseConfig::new(window_us, clusters));
    let rep_server = build_server(trace, true);
    let full_server = build_server(trace, true);
    let prediction = predict_from_phases(
        &rep_server,
        &full_server,
        trace,
        &phases,
        &ReplayConfig::sequential(),
    );
    rep_server.shutdown();
    full_server.shutdown();
    println!(
        "{label}: {} windows -> {} representative(s), replayed {}/{} events ({:.0}%)",
        phases.windows.len(),
        phases.representatives.len(),
        prediction.replayed_events,
        prediction.total_events,
        prediction.replay_fraction() * 100.0,
    );
    println!(
        "{label}: hit rate predicted {:.3} vs full {:.3} (abs err {:.3}) | \
         p50 predicted {:.2} ms vs full {:.2} ms (rel err {:.1}%) | \
         p99 predicted {:.2} ms vs full {:.2} ms",
        prediction.predicted_hit_rate,
        prediction.full_hit_rate,
        prediction.hit_rate_error(),
        prediction.predicted_p50_ms,
        prediction.full_p50_ms,
        prediction.p50_relative_error() * 100.0,
        prediction.predicted_p99_ms,
        prediction.full_p99_ms,
    );
    prediction
}

/// The CI smoke: capture over real TCP, round-trip, replay twice, predict.
fn smoke() {
    // 1. Synthesize a cache-friendly Zipf workload.
    let config = synth_config("zipf", 240, 7);
    let synthetic = generate(&config);
    println!(
        "synthesized {} events over {} scene(s) / {} client(s)",
        synthetic.len(),
        synthetic.scene_ids().len(),
        synthetic.client_ids().len(),
    );

    // 2. Capture: drive every event through the recorded HTTP front-end.
    let server = Arc::new(build_server(&synthetic, true));
    let recorder = Arc::new(TraceRecorder::new());
    let http = HttpServer::bind_recorded(
        HttpConfig::default(),
        Arc::clone(&server),
        Arc::clone(&recorder),
    )
    .expect("loopback bind");
    let addr = http.local_addr();
    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("socket timeout");
    for event in &synthetic.events {
        let body = WireRequest::from_trace_event(event).to_body();
        let response = client::request(&mut stream, "POST", "/render", body.as_bytes())
            .expect("render request");
        assert_eq!(response.status, 200, "render failed: {body}");
    }
    drop(stream);
    http.shutdown();
    let captured = recorder.snapshot();
    assert_eq!(
        captured.len(),
        synthetic.len(),
        "every driven request must be captured"
    );
    assert_eq!(recorder.dropped(), 0);
    println!(
        "capture: PASS ({} events recorded over HTTP, {} served from cache)",
        captured.len(),
        captured
            .events
            .iter()
            .filter(|e| e.outcome == gs_trace::Outcome::CacheHit)
            .count(),
    );

    // 3. Wire + filesystem round trip.
    let decoded = Trace::decode(&captured.encode()).expect("self-encoded trace decodes");
    assert_eq!(decoded, captured);
    let path = std::env::temp_dir().join(format!("trace_replay_smoke_{}.gstr", std::process::id()));
    captured.save(&path).expect("trace file is writable");
    let loaded = Trace::load(&path).expect("trace file loads");
    assert_eq!(loaded, captured);
    std::fs::remove_file(&path).ok();
    println!("roundtrip: PASS (encode/decode and save/load are lossless)");

    // 4. Deterministic replay: two sequential replays on identically-built
    //    fresh servers agree on every frame hash and every outcome.
    let sequential = ReplayConfig::sequential();
    let first_server = build_server(&captured, true);
    let first = replay(&first_server, &captured, &sequential);
    first_server.shutdown();
    let second_server = build_server(&captured, true);
    let second = replay(&second_server, &captured, &sequential);
    second_server.shutdown();
    print_report("replay #1", &first);
    print_report("replay #2", &second);
    assert_eq!(
        first.fingerprint(),
        second.fingerprint(),
        "sequential replays must agree bit for bit"
    );
    for outcome in gs_trace::Outcome::ALL {
        assert_eq!(first.count(outcome), second.count(outcome), "{outcome}");
    }
    assert!(first.served() > 0);
    println!("determinism: PASS (identical fingerprints and outcome counters)");

    // 5. Phase-clustered estimate on a Zipf and a flash-crowd scenario.
    // Windows split each trace's own span (capture arrival times are the
    // recorder's clock, far denser than the synthetic timeline) into 12.
    let window_for = |t: &Trace| (t.duration_us() / 12).max(1);
    let zipf = report_phase_prediction("phases[zipf]", &captured, 3, window_for(&captured));
    let flash_trace = generate(&synth_config("flash", 240, 11));
    let flash = report_phase_prediction("phases[flash]", &flash_trace, 3, window_for(&flash_trace));
    for (name, prediction) in [("zipf", &zipf), ("flash", &flash)] {
        assert!(
            prediction.replay_fraction() < 1.0,
            "{name}: the estimate must replay a strict subset"
        );
        assert!(
            prediction.hit_rate_error() < 0.35,
            "{name}: hit-rate estimate off by {:.3}",
            prediction.hit_rate_error()
        );
    }
    println!("phases: PASS (weighted representative replay tracks the full trace)");

    // 6. Mixed-tier cluster replay: steady Zipf traffic merged with a flash
    //    crowd on a shared timeline, driven through a 2-replica cluster
    //    Coordinator with the scene sharded across the fleet. Two replays on
    //    identically-built clusters must agree bit for bit, which pins down
    //    determinism across the whole serving stack — coordinator routing,
    //    cross-node layer composition, and the tile-parallel kernels under
    //    a bursty arrival pattern.
    let mixed = Trace::merge([
        generate(&synth_config("zipf", 120, 21)),
        generate(&synth_config("flash", 120, 22)),
    ]);
    println!(
        "mixed-tier trace: {} events, {} scene(s), {:.2}s span",
        mixed.len(),
        mixed.scene_ids().len(),
        mixed.duration_us() as f64 / 1e6,
    );
    let first = {
        let cluster = build_cluster(&mixed);
        replay(&*cluster, &mixed, &ReplayConfig::sequential())
    };
    let second = {
        let cluster = build_cluster(&mixed);
        replay(&*cluster, &mixed, &ReplayConfig::sequential())
    };
    print_report("cluster replay #1", &first);
    print_report("cluster replay #2", &second);
    assert_eq!(
        first.fingerprint(),
        second.fingerprint(),
        "mixed-tier cluster replays must agree bit for bit"
    );
    for outcome in gs_trace::Outcome::ALL {
        assert_eq!(first.count(outcome), second.count(outcome), "{outcome}");
    }
    assert!(first.served() == mixed.len(), "every event must be served");
    println!("cluster: PASS (mixed zipf+flash trace replays deterministically over shards)");

    println!("\ntrace_replay smoke: all checks passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => smoke(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("phases") => cmd_phases(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand {other:?} (use generate|replay|phases or no arguments)");
            std::process::exit(2);
        }
    }
}
