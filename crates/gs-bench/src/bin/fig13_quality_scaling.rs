//! Reproduces Figure 13: rendering quality and scalability across Gaussian
//! scales and platforms — more Gaussians give better quality, and GS-Scale
//! extends the maximum trainable count on every platform.

use gs_bench::{print_table, quality_after_training, ExperimentScale};
use gs_platform::PlatformSpec;
use gs_scene::{SceneDataset, ScenePreset};
use gs_train::{estimate_gpu_memory, SystemKind, TrainConfig};

fn max_gaussians(kind: SystemKind, preset: &ScenePreset, platform: &PlatformSpec) -> f64 {
    let pixels = preset.width * preset.height;
    let mut lo = 100_000usize;
    let mut hi = 200_000_000usize;
    for _ in 0..40 {
        let mid = (lo + hi) / 2;
        if estimate_gpu_memory(kind, mid, preset.active_ratio, pixels, 0.3).total()
            <= platform.gpu.mem_capacity
        {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as f64 / 1e6
}

fn main() {
    let scale = ExperimentScale::from_args();
    let platform = PlatformSpec::desktop_rtx4080s();

    // Quality vs Gaussian count for two representative scenes (functional).
    for preset in [ScenePreset::RUBBLE, ScenePreset::SZTU] {
        let mut rows = Vec::new();
        for factor in [0.5f64, 1.0, 2.0] {
            let scene =
                SceneDataset::from_preset(&preset, scale.gaussian_scale * factor, scale.seed);
            let cfg = TrainConfig::fast_test(scale.iterations * 2);
            let (quality, n) = quality_after_training(
                SystemKind::GsScale,
                &platform,
                &scene,
                &cfg,
                scale.iterations * 2,
            )
            .expect("GS-Scale fits");
            rows.push(vec![
                format!("{n}"),
                format!("{:.2}", quality.psnr),
                format!("{:.3}", quality.ssim),
                format!("{:.3}", quality.lpips),
            ]);
        }
        print_table(
            &format!(
                "Figure 13: quality vs Gaussian count — {} (runnable scale)",
                preset.name
            ),
            &["Gaussians", "PSNR", "SSIM", "LPIPS (proxy)"],
            &rows,
        );
    }

    // Maximum Gaussian scaling per platform and system (paper scale).
    let mut rows = Vec::new();
    for platform in [
        PlatformSpec::laptop_rtx4070m(),
        PlatformSpec::desktop_rtx4080s(),
    ] {
        let preset = ScenePreset::RUBBLE;
        let gpu_only = max_gaussians(SystemKind::GpuOnly, &preset, &platform);
        let gs = max_gaussians(SystemKind::GsScale, &preset, &platform);
        rows.push(vec![
            platform.name.clone(),
            format!("{gpu_only:.1}M"),
            format!("{gs:.1}M"),
            format!("{:.1}x", gs / gpu_only),
        ]);
    }
    print_table(
        "Figure 13 (scaling): maximum trainable Gaussians per platform (Rubble, paper scale)",
        &["Platform", "GPU-Only max", "GS-Scale max", "Extension"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): quality rises monotonically with the Gaussian count; GS-Scale\n\
         scales the maximum count from ~4M to ~18M on the laptop and from ~9M to ~40M on the\n\
         desktop, which is what yields the 28-30% LPIPS improvements."
    );
}
