//! Observability overhead bench: the cost of the `gs-obs` layer on the
//! serving hot path.
//!
//! Runs the same closed-loop multi-scene workload three times against a
//! fresh [`RenderServer`] per mode:
//!
//! * **off** — tracing and kernel-phase sampling disabled, the seed's
//!   zero-observability baseline;
//! * **sampled** — the production default shape (every 64th request
//!   traced, every 32nd render phase-profiled);
//! * **full** — every request traced, every render phase-profiled, the
//!   worst case a debugging session can dial in.
//!
//! The sweep interleaves repetitions of all three modes and keeps each
//! mode's best-throughput run, so scheduler noise hits every mode alike.
//! The bench **asserts** that the sampled mode costs < 2% throughput
//! against off — the invariant that makes leaving sampling on in
//! production defensible — and records all three modes (plus the measured
//! sampled overhead) in the perf report for CI's trajectory.
//!
//! Usage: `cargo run --release -p gs-bench --bin obs_overhead
//! [--full] [--out BENCH_obs.json]`

use std::sync::Arc;

use gs_bench::{print_table, BenchArgs, BenchReport, BenchScenario};
use gs_core::rng::Rng64;
use gs_scene::{SceneConfig, SceneDataset};
use gs_serve::{RenderRequest, RenderServer, SceneRegistry, ServeConfig, ServeStats};

struct Workload {
    scenes: Arc<Vec<SceneDataset>>,
    clients: usize,
    requests_per_client: usize,
    reps: usize,
}

fn build_workload(full: bool) -> Workload {
    let (num_scenes, gaussians, requests_per_client, reps) = if full {
        (5, 2000, 50, 3)
    } else {
        (4, 900, 25, 2)
    };
    let scenes: Vec<SceneDataset> = (0..num_scenes)
        .map(|i| {
            SceneDataset::generate(SceneConfig {
                name: format!("obs-{i}"),
                num_gaussians: gaussians,
                init_points: 64,
                width: 80,
                height: 60,
                num_train_views: 8,
                num_test_views: 2,
                target_active_ratio: 0.25,
                extent: 80.0,
                far_view_fraction: 0.0,
                seed: 5300 + i as u64,
            })
        })
        .collect();
    Workload {
        scenes: Arc::new(scenes),
        clients: 8,
        requests_per_client,
        reps,
    }
}

/// One observability dial setting under test.
struct Mode {
    label: &'static str,
    trace_sample_every: u32,
    phase_sample_every: u32,
}

const MODES: [Mode; 3] = [
    Mode {
        label: "obs=off",
        trace_sample_every: 0,
        phase_sample_every: 0,
    },
    Mode {
        label: "obs=sampled",
        trace_sample_every: 64,
        phase_sample_every: 32,
    },
    Mode {
        label: "obs=full",
        trace_sample_every: 1,
        phase_sample_every: 1,
    },
];

/// One closed-loop run against a fresh server with the mode's dials.
fn run(workload: &Workload, mode: &Mode) -> ServeStats {
    let server = Arc::new(RenderServer::new(
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            cache_bytes: 0,
            trace_sample_every: mode.trace_sample_every,
            phase_sample_every: mode.phase_sample_every,
            slow_trace_ms: 0,
            span_ring: 256,
            ..ServeConfig::default()
        },
        SceneRegistry::with_budget(1 << 32),
    ));
    for (i, scene) in workload.scenes.iter().enumerate() {
        server
            .load_scene(
                format!("obs-{i}"),
                Arc::new(scene.gt_params.clone()),
                scene.background,
            )
            .unwrap();
    }
    let handles: Vec<_> = (0..workload.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let scenes = Arc::clone(&workload.scenes);
            let n = workload.requests_per_client;
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from_u64(11_000 + c as u64);
                for _ in 0..n {
                    let idx = rng.gen_range(0usize..scenes.len());
                    let scene = &scenes[idx];
                    let cam = scene.train_cameras[rng.gen_range(0usize..scene.train_cameras.len())]
                        .clone();
                    server
                        .render_blocking(RenderRequest::full(format!("obs-{idx}"), cam))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    Arc::into_inner(server).unwrap().shutdown()
}

fn main() {
    let args = BenchArgs::parse();
    let workload = build_workload(args.full);
    let total = workload.clients * workload.requests_per_client;
    println!(
        "workload: {} scenes, {} clients x {} closed-loop requests = {} total, best of {} rep(s) per mode",
        workload.scenes.len(),
        workload.clients,
        workload.requests_per_client,
        total,
        workload.reps
    );

    // Interleaved repetitions: rep 0 runs off/sampled/full back to back,
    // then rep 1, ... — so a load spike on the runner degrades all modes,
    // not just whichever one it landed on. Keep each mode's best run.
    // Best-of converges upward with more samples, so when the measured
    // overhead breaches the budget we add rounds before concluding it is
    // real: a shared 1-core CI runner can swing a single rep by ±5%, and
    // only a breach that survives every round should fail the job.
    const MAX_ROUNDS: usize = 3;
    let mut best: [Option<ServeStats>; 3] = [None, None, None];
    for round in 1..=MAX_ROUNDS {
        for _ in 0..workload.reps {
            for (slot, mode) in best.iter_mut().zip(MODES.iter()) {
                let stats = run(&workload, mode);
                let better = slot
                    .as_ref()
                    .is_none_or(|prev| stats.throughput_rps() > prev.throughput_rps());
                if better {
                    *slot = Some(stats);
                }
            }
        }
        let [Some(off), Some(sampled), _] = &best else {
            unreachable!("every mode ran at least once");
        };
        let overhead = 1.0 - sampled.throughput_rps() / off.throughput_rps();
        if overhead < 0.02 {
            break;
        }
        if round < MAX_ROUNDS {
            println!(
                "sampled overhead {:+.2}% after round {round}; re-measuring to rule out runner noise",
                overhead * 100.0
            );
        }
    }
    let best: Vec<ServeStats> = best.into_iter().map(Option::unwrap).collect();

    let off_rps = best[0].throughput_rps();
    let mut report = BenchReport::new("obs_overhead");
    let mut rows = Vec::new();
    for (mode, stats) in MODES.iter().zip(&best) {
        report.push(BenchScenario::from_serve_stats(mode.label, stats));
        let overhead = 1.0 - stats.throughput_rps() / off_rps;
        rows.push(vec![
            mode.label.to_string(),
            format!("{}/{}", mode.trace_sample_every, mode.phase_sample_every),
            format!("{:.1}", stats.throughput_rps()),
            format!("{:+.2}%", overhead * 100.0),
            format!("{:.2}", stats.latency.p50 * 1e3),
            format!("{:.2}", stats.latency.p99 * 1e3),
        ]);
    }
    print_table(
        "Observability overhead: trace/phase sampling vs throughput and tail latency",
        &[
            "Mode",
            "trace/phase",
            "req/s",
            "overhead",
            "p50 (ms)",
            "p99 (ms)",
        ],
        &rows,
    );

    let sampled_overhead = 1.0 - best[1].throughput_rps() / off_rps;
    let full_overhead = 1.0 - best[2].throughput_rps() / off_rps;
    println!(
        "\nsampled overhead: {:+.2}% throughput vs off (full-on: {:+.2}%)",
        sampled_overhead * 100.0,
        full_overhead * 100.0
    );
    // The pseudo-scenario pins the measured number into the report so the
    // CI trajectory tracks the overhead itself, not just the raw modes.
    report.push(BenchScenario {
        scenario: "sampled-overhead-pct".to_string(),
        throughput_rps: sampled_overhead * 100.0,
        p50_ms: 0.0,
        p90_ms: 0.0,
        p99_ms: 0.0,
        hit_rate: 0.0,
        mean_batch: 0.0,
        slo_p99_ms: 0.0,
    });
    if let Some(path) = &args.out {
        report.write(path).expect("perf report path is writable");
    }

    // The contract this bench exists to hold: sampled observability is
    // cheap enough to leave on in production.
    assert!(
        sampled_overhead < 0.02,
        "sampled observability overhead {:.2}% breaches the 2% budget",
        sampled_overhead * 100.0
    );
    println!("sampled overhead within the 2% budget");
}
