//! Ablation for Section 4.4: balance-aware image splitting vs a naive
//! midpoint split. Reports the active-Gaussian balance of each strategy over
//! the most demanding training views and the overhead of the split search.

use std::time::Instant;

use gs_bench::{build_scene, print_table, ExperimentScale};
use gs_core::camera::Viewport;
use gs_render::culling::frustum_cull;
use gs_scene::ScenePreset;
use gs_train::splitting::{evaluate_split, find_balanced_split};

fn main() {
    let scale = ExperimentScale::from_args();
    let mut rows = Vec::new();
    for preset in [ScenePreset::RUBBLE, ScenePreset::AERIAL] {
        let scene = build_scene(&preset, &scale);
        // Pick the most demanding views (highest active count).
        let mut views: Vec<(usize, usize)> = scene
            .train_cameras
            .iter()
            .enumerate()
            .map(|(i, cam)| {
                (
                    i,
                    frustum_cull(&scene.gt_params, cam, &Viewport::full(cam)).num_active(),
                )
            })
            .collect();
        views.sort_by_key(|(_, active)| std::cmp::Reverse(*active));

        let search_start = Instant::now();
        let mut naive_imbalance = 0.0;
        let mut balanced_imbalance = 0.0;
        let top = views.iter().take(4).collect::<Vec<_>>();
        for (view, _) in &top {
            let cam = &scene.train_cameras[*view];
            let naive = evaluate_split(&scene.gt_params, cam, cam.width / 2);
            let balanced = find_balanced_split(&scene.gt_params, cam);
            naive_imbalance += (naive.balance() - 0.5).abs();
            balanced_imbalance += (balanced.balance() - 0.5).abs();
        }
        let search_time = search_start.elapsed().as_secs_f64();
        let n = top.len() as f64;
        rows.push(vec![
            preset.name.to_string(),
            format!("{:.3}", 0.5 + naive_imbalance / n),
            format!("{:.3}", 0.5 + balanced_imbalance / n),
            format!("{:.1} ms", search_time * 1e3),
        ]);
    }
    print_table(
        "Ablation (Section 4.4): naive midpoint split vs balance-aware split",
        &[
            "Scene",
            "Midpoint split ratio",
            "Balance-aware split ratio",
            "Search time (4 views)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the balance-aware search brings the split ratio close to\n\
         0.55:0.45 or better while adding only ~0.08% to total training time (the search runs\n\
         once per camera before training)."
    );
}
