//! A minimal strict-JSON reader for the perf-trajectory artifacts.
//!
//! CI's regression gate (`bench_diff`) compares the current run's
//! `BENCH_<name>.json` against the previous run's artifact, so gs-bench
//! needs to read the documents it writes — including older artifacts that
//! predate newer report sections. The workspace is std-only, so this is a
//! small recursive-descent parser over the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) rather than a
//! format-specific line scraper: artifacts stay readable even as the
//! report schema grows fields.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers perf metrics).
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not semantically meaningful in the perf
    /// reports, so a sorted map keeps lookups simple.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object (`None` for other node kinds).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The node as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The node as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing content is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: perf labels are ASCII in
                            // practice, but decode them properly anyway.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"bench": "x", "scenarios": [{"a": 1.5, "b": -2e3, "ok": true, "none": null}]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("bench").and_then(JsonValue::as_str), Some("x"));
        let arr = doc.get("scenarios").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].get("a").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(arr[0].get("b").and_then(JsonValue::as_f64), Some(-2000.0));
        assert_eq!(arr[0].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(arr[0].get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn decodes_string_escapes() {
        let doc = parse(r#""a\"b\\c\ndéé""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndéé"));
    }

    #[test]
    fn decodes_unicode_escapes() {
        // BMP escape, a surrogate pair, and a raw multibyte scalar.
        let doc = parse("\"\\u0041 \\ud83d\\ude00 é\"").unwrap();
        assert_eq!(doc.as_str(), Some("A \u{1f600} é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Array(Vec::new()));
    }
}
