//! Deterministic trace replay: drive a captured (or synthesized)
//! [`gs_trace::Trace`] back through a live serving target.
//!
//! The replayer turns each [`TraceEvent`] back into the wire request it was
//! captured from ([`gs_serve::WireRequest::from_trace_event`]) and submits
//! it to a [`ReplayTarget`] — the single-node [`RenderServer`] or the
//! cluster [`Coordinator`] — in one of two modes:
//!
//! * **Closed loop** — `concurrency` workers race through the events in
//!   trace order as fast as the target answers. With `concurrency == 1`
//!   the replay is fully sequential, which makes *every* observable —
//!   per-request frame hashes *and* cache-hit counters — deterministic:
//!   two replays of one trace against identically-built targets agree
//!   bit for bit.
//! * **Open loop** — a dispatcher paces submissions to the trace's own
//!   arrival timestamps (scaled by `speed`), reproducing the captured
//!   workload's temporal shape (diurnal ramps, flash crowds) against the
//!   live target. Frame hashes stay deterministic (rendering is
//!   bit-identical regardless of batching/scheduling); latency and
//!   cache-counter observables become genuine measurements.
//!
//! On top of the replayer sits the SimPoint-style estimate
//! ([`predict_from_phases`]): replay only each phase cluster's
//! representative window and combine the per-window metrics with the
//! cluster weights, reporting how close the cheap weighted replay lands to
//! the full-trace numbers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gs_cluster::{outcome_for_cluster_error, Coordinator};
use gs_serve::{outcome_for_error, RenderServer, WireRequest};
use gs_trace::{Outcome, Phases, Trace, TraceEvent};

/// FNV-1a over a byte slice: the workspace's standard cheap stable hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable fingerprint of a rendered frame: dimensions plus the exact bit
/// pattern of every `f32` sample, so two frames hash equal iff they are
/// bit-identical.
pub fn hash_image(image: &gs_core::image::Image) -> u64 {
    let mut hash = fnv1a(&(image.width() as u64).to_le_bytes());
    hash ^= fnv1a(&(image.height() as u64).to_le_bytes()).rotate_left(17);
    for &v in image.data() {
        hash ^= u64::from(v.to_bits());
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What one replayed request observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayedRequest {
    /// How the target answered, in trace-outcome terms.
    pub outcome: Outcome,
    /// [`hash_image`] of the served frame (0 for error outcomes).
    pub frame_hash: u64,
    /// Submit-to-answer wall time.
    pub latency: Duration,
}

/// Anything a trace can be replayed against.
pub trait ReplayTarget: Sync {
    /// Serves one replayed event and reports what happened.
    fn replay(&self, request: &WireRequest) -> ReplayedRequest;
}

impl ReplayTarget for RenderServer {
    fn replay(&self, request: &WireRequest) -> ReplayedRequest {
        let started = Instant::now();
        match self.render_blocking(request.to_render_request()) {
            Ok(frame) => ReplayedRequest {
                outcome: if frame.cache_hit {
                    Outcome::CacheHit
                } else {
                    Outcome::Completed
                },
                frame_hash: hash_image(&frame.image),
                latency: started.elapsed(),
            },
            Err(e) => ReplayedRequest {
                outcome: outcome_for_error(&e),
                frame_hash: 0,
                latency: started.elapsed(),
            },
        }
    }
}

impl ReplayTarget for Coordinator {
    fn replay(&self, request: &WireRequest) -> ReplayedRequest {
        let started = Instant::now();
        match self.render(request) {
            Ok(frame) => ReplayedRequest {
                outcome: if frame.cache_hit {
                    Outcome::CacheHit
                } else {
                    Outcome::Completed
                },
                frame_hash: hash_image(&frame.image),
                latency: started.elapsed(),
            },
            Err(e) => ReplayedRequest {
                outcome: outcome_for_cluster_error(&e),
                frame_hash: 0,
                latency: started.elapsed(),
            },
        }
    }
}

/// How the replayer submits the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// `concurrency` workers race through the events in trace order.
    ClosedLoop {
        /// Concurrent in-flight requests (1 = sequential, deterministic).
        concurrency: usize,
    },
    /// Submissions are paced to the trace's arrival timestamps.
    OpenLoop {
        /// Time scale: 2.0 replays twice as fast as captured.
        speed: f64,
        /// Worker threads serving the paced arrivals.
        concurrency: usize,
    },
}

/// Replay configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Submission mode.
    pub mode: ReplayMode,
    /// Whether captured `deadline_ms` values are re-armed on replay.
    /// Off by default: replay wall-clock differs from capture wall-clock,
    /// so re-armed deadlines would expire nondeterministically.
    pub honor_deadlines: bool,
}

impl ReplayConfig {
    /// Sequential closed-loop replay — the fully deterministic mode.
    pub fn sequential() -> Self {
        Self {
            mode: ReplayMode::ClosedLoop { concurrency: 1 },
            honor_deadlines: false,
        }
    }

    /// Closed-loop replay with `concurrency` in-flight requests.
    pub fn closed_loop(concurrency: usize) -> Self {
        Self {
            mode: ReplayMode::ClosedLoop {
                concurrency: concurrency.max(1),
            },
            honor_deadlines: false,
        }
    }

    /// Timestamp-faithful open-loop replay at `speed`× capture speed.
    pub fn open_loop(speed: f64, concurrency: usize) -> Self {
        Self {
            mode: ReplayMode::OpenLoop {
                speed: if speed.is_finite() && speed > 0.0 {
                    speed
                } else {
                    1.0
                },
                concurrency: concurrency.max(1),
            },
            honor_deadlines: false,
        }
    }
}

/// What a whole replay observed, indexed in trace order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayReport {
    /// Per-event results, one per replayed [`TraceEvent`], in trace order.
    pub requests: Vec<ReplayedRequest>,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
}

impl ReplayReport {
    /// Number of replayed events.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether nothing was replayed.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// How many requests ended with `outcome`.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.requests
            .iter()
            .filter(|r| r.outcome == outcome)
            .count()
    }

    /// Requests answered with a frame (completed or cache hit).
    pub fn served(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.outcome.is_served())
            .count()
    }

    /// Cache hits over served requests (0 when nothing was served).
    pub fn hit_rate(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            0.0
        } else {
            self.count(Outcome::CacheHit) as f64 / served as f64
        }
    }

    /// One stable fingerprint over every per-request observable the replay
    /// contract promises: outcome tags and frame hashes, in trace order.
    /// Two deterministic replays of one trace must agree on this value.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.requests.len() * 9);
        for r in &self.requests {
            bytes.push(r.outcome.as_u8());
            bytes.extend_from_slice(&r.frame_hash.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// The `q`-quantile of the observed latencies, in milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self
            .requests
            .iter()
            .map(|r| r.latency.as_secs_f64() * 1e3)
            .collect();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }

    /// Replayed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests.len() as f64 / secs
        }
    }
}

/// The wire request an event is replayed as (deadline stripped unless the
/// config re-arms it).
fn request_for(event: &TraceEvent, config: &ReplayConfig) -> WireRequest {
    let mut request = WireRequest::from_trace_event(event);
    if !config.honor_deadlines {
        request.deadline_ms = None;
    }
    request
}

/// Replays `events` (in the given order) against `target`.
pub fn replay_events<T: ReplayTarget + ?Sized>(
    target: &T,
    events: &[TraceEvent],
    config: &ReplayConfig,
) -> ReplayReport {
    let started = Instant::now();
    let requests = match config.mode {
        ReplayMode::ClosedLoop { concurrency } if concurrency <= 1 => events
            .iter()
            .map(|e| target.replay(&request_for(e, config)))
            .collect(),
        ReplayMode::ClosedLoop { concurrency } => {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ReplayedRequest>>> =
                (0..events.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..concurrency.min(events.len().max(1)) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(event) = events.get(i) else { break };
                        *slots[i].lock().unwrap() =
                            Some(target.replay(&request_for(event, config)));
                    });
                }
            });
            collect_slots(slots)
        }
        ReplayMode::OpenLoop { speed, concurrency } => {
            let origin_us = events.first().map_or(0, |e| e.at_us);
            let (tx, rx) = std::sync::mpsc::channel::<usize>();
            let rx = Mutex::new(rx);
            let slots: Vec<Mutex<Option<ReplayedRequest>>> =
                (0..events.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..concurrency.max(1) {
                    scope.spawn(|| loop {
                        // Lock only around recv: holding it through the
                        // render would serialize the pool.
                        let received = rx.lock().unwrap().recv();
                        let Ok(i) = received else { break };
                        *slots[i].lock().unwrap() =
                            Some(target.replay(&request_for(&events[i], config)));
                    });
                }
                let clock = Instant::now();
                for (i, event) in events.iter().enumerate() {
                    let offset_us = (event.at_us - origin_us) as f64 / speed;
                    let due = Duration::from_secs_f64(offset_us / 1e6);
                    if let Some(wait) = due.checked_sub(clock.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    if tx.send(i).is_err() {
                        break;
                    }
                }
                drop(tx);
            });
            collect_slots(slots)
        }
    };
    ReplayReport {
        requests,
        wall: started.elapsed(),
    }
}

/// Replays a whole trace in its arrival order.
pub fn replay<T: ReplayTarget + ?Sized>(
    target: &T,
    trace: &Trace,
    config: &ReplayConfig,
) -> ReplayReport {
    replay_events(target, &trace.events, config)
}

fn collect_slots(slots: Vec<Mutex<Option<ReplayedRequest>>>) -> Vec<ReplayedRequest> {
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every event is assigned to exactly one worker")
        })
        .collect()
}

/// The SimPoint-style estimate: metrics predicted from replaying only each
/// phase cluster's representative window, weighted by the cluster's share
/// of the trace, next to the full-trace measurement and the resulting
/// error.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePrediction {
    /// Weighted hit-rate estimate from the representative windows.
    pub predicted_hit_rate: f64,
    /// Hit rate of the full-trace replay.
    pub full_hit_rate: f64,
    /// Weighted p50 estimate in milliseconds.
    pub predicted_p50_ms: f64,
    /// Full-trace p50 in milliseconds.
    pub full_p50_ms: f64,
    /// Weighted p99 estimate in milliseconds.
    pub predicted_p99_ms: f64,
    /// Full-trace p99 in milliseconds.
    pub full_p99_ms: f64,
    /// Events replayed for the estimate.
    pub replayed_events: usize,
    /// Events in the full trace.
    pub total_events: usize,
}

impl PhasePrediction {
    /// Absolute hit-rate error of the estimate.
    pub fn hit_rate_error(&self) -> f64 {
        (self.predicted_hit_rate - self.full_hit_rate).abs()
    }

    /// Relative p50 error of the estimate (0 when the full p50 is 0).
    pub fn p50_relative_error(&self) -> f64 {
        if self.full_p50_ms <= 0.0 {
            0.0
        } else {
            (self.predicted_p50_ms - self.full_p50_ms).abs() / self.full_p50_ms
        }
    }

    /// Fraction of the trace the estimate had to replay.
    pub fn replay_fraction(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.replayed_events as f64 / self.total_events as f64
        }
    }
}

/// Replays only the phase representatives on `rep_target` (weighted by
/// cluster share) and the full trace on `full_target`, and reports
/// predicted vs. measured hit rate and latency quantiles.
///
/// The two targets should be identically-built fresh instances: the
/// estimate's point is that the representative replay touches a fraction
/// of the trace, so it must not inherit cache state from the full run.
pub fn predict_from_phases<T: ReplayTarget + ?Sized>(
    rep_target: &T,
    full_target: &T,
    trace: &Trace,
    phases: &Phases,
    config: &ReplayConfig,
) -> PhasePrediction {
    let mut predicted_hit_rate = 0.0;
    let mut predicted_p50_ms = 0.0;
    let mut predicted_p99_ms = 0.0;
    let mut replayed_events = 0;
    for rep in &phases.representatives {
        let events = phases.events(trace, rep);
        let report = replay_events(rep_target, events, config);
        predicted_hit_rate += rep.weight * report.hit_rate();
        predicted_p50_ms += rep.weight * report.latency_ms(0.50);
        predicted_p99_ms += rep.weight * report.latency_ms(0.99);
        replayed_events += events.len();
    }
    let full = replay(full_target, trace, config);
    PhasePrediction {
        predicted_hit_rate,
        full_hit_rate: full.hit_rate(),
        predicted_p50_ms,
        full_p50_ms: full.latency_ms(0.50),
        predicted_p99_ms,
        full_p99_ms: full.latency_ms(0.99),
        replayed_events,
        total_events: trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_and_image_hash_are_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        let mut a = gs_core::image::Image::zeros(4, 3);
        let b = gs_core::image::Image::zeros(4, 3);
        assert_eq!(hash_image(&a), hash_image(&b));
        a.data_mut()[5] = f32::MIN_POSITIVE; // one-ulp-class change flips the hash
        assert_ne!(hash_image(&a), hash_image(&b));
        // Same sample count, different shape.
        assert_ne!(
            hash_image(&gs_core::image::Image::zeros(6, 2)),
            hash_image(&gs_core::image::Image::zeros(2, 6))
        );
    }

    #[test]
    fn report_metrics_aggregate_outcomes() {
        let req = |outcome, hash, ms| ReplayedRequest {
            outcome,
            frame_hash: hash,
            latency: Duration::from_millis(ms),
        };
        let report = ReplayReport {
            requests: vec![
                req(Outcome::Completed, 1, 10),
                req(Outcome::CacheHit, 1, 1),
                req(Outcome::CacheHit, 1, 1),
                req(Outcome::Error, 0, 2),
            ],
            wall: Duration::from_secs(2),
        };
        assert_eq!(report.served(), 3);
        assert!((report.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.count(Outcome::Error), 1);
        assert!((report.throughput_rps() - 2.0).abs() < 1e-12);
        assert!(report.latency_ms(0.0) <= report.latency_ms(1.0));
        let mut reordered = report.clone();
        reordered.requests.swap(0, 3);
        assert_ne!(report.fingerprint(), reordered.fingerprint());
    }
}
