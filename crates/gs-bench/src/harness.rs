//! Shared machinery for the figure/table reproduction binaries.

use gs_core::error::Result;
use gs_core::gaussian::GaussianParams;
use gs_core::scene::init_gaussians_from_point_cloud;
use gs_metrics::QualityReport;
use gs_platform::PlatformSpec;
use gs_scene::{SceneDataset, ScenePreset};
use gs_train::{
    train, GpuOnlyTrainer, OffloadOptions, OffloadTrainer, RunStats, SystemKind, TrainConfig,
    Trainer,
};

/// How large the runnable (functional) version of each experiment is.
///
/// The paper's scenes hold tens of millions of Gaussians; the functional
/// pipeline here runs on a CPU, so experiments are executed at a reduced
/// scale. Relative comparisons (who wins, by how much, where crossovers sit)
/// are preserved; absolute magnitudes at paper scale come from the analytic
/// memory/timing models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Fraction of the paper's Gaussian count to instantiate.
    pub gaussian_scale: f64,
    /// Number of training iterations to run.
    pub iterations: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Quick settings used by default (a few seconds per run).
    pub fn quick() -> Self {
        Self {
            gaussian_scale: 6.0e-5,
            iterations: 24,
            seed: 17,
        }
    }

    /// Larger settings selected with `--full` on the binaries.
    pub fn full() -> Self {
        Self {
            gaussian_scale: 2.5e-4,
            iterations: 120,
            seed: 17,
        }
    }

    /// Reads the scale from the process arguments (`--full` selects
    /// [`ExperimentScale::full`], `--seed <n>` overrides the seed).
    pub fn from_args() -> Self {
        Self::from_bench_args(&BenchArgs::parse())
    }

    /// The scale the shared [`BenchArgs`] select.
    pub fn from_bench_args(args: &BenchArgs) -> Self {
        let mut scale = if args.full {
            Self::full()
        } else {
            Self::quick()
        };
        if let Some(seed) = args.seed {
            scale.seed = seed;
        }
        scale
    }
}

/// The command-line arguments every benchmark binary shares, replacing the
/// ad-hoc per-binary `std::env::args().any(..)` scans:
///
/// * `--full` — run the larger workload instead of the CI-sized one.
/// * `--seed <n>` — override the deterministic seed.
/// * `--out <path>` — write the machine-readable perf report
///   ([`crate::perf::BenchReport`]) to `<path>` (by convention
///   `BENCH_<name>.json`).
///
/// Unknown arguments are ignored so binaries can keep private flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchArgs {
    /// `--full` was passed.
    pub full: bool,
    /// The `--seed` override, if any.
    pub seed: Option<u64>,
    /// The `--out` report path, if any.
    pub out: Option<std::path::PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests, wrappers).
    pub fn parse_from<I>(args: I) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => parsed.full = true,
                "--seed" => parsed.seed = args.next().and_then(|v| v.parse().ok()),
                "--out" => parsed.out = args.next().map(Into::into),
                _ => {}
            }
        }
        parsed
    }
}

/// Builds the runnable synthetic scene for a paper preset.
pub fn build_scene(preset: &ScenePreset, scale: &ExperimentScale) -> SceneDataset {
    SceneDataset::from_preset(preset, scale.gaussian_scale, scale.seed)
}

/// Initial Gaussians for a scene (from its SfM-like point cloud).
pub fn initial_params(scene: &SceneDataset) -> GaussianParams {
    init_gaussians_from_point_cloud(&scene.init_cloud, 0.3)
}

/// Maps a [`SystemKind`] to offloading options (GPU-only is handled
/// separately).
pub fn build_offload_options(kind: SystemKind) -> Option<OffloadOptions> {
    match kind {
        SystemKind::GpuOnly => None,
        other => Some(OffloadOptions::for_system(other)),
    }
}

/// Trains `kind` on `scene` for the configured number of iterations and
/// returns the run statistics.
///
/// # Errors
///
/// Propagates out-of-memory errors (the GPU-only system on large scenes).
pub fn measure_run(
    kind: SystemKind,
    platform: &PlatformSpec,
    scene: &SceneDataset,
    config: &TrainConfig,
    scale: &ExperimentScale,
) -> Result<RunStats> {
    let init = initial_params(scene);
    let extent = scene.scene_extent();
    let outcome = match build_offload_options(kind) {
        None => {
            let mut trainer = GpuOnlyTrainer::new(config.clone(), platform.clone(), init, extent)?;
            train(&mut trainer, scene, scale.iterations, false)?
        }
        Some(options) => {
            let mut trainer =
                OffloadTrainer::new(config.clone(), options, platform.clone(), init, extent)?;
            train(&mut trainer, scene, scale.iterations, false)?
        }
    };
    Ok(outcome.run)
}

/// Trains `kind` on `scene` and evaluates rendering quality on the test
/// views.
///
/// # Errors
///
/// Propagates out-of-memory errors.
pub fn quality_after_training(
    kind: SystemKind,
    platform: &PlatformSpec,
    scene: &SceneDataset,
    config: &TrainConfig,
    iterations: usize,
) -> Result<(QualityReport, usize)> {
    let init = initial_params(scene);
    let extent = scene.scene_extent();
    let (outcome, final_n) = match build_offload_options(kind) {
        None => {
            let mut trainer = GpuOnlyTrainer::new(config.clone(), platform.clone(), init, extent)?;
            let o = train(&mut trainer, scene, iterations, true)?;
            (o, trainer.num_gaussians())
        }
        Some(options) => {
            let mut trainer =
                OffloadTrainer::new(config.clone(), options, platform.clone(), init, extent)?;
            let o = train(&mut trainer, scene, iterations, true)?;
            (o, trainer.num_gaussians())
        }
    };
    Ok((outcome.quality.expect("evaluation requested"), final_n))
}

/// Prints a fixed-width table with a title, header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats bytes as gigabytes with two decimals.
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1.0e9)
}

/// Formats a ratio with two decimals and a trailing `x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_builds_small_scenes() {
        let scale = ExperimentScale::quick();
        let scene = build_scene(&ScenePreset::RUBBLE, &scale);
        assert!(scene.num_gaussians() >= 64);
        assert!(scene.num_gaussians() < 10_000);
        let init = initial_params(&scene);
        assert!(!init.is_empty());
    }

    #[test]
    fn measure_run_produces_timing_for_every_system() {
        let scale = ExperimentScale {
            gaussian_scale: 2.0e-5,
            iterations: 3,
            seed: 5,
        };
        let scene = build_scene(&ScenePreset::SZIIT, &scale);
        let platform = PlatformSpec::laptop_rtx4070m();
        let config = TrainConfig::fast_test(scale.iterations);
        for kind in SystemKind::ALL {
            let run = measure_run(kind, &platform, &scene, &config, &scale).unwrap();
            assert_eq!(run.iterations.len(), 3, "{kind:?}");
            assert!(run.total_sim_time() > 0.0);
        }
    }

    #[test]
    fn formatting_helpers_are_stable() {
        assert_eq!(fmt_gb(2_000_000_000), "2.00");
        assert_eq!(fmt_ratio(3.456), "3.46x");
    }

    #[test]
    fn bench_args_parse_the_shared_flags() {
        let args = |list: &[&str]| BenchArgs::parse_from(list.iter().map(|s| s.to_string()));
        assert_eq!(args(&[]), BenchArgs::default());
        let parsed = args(&[
            "--full",
            "--seed",
            "42",
            "--out",
            "BENCH_x.json",
            "--mystery",
        ]);
        assert!(parsed.full);
        assert_eq!(parsed.seed, Some(42));
        assert_eq!(
            parsed.out.as_deref(),
            Some(std::path::Path::new("BENCH_x.json"))
        );
        // A missing or malformed value degrades to None, not a panic.
        assert_eq!(args(&["--seed"]).seed, None);
        assert_eq!(args(&["--seed", "nope"]).seed, None);
        // --seed overrides only the seed; --full picks the larger scale.
        let scale = ExperimentScale::from_bench_args(&args(&["--seed", "9"]));
        assert_eq!(scale.seed, 9);
        assert_eq!(scale.iterations, ExperimentScale::quick().iterations);
    }
}
