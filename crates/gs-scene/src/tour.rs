//! Corridor ("tour") scenes for the scene-sharding workload.
//!
//! A tour scene stretches along the `x` axis — a street canyon, a tunnel, a
//! fly-through of a large reconstruction — and its cameras travel along the
//! corridor looking **exactly down `+x`**. That geometry is what makes these
//! the reference workload for sharded serving:
//!
//! * The corridor's long axis dominates, so the recursive axis-median
//!   partitioner (`gs_serve::shard`) always splits on `x`, producing
//!   disjoint slabs along the corridor.
//! * With the camera forward vector exactly `+x`, a Gaussian's camera-space
//!   depth equals its `x` offset, so the slabs' **depth ranges are disjoint
//!   along every view ray** — the regime where the front-to-back layer
//!   composite is bit-identical to the unsharded render (not merely close).
//!
//! The generator is deterministic in the seed, like [`crate::synthetic`].

use gs_core::camera::Camera;
use gs_core::gaussian::GaussianParams;
use gs_core::math::Vec3;
use gs_core::rng::Rng64;

/// Configuration of a [`TourScene`].
#[derive(Debug, Clone, PartialEq)]
pub struct TourConfig {
    /// Scene name (for reports).
    pub name: String,
    /// Number of Gaussians along the corridor.
    pub num_gaussians: usize,
    /// Corridor length along `x` (world units).
    pub length: f32,
    /// Half-extent of the corridor cross-section in `y` and `z`.
    pub half_section: f32,
    /// Rendered image width in pixels.
    pub width: usize,
    /// Rendered image height in pixels.
    pub height: usize,
    /// Number of tour cameras along the corridor.
    pub num_views: usize,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TourConfig {
    fn default() -> Self {
        Self {
            name: "tour".to_string(),
            num_gaussians: 4096,
            length: 80.0,
            half_section: 4.0,
            width: 96,
            height: 72,
            num_views: 12,
            seed: 7,
        }
    }
}

/// A generated corridor scene: Gaussians plus a camera path down the axis.
#[derive(Debug, Clone)]
pub struct TourScene {
    /// The configuration the scene was generated from.
    pub config: TourConfig,
    /// Ground-truth Gaussians.
    pub gt_params: GaussianParams,
    /// Cameras along the corridor, all looking exactly down `+x`.
    pub cameras: Vec<Camera>,
    /// Background color composited behind the splats.
    pub background: [f32; 3],
}

/// Horizontal field of view of the tour cameras (radians).
const FOV_X: f32 = 1.2;

impl TourScene {
    /// Generates a tour scene. Deterministic in the seed.
    pub fn generate(config: TourConfig) -> Self {
        let mut rng = Rng64::seed_from_u64(config.seed);
        let mut gt_params = GaussianParams::with_capacity(config.num_gaussians);
        let h = config.half_section;
        // Scale so neighbors overlap along the corridor: average spacing is
        // length / n along x, but the cross-section dominates visually.
        let spacing = (config.length * h * h / config.num_gaussians.max(1) as f32)
            .cbrt()
            .max(0.05);
        for _ in 0..config.num_gaussians {
            let pos = Vec3::new(
                rng.gen_range(0.0..config.length),
                rng.gen_range(-h..h),
                rng.gen_range(-h..h),
            );
            let along = pos.x / config.length;
            // Smoothly varying hue along the corridor plus noise, so shard
            // boundaries would be visible if compositing misordered them.
            let rgb = [
                (0.25 + 0.7 * (along * 9.0).sin().abs() + rng.gen_range(-0.1..0.1))
                    .clamp(0.02, 0.98),
                (0.3 + 0.6 * (along * 5.0).cos().abs() + rng.gen_range(-0.1..0.1))
                    .clamp(0.02, 0.98),
                (0.35 + 0.5 * along + rng.gen_range(-0.1..0.1)).clamp(0.02, 0.98),
            ];
            gt_params.push_isotropic(
                pos,
                spacing * rng.gen_range(0.5..1.2),
                rgb,
                rng.gen_range(0.35..0.9),
            );
        }
        let cameras = (0..config.num_views)
            .map(|v| {
                // Positions march down the corridor (starting slightly
                // before it) with small cross-section jitter; the forward
                // vector stays exactly +x so camera-space depth == x offset.
                let t = v as f32 / config.num_views.max(1) as f32;
                let pos = Vec3::new(
                    -4.0 + t * config.length * 0.8,
                    rng.gen_range(-h * 0.4..h * 0.4),
                    rng.gen_range(-h * 0.4..h * 0.4),
                );
                Camera::look_at(
                    config.width,
                    config.height,
                    FOV_X,
                    pos,
                    pos + Vec3::new(1.0, 0.0, 0.0),
                    Vec3::new(0.0, 1.0, 0.0),
                )
            })
            .collect();
        Self {
            config,
            gt_params,
            cameras,
            background: [0.04, 0.04, 0.07],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = TourScene::generate(TourConfig::default());
        let b = TourScene::generate(TourConfig::default());
        assert_eq!(a.gt_params, b.gt_params);
        assert_eq!(a.gt_params.len(), 4096);
        assert_eq!(a.cameras.len(), 12);
        let c = TourScene::generate(TourConfig {
            seed: 8,
            ..TourConfig::default()
        });
        assert_ne!(a.gt_params, c.gt_params);
    }

    #[test]
    fn cameras_look_exactly_down_the_corridor() {
        let scene = TourScene::generate(TourConfig::default());
        for cam in &scene.cameras {
            // Forward = +x means camera-space depth of a point equals its x
            // offset from the camera — the depth-disjointness guarantee.
            let probe = cam.position + Vec3::new(5.0, 1.0, -1.0);
            let in_cam = cam.world_to_cam(probe);
            assert!(
                (in_cam.z - 5.0).abs() < 1e-5,
                "depth must equal the x offset, got {}",
                in_cam.z
            );
        }
    }

    #[test]
    fn gaussians_stay_inside_the_corridor() {
        let config = TourConfig {
            length: 40.0,
            half_section: 2.0,
            num_gaussians: 500,
            ..TourConfig::default()
        };
        let scene = TourScene::generate(config);
        for i in 0..scene.gt_params.len() {
            let m = scene.gt_params.mean(i);
            assert!((0.0..=40.0).contains(&m.x));
            assert!(m.y.abs() <= 2.0 && m.z.abs() <= 2.0);
        }
    }
}
