//! Procedural generation of city-like scenes with controllable per-view
//! active-Gaussian ratios.
//!
//! A scene is a flat terrain of colored "ground" Gaussians plus clustered
//! "building" stacks, spread over a square extent. Cameras fly over the
//! scene looking down; their altitude is chosen so that the viewing frustum
//! covers approximately `target_active_ratio` of the scene area, which makes
//! the measured active ratio (Figure 4) track the paper's per-scene values.
//! A small fraction of views is placed much higher ("far viewpoints") to
//! reproduce the peak-memory outliers that motivate balance-aware image
//! splitting (Section 4.4).

use gs_core::camera::Camera;
use gs_core::gaussian::GaussianParams;
use gs_core::image::Image;
use gs_core::math::{Quat, Vec3};
use gs_core::rng::Rng64;
use gs_core::scene::PointCloud;
use gs_render::pipeline::render_image;

/// Parameters controlling synthetic scene generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Scene name (usually the preset name).
    pub name: String,
    /// Number of ground-truth Gaussians to generate.
    pub num_gaussians: usize,
    /// Number of points in the SfM-like initial point cloud.
    pub init_points: usize,
    /// Training image width in pixels.
    pub width: usize,
    /// Training image height in pixels.
    pub height: usize,
    /// Number of training views.
    pub num_train_views: usize,
    /// Number of held-out test views.
    pub num_test_views: usize,
    /// Desired average ratio of active to total Gaussians per view.
    pub target_active_ratio: f64,
    /// Side length of the square scene footprint (world units).
    pub extent: f32,
    /// Fraction of training views placed at a much higher altitude (these
    /// produce the worst-case active counts that trigger image splitting).
    pub far_view_fraction: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".to_string(),
            num_gaussians: 4096,
            init_points: 1024,
            width: 128,
            height: 96,
            num_train_views: 16,
            num_test_views: 4,
            target_active_ratio: 0.1,
            extent: 100.0,
            far_view_fraction: 0.08,
            seed: 42,
        }
    }
}

/// A generated scene: reference Gaussians, an initialization point cloud and
/// camera trajectories.
#[derive(Debug, Clone)]
pub struct SceneDataset {
    /// The configuration the scene was generated from.
    pub config: SceneConfig,
    /// Ground-truth Gaussians used to render training/test images.
    pub gt_params: GaussianParams,
    /// SfM-like sparse point cloud used to initialize training.
    pub init_cloud: PointCloud,
    /// Training cameras.
    pub train_cameras: Vec<Camera>,
    /// Held-out test cameras.
    pub test_cameras: Vec<Camera>,
    /// Background color composited behind the splats.
    pub background: [f32; 3],
}

/// Horizontal field of view used by all synthetic cameras (radians).
const FOV_X: f32 = std::f32::consts::FRAC_PI_3; // 60 degrees

impl SceneDataset {
    /// Generates a scene from a configuration. Deterministic in the seed.
    pub fn generate(config: SceneConfig) -> Self {
        let mut rng = Rng64::seed_from_u64(config.seed);
        let gt_params = generate_gaussians(&config, &mut rng);
        let init_cloud = subsample_cloud(&gt_params, config.init_points, &mut rng);
        let altitude = calibrate_altitude(&config, &gt_params);
        let (train_cameras, test_cameras) = generate_cameras(&config, altitude, &mut rng);
        Self {
            config,
            gt_params,
            init_cloud,
            train_cameras,
            test_cameras,
            background: [0.05, 0.05, 0.08],
        }
    }

    /// Generates a scene from a paper preset at the given scale.
    pub fn from_preset(preset: &crate::presets::ScenePreset, scale: f64, seed: u64) -> Self {
        Self::generate(preset.to_config(scale, seed))
    }

    /// Renders the ground-truth image for a camera from the reference
    /// Gaussians (degree-3 SH).
    pub fn ground_truth(&self, cam: &Camera) -> Image {
        render_image(&self.gt_params, cam, 3, self.background)
    }

    /// A characteristic scene extent (used to scale the position learning
    /// rate, as 3DGS does).
    pub fn scene_extent(&self) -> f32 {
        self.config.extent
    }

    /// Total number of ground-truth Gaussians.
    pub fn num_gaussians(&self) -> usize {
        self.gt_params.len()
    }
}

fn generate_gaussians(config: &SceneConfig, rng: &mut Rng64) -> GaussianParams {
    let n = config.num_gaussians;
    let extent = config.extent;
    let half = extent / 2.0;
    // Roughly 70% ground carpet, 30% building clusters.
    let n_ground = (n as f64 * 0.7) as usize;
    let n_buildings = n - n_ground;
    let n_clusters = (n_buildings / 40).clamp(1, 256);

    // Scale Gaussians so neighbors overlap: spacing ~ extent / sqrt(n_ground).
    let spacing = extent / (n_ground.max(1) as f32).sqrt();
    let mut params = GaussianParams::with_capacity(n);

    // Ground carpet on a jittered grid.
    let grid = (n_ground as f32).sqrt().ceil() as usize;
    let mut placed = 0;
    'outer: for gy in 0..grid {
        for gx in 0..grid {
            if placed >= n_ground {
                break 'outer;
            }
            let x = -half + (gx as f32 + rng.gen_range(0.2..0.8)) / grid as f32 * extent;
            let y = -half + (gy as f32 + rng.gen_range(0.2..0.8)) / grid as f32 * extent;
            let z = rng.gen_range(-0.3..0.3) * spacing;
            // Smoothly varying terrain color with a little noise.
            let hue = 0.5 + 0.5 * ((x * 0.05).sin() * (y * 0.07).cos());
            let rgb = [
                0.25 + 0.3 * hue + rng.gen_range(-0.05..0.05),
                0.35 + 0.25 * (1.0 - hue) + rng.gen_range(-0.05..0.05),
                0.2 + 0.1 * hue,
            ];
            params.push_isotropic(
                Vec3::new(x, y, z),
                spacing * rng.gen_range(0.6..1.1),
                [
                    rgb[0].clamp(0.02, 0.98),
                    rgb[1].clamp(0.02, 0.98),
                    rgb[2].clamp(0.02, 0.98),
                ],
                rng.gen_range(0.55..0.9),
            );
            // Make some ground Gaussians anisotropic and rotated so every
            // parameter group matters during training.
            let i = params.len() - 1;
            if i.is_multiple_of(3) {
                let ls = params.log_scale(i);
                params.set_log_scale(
                    i,
                    Vec3::new(ls.x + 0.4, ls.y - 0.3, ls.z + rng.gen_range(-0.2..0.2)),
                );
                let axis = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
                .normalized();
                params.set_quat(i, Quat::from_axis_angle(axis, rng.gen_range(0.0..1.5)));
            }
            placed += 1;
        }
    }

    // Building clusters: vertical stacks of larger Gaussians.
    let per_cluster = (n_buildings / n_clusters).max(1);
    for _ in 0..n_clusters {
        let cx = rng.gen_range(-half * 0.9..half * 0.9);
        let cy = rng.gen_range(-half * 0.9..half * 0.9);
        let height = rng.gen_range(2.0..8.0) * spacing;
        let cluster_color: [f32; 3] = [
            rng.gen_range(0.3..0.9),
            rng.gen_range(0.3..0.9),
            rng.gen_range(0.3..0.9),
        ];
        for _ in 0..per_cluster {
            if params.len() >= n {
                break;
            }
            let dx = rng.gen_range(-1.5..1.5) * spacing;
            let dy = rng.gen_range(-1.5..1.5) * spacing;
            let dz = -rng.gen_range(0.0..1.0) * height; // up is -z for fly-over cams
            params.push_isotropic(
                Vec3::new(cx + dx, cy + dy, dz),
                spacing * rng.gen_range(0.8..1.6),
                [
                    (cluster_color[0] + rng.gen_range(-0.08..0.08)).clamp(0.02, 0.98),
                    (cluster_color[1] + rng.gen_range(-0.08..0.08)).clamp(0.02, 0.98),
                    (cluster_color[2] + rng.gen_range(-0.08..0.08)).clamp(0.02, 0.98),
                ],
                rng.gen_range(0.6..0.95),
            );
        }
    }
    // Top up any shortfall from rounding.
    while params.len() < n {
        let x = rng.gen_range(-half..half);
        let y = rng.gen_range(-half..half);
        params.push_isotropic(Vec3::new(x, y, 0.0), spacing, [0.5, 0.5, 0.5], 0.7);
    }
    params
}

fn subsample_cloud(gt: &GaussianParams, count: usize, rng: &mut Rng64) -> PointCloud {
    let mut cloud = PointCloud::new();
    let n = gt.len();
    if n == 0 {
        return cloud;
    }
    let count = count.min(n).max(1);
    let stride = (n / count).max(1);
    for i in (0..n).step_by(stride).take(count) {
        let mean = gt.mean(i);
        let noise = Vec3::new(
            rng.gen_range(-0.5..0.5),
            rng.gen_range(-0.5..0.5),
            rng.gen_range(-0.5..0.5),
        ) * gt.scale(i).max_elem();
        let sh0 = gt.sh_triples(i, 0)[0];
        let rgb = [
            (sh0[0] * gs_core::gaussian::SH_DC + 0.5 + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
            (sh0[1] * gs_core::gaussian::SH_DC + 0.5 + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
            (sh0[2] * gs_core::gaussian::SH_DC + 0.5 + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
        ];
        cloud.push(mean + noise, rgb);
    }
    cloud
}

fn camera_altitude(config: &SceneConfig) -> f32 {
    // Frustum footprint at altitude h: (2 h tan(fovx/2)) x (2 h tan(fovy/2)).
    // Choose h so the footprint covers target_active_ratio of extent^2.
    let tan_x = (FOV_X / 2.0).tan();
    let tan_y = tan_x * config.height as f32 / config.width as f32;
    let target_area = config.target_active_ratio as f32 * config.extent * config.extent;
    (target_area / (4.0 * tan_x * tan_y)).sqrt().max(1.0)
}

/// Refines the analytic altitude so that the *measured* active ratio of a
/// representative straight-down view matches the target.
///
/// The analytic footprint formula ignores the conservative culling margins,
/// which matter at the small Gaussian counts the runnable scenes use (each
/// Gaussian's screen-space radius is a non-negligible fraction of the image).
/// A short bisection over the altitude closes that gap so Figure 4's per-scene
/// ratios carry over to the generated scenes.
fn calibrate_altitude(config: &SceneConfig, params: &GaussianParams) -> f32 {
    use gs_core::camera::Viewport;
    use gs_render::culling::frustum_cull;

    let measure = |altitude: f32| -> f64 {
        let cam = Camera::look_at(
            config.width,
            config.height,
            FOV_X,
            Vec3::new(0.0, 0.0, -altitude),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        frustum_cull(params, &cam, &Viewport::full(&cam)).active_ratio()
    };

    let analytic = camera_altitude(config);
    let mut lo = analytic * 0.1;
    let mut hi = analytic * 2.0;
    // The ratio decreases monotonically as the camera descends, so bisect.
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if measure(mid) > config.target_active_ratio {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn generate_cameras(
    config: &SceneConfig,
    altitude: f32,
    rng: &mut Rng64,
) -> (Vec<Camera>, Vec<Camera>) {
    let h = altitude;
    let half = config.extent / 2.0;
    let total = config.num_train_views + config.num_test_views;
    let mut cams = Vec::with_capacity(total);
    let n_far = ((total as f64 * config.far_view_fraction).round() as usize).min(total);

    for k in 0..total {
        // Serpentine fly-over covering the whole extent.
        let t = k as f32 / total.max(1) as f32;
        let rows = 4.0;
        let row = (t * rows).floor();
        let along = (t * rows).fract();
        let x = -half * 0.85 + (row / (rows - 1.0)) * config.extent * 0.85;
        let y = if row as i32 % 2 == 0 {
            -half * 0.85 + along * config.extent * 0.85
        } else {
            half * 0.85 - along * config.extent * 0.85
        };
        let is_far = k < n_far;
        let altitude = if is_far { h * 2.5 } else { h };
        let position = Vec3::new(x, y, -altitude);
        // Look mostly straight down with a small random tilt.
        let target = Vec3::new(
            x + rng.gen_range(-0.15..0.15) * config.extent,
            y + rng.gen_range(-0.15..0.15) * config.extent,
            0.0,
        );
        cams.push(Camera::look_at(
            config.width,
            config.height,
            FOV_X,
            position,
            target,
            Vec3::new(0.0, 1.0, 0.0),
        ));
    }
    let test = cams.split_off(config.num_train_views.min(cams.len()));
    (cams, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ScenePreset;
    use gs_core::camera::Viewport;
    use gs_render::culling::{average_active_ratio, frustum_cull};

    fn small_config() -> SceneConfig {
        SceneConfig {
            num_gaussians: 2000,
            init_points: 400,
            width: 96,
            height: 72,
            num_train_views: 12,
            num_test_views: 3,
            target_active_ratio: 0.12,
            ..SceneConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = SceneDataset::generate(small_config());
        let b = SceneDataset::generate(small_config());
        assert_eq!(a.gt_params, b.gt_params);
        assert_eq!(a.init_cloud, b.init_cloud);
        let mut c_cfg = small_config();
        c_cfg.seed = 43;
        let c = SceneDataset::generate(c_cfg);
        assert_ne!(a.gt_params, c.gt_params);
    }

    #[test]
    fn counts_match_configuration() {
        let scene = SceneDataset::generate(small_config());
        assert_eq!(scene.num_gaussians(), 2000);
        assert_eq!(scene.train_cameras.len(), 12);
        assert_eq!(scene.test_cameras.len(), 3);
        assert!(scene.init_cloud.len() <= 400 && scene.init_cloud.len() > 200);
    }

    #[test]
    fn measured_active_ratio_tracks_target() {
        let scene = SceneDataset::generate(small_config());
        let ratio = average_active_ratio(&scene.gt_params, &scene.train_cameras);
        assert!(
            ratio > 0.04 && ratio < 0.4,
            "measured active ratio {ratio} should be in the same regime as the 0.12 target"
        );
    }

    #[test]
    fn lower_target_ratio_gives_lower_measured_ratio() {
        let mut low_cfg = small_config();
        low_cfg.target_active_ratio = 0.15;
        low_cfg.far_view_fraction = 0.0;
        let mut high_cfg = small_config();
        high_cfg.target_active_ratio = 0.45;
        high_cfg.far_view_fraction = 0.0;
        let low = SceneDataset::generate(low_cfg);
        let high = SceneDataset::generate(high_cfg);
        let r_low = average_active_ratio(&low.gt_params, &low.train_cameras);
        let r_high = average_active_ratio(&high.gt_params, &high.train_cameras);
        assert!(r_low < r_high, "low {r_low} vs high {r_high}");
    }

    #[test]
    fn far_views_activate_more_gaussians() {
        let mut cfg = small_config();
        cfg.far_view_fraction = 0.1;
        let scene = SceneDataset::generate(cfg);
        // The first training view is a far view by construction.
        let far_cam = &scene.train_cameras[0];
        let near_cam = &scene.train_cameras[scene.train_cameras.len() - 1];
        let far = frustum_cull(&scene.gt_params, far_cam, &Viewport::full(far_cam)).num_active();
        let near = frustum_cull(&scene.gt_params, near_cam, &Viewport::full(near_cam)).num_active();
        assert!(
            far > near,
            "far view {far} should see more than near view {near}"
        );
    }

    #[test]
    fn ground_truth_images_have_content() {
        let scene = SceneDataset::generate(small_config());
        let img = scene.ground_truth(&scene.train_cameras[3]);
        assert_eq!(img.width(), 96);
        assert_eq!(img.height(), 72);
        // The scene should cover a good part of the image with non-background
        // content.
        let bg_luma = 0.299 * 0.05 + 0.587 * 0.05 + 0.114 * 0.08;
        let lit = img
            .to_luma()
            .iter()
            .filter(|&&l| (l - bg_luma).abs() > 0.02)
            .count();
        assert!(
            lit as f64 > 0.3 * img.num_pixels() as f64,
            "only {lit} of {} pixels are lit",
            img.num_pixels()
        );
    }

    #[test]
    fn preset_generation_runs_at_small_scale() {
        let scene = SceneDataset::from_preset(&ScenePreset::RUBBLE, 5e-5, 11);
        assert_eq!(scene.config.name, "Rubble");
        assert_eq!(scene.num_gaussians(), 2000);
        assert!((scene.config.target_active_ratio - 0.126).abs() < 1e-9);
    }
}
