//! Synthetic large-scene datasets standing in for the paper's benchmarks.
//!
//! The paper trains on Mill-19 (Rubble, Building), GauU-Scene (LFLS, SZIIT,
//! SZTU) and MatrixCity (Aerial) — multi-gigabyte photo collections that are
//! not available offline. What GS-Scale's behaviour actually depends on is
//! captured by a handful of scene statistics: the total number of Gaussians,
//! the per-view ratio of active (in-frustum) to total Gaussians (Figure 4),
//! and the training image resolution (Table 2). The generators in this crate
//! synthesize city-like scenes that match those statistics at a configurable
//! scale, and render ground-truth images from a reference Gaussian set so
//! that training has a realizable optimum.
//!
//! * [`presets`] — the six benchmark scenes as data (resolution, active
//!   ratio, paper-scale Gaussian count) plus "small" variants.
//! * [`synthetic`] — the procedural scene generator and the
//!   [`synthetic::SceneDataset`] container (ground-truth Gaussians, SfM-like
//!   initial point cloud, train/test camera trajectories).
//! * [`tour`] — corridor scenes with axis-aligned fly-through cameras, the
//!   reference workload for sharded serving (their axis-median shards have
//!   disjoint depth ranges along every view ray).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod presets;
pub mod synthetic;
pub mod tour;

pub use presets::ScenePreset;
pub use synthetic::{SceneConfig, SceneDataset};
pub use tour::{TourConfig, TourScene};
