//! The paper's benchmark scenes as data (Table 2 and Figure 4).

use crate::synthetic::SceneConfig;

/// Whether a benchmark scene is captured from the real world or synthetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneKind {
    /// Real-world outdoor capture (Mill-19, GauU-Scene).
    RealWorldOutdoor,
    /// Synthetic city rendering (MatrixCity).
    Synthetic,
}

/// Static description of one benchmark scene from the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenePreset {
    /// Scene name as used in the paper (e.g. "Rubble").
    pub name: &'static str,
    /// Source dataset (e.g. "Mill-19").
    pub dataset: &'static str,
    /// Training image width in pixels (after the paper's downsampling).
    pub width: usize,
    /// Training image height in pixels.
    pub height: usize,
    /// Scene kind.
    pub kind: SceneKind,
    /// Average ratio of active (in-frustum) to total Gaussians, from
    /// Figure 4 of the paper.
    pub active_ratio: f64,
    /// Approximate number of Gaussians at the paper's full-quality scale.
    pub paper_gaussians: usize,
    /// Number of Gaussians for the "small" downsized variant used in the
    /// throughput comparison (Figure 11), chosen to fit GPU-only training.
    pub paper_gaussians_small: usize,
}

impl ScenePreset {
    /// Rubble (Mill-19): 1152x864 after 4x downsampling, 12.6 % active.
    pub const RUBBLE: ScenePreset = ScenePreset {
        name: "Rubble",
        dataset: "Mill-19",
        width: 1152,
        height: 864,
        kind: SceneKind::RealWorldOutdoor,
        active_ratio: 0.126,
        paper_gaussians: 40_000_000,
        paper_gaussians_small: 8_000_000,
    };

    /// Building (Mill-19): 1152x864, 10.6 % active.
    pub const BUILDING: ScenePreset = ScenePreset {
        name: "Building",
        dataset: "Mill-19",
        width: 1152,
        height: 864,
        kind: SceneKind::RealWorldOutdoor,
        active_ratio: 0.106,
        paper_gaussians: 26_000_000,
        paper_gaussians_small: 8_000_000,
    };

    /// LFLS (GauU-Scene): 1600x1064, 6.4 % active.
    pub const LFLS: ScenePreset = ScenePreset {
        name: "LFLS",
        dataset: "GauU-Scene",
        width: 1600,
        height: 1064,
        kind: SceneKind::RealWorldOutdoor,
        active_ratio: 0.064,
        paper_gaussians: 24_000_000,
        paper_gaussians_small: 7_000_000,
    };

    /// SZIIT (GauU-Scene): 1600x1064, 8.9 % active.
    pub const SZIIT: ScenePreset = ScenePreset {
        name: "SZIIT",
        dataset: "GauU-Scene",
        width: 1600,
        height: 1064,
        kind: SceneKind::RealWorldOutdoor,
        active_ratio: 0.089,
        paper_gaussians: 20_000_000,
        paper_gaussians_small: 7_000_000,
    };

    /// SZTU (GauU-Scene): 1600x1064, 8.9 % active.
    pub const SZTU: ScenePreset = ScenePreset {
        name: "SZTU",
        dataset: "GauU-Scene",
        width: 1600,
        height: 1064,
        kind: SceneKind::RealWorldOutdoor,
        active_ratio: 0.089,
        paper_gaussians: 20_000_000,
        paper_gaussians_small: 7_000_000,
    };

    /// Aerial (MatrixCity): 1600x900, 2.3 % active; too large at
    /// initialization to be downsized for GPU-only training.
    pub const AERIAL: ScenePreset = ScenePreset {
        name: "Aerial",
        dataset: "MatrixCity",
        width: 1600,
        height: 900,
        kind: SceneKind::Synthetic,
        active_ratio: 0.023,
        paper_gaussians: 42_000_000,
        paper_gaussians_small: 42_000_000,
    };

    /// All six benchmark scenes, in the paper's order.
    pub const ALL: [ScenePreset; 6] = [
        Self::RUBBLE,
        Self::BUILDING,
        Self::LFLS,
        Self::SZIIT,
        Self::SZTU,
        Self::AERIAL,
    ];

    /// Looks a preset up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ScenePreset> {
        Self::ALL
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
            .cloned()
    }

    /// Whether the paper could create a GPU-only-trainable "small" variant
    /// (Aerial could not because it is already too large at initialization).
    pub fn has_small_variant(&self) -> bool {
        self.paper_gaussians_small < self.paper_gaussians
    }

    /// Total trainable parameters at the paper's full scale.
    pub fn paper_parameter_count(&self) -> usize {
        self.paper_gaussians * gs_core::gaussian::GaussianParams::PARAMS_PER_GAUSSIAN
    }

    /// Builds a runnable [`SceneConfig`] downscaled by `scale` (both the
    /// Gaussian count and the resolution shrink; the active ratio and aspect
    /// ratio are preserved).
    ///
    /// `scale` of `1.0` reproduces the paper-scale counts (far too large to
    /// train functionally on a CPU — use small values like `1e-3`).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn to_config(&self, scale: f64, seed: u64) -> SceneConfig {
        assert!(scale > 0.0, "scale must be positive");
        // Resolution shrinks with the square root of the scale so the pixel
        // count tracks the Gaussian count.
        let res_scale = scale.sqrt().min(1.0);
        let num_gaussians = ((self.paper_gaussians as f64 * scale).round() as usize).max(64);
        SceneConfig {
            name: self.name.to_string(),
            num_gaussians,
            init_points: (num_gaussians / 3).max(32),
            width: ((self.width as f64 * res_scale).round() as usize).max(32),
            height: ((self.height as f64 * res_scale).round() as usize).max(24),
            num_train_views: 24,
            num_test_views: 4,
            target_active_ratio: self.active_ratio,
            extent: 100.0,
            far_view_fraction: 0.08,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_scenes_match_figure4_ratios() {
        let ratios: Vec<f64> = ScenePreset::ALL.iter().map(|p| p.active_ratio).collect();
        assert_eq!(ratios, vec![0.126, 0.106, 0.064, 0.089, 0.089, 0.023]);
        // Paper: 8.28% average active ratio across large-scale scenes.
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((mean - 0.0828).abs() < 0.01, "mean active ratio {mean}");
    }

    #[test]
    fn resolutions_match_table2() {
        assert_eq!(
            (ScenePreset::RUBBLE.width, ScenePreset::RUBBLE.height),
            (1152, 864)
        );
        assert_eq!(
            (ScenePreset::LFLS.width, ScenePreset::LFLS.height),
            (1600, 1064)
        );
        assert_eq!(
            (ScenePreset::AERIAL.width, ScenePreset::AERIAL.height),
            (1600, 900)
        );
        assert_eq!(ScenePreset::AERIAL.kind, SceneKind::Synthetic);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(ScenePreset::by_name("rubble"), Some(ScenePreset::RUBBLE));
        assert_eq!(ScenePreset::by_name("SZTU"), Some(ScenePreset::SZTU));
        assert_eq!(ScenePreset::by_name("nonexistent"), None);
    }

    #[test]
    fn aerial_has_no_small_variant() {
        assert!(!ScenePreset::AERIAL.has_small_variant());
        assert!(ScenePreset::RUBBLE.has_small_variant());
    }

    #[test]
    fn to_config_scales_counts_and_resolution() {
        let cfg = ScenePreset::RUBBLE.to_config(1.0e-3, 7);
        assert_eq!(cfg.num_gaussians, 40_000);
        assert!(cfg.width < ScenePreset::RUBBLE.width);
        assert!((cfg.target_active_ratio - 0.126).abs() < 1e-9);
        // Paper-scale config preserves the original resolution.
        let full = ScenePreset::RUBBLE.to_config(1.0, 7);
        assert_eq!(full.width, 1152);
        assert_eq!(full.num_gaussians, 40_000_000);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = ScenePreset::RUBBLE.to_config(0.0, 1);
    }

    #[test]
    fn parameter_count_uses_59_per_gaussian() {
        assert_eq!(ScenePreset::SZIIT.paper_parameter_count(), 20_000_000 * 59);
    }
}
